"""Configuration of the long-running serving daemon.

A :class:`ServeConfig` pins every knob that shapes the request stream and
the control loop's decisions, and hashes to a digest stored in snapshots —
a ``--resume`` against a different configuration is detected and refused
rather than silently blending two schedules.

The request mix is a piecewise-constant schedule (:class:`MixPhase`): each
phase names weighted workloads, and phase boundaries are how tests and
drills induce traffic drift at a known request index.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..workloads.base import WorkloadError

__all__ = ["MixPhase", "ServeConfig", "DEFAULT_PHASES"]


@dataclass(frozen=True)
class MixPhase:
    """One traffic regime: from *start_request* on, draw from *mix*.

    Attributes:
        start_request: First request index this phase covers.
        mix: ``(workload name, weight)`` pairs; weights need not sum to 1.
    """

    start_request: int
    mix: tuple[tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.mix:
            raise WorkloadError("a mix phase needs at least one workload")
        if any(weight <= 0 for _, weight in self.mix):
            raise WorkloadError(f"mix weights must be positive: {self.mix}")


#: Default two-phase schedule: a health-dominated regime that flips to an
#: ft-dominated one halfway through — enough drift to exercise re-grouping
#: without hand-tuning every test.
DEFAULT_PHASES: tuple[MixPhase, ...] = (
    MixPhase(0, (("health", 3.0), ("ft", 1.0))),
    MixPhase(120, (("ft", 3.0), ("health", 1.0))),
)


@dataclass(frozen=True)
class ServeConfig:
    """Every serving-daemon knob in one place.

    Attributes:
        seed: Root seed; fixes the request schedule, retention draws, and
            the address space, making whole sessions replayable.
        requests: Total requests the session serves.
        epoch_requests: Requests per epoch (decisions run at epoch ends).
        phases: Piecewise request-mix schedule (sorted by start_request).
        request_factor: Workload scale factor per request (kept small so a
            request is one "transaction", not a whole benchmark run).
        retain_rate: Fraction of a request's objects promoted to the
            service's session cache (re-allocated into their group's pool)
            when the request completes.
        retain_max: Cap on promotions per request (bounds ledger growth).
        retain_epochs: Maximum epochs a retained object lives.
        window_epochs: Sliding-window length for profiles and traces.
        regroup_every: Scheduled re-grouping period in epochs.
        cooldown_epochs: Epochs to wait after a rollback/abort before the
            next re-grouping attempt (hysteresis against thrash).
        regress_tolerance: Relative cycles slack the canary allows before
            calling a candidate a regression.
        drift_threshold: L1 distance on windowed mix/size distributions
            above which an epoch counts as drifted.
        drift_hysteresis: Consecutive drifted epochs required to trigger
            re-profiling (oscillating traffic must not thrash).
        snapshot_every: Epochs between crash-safe snapshots.
        chunk_size: Group-allocator chunk size (small: serving heaps are
            much smaller than benchmark heaps).
        slab_size: Group-allocator slab size.
    """

    seed: int = 0
    requests: int = 240
    epoch_requests: int = 24
    phases: tuple[MixPhase, ...] = DEFAULT_PHASES
    request_factor: float = 0.05
    retain_rate: float = 0.25
    retain_max: int = 8
    retain_epochs: int = 2
    window_epochs: int = 3
    regroup_every: int = 2
    cooldown_epochs: int = 2
    regress_tolerance: float = 0.02
    drift_threshold: float = 0.25
    drift_hysteresis: int = 2
    snapshot_every: int = 1
    chunk_size: int = 1 << 16
    slab_size: int = 1 << 20
    extra: tuple = field(default=())

    def __post_init__(self) -> None:
        if self.requests < 1 or self.epoch_requests < 1:
            raise ValueError("requests and epoch_requests must be positive")
        if not self.phases or self.phases[0].start_request != 0:
            raise ValueError("the first mix phase must start at request 0")
        starts = [phase.start_request for phase in self.phases]
        if starts != sorted(starts):
            raise ValueError(f"mix phases out of order: {starts}")
        if self.window_epochs < 1:
            raise ValueError("window_epochs must be >= 1")

    # -- schedule queries ---------------------------------------------------

    def mix_at(self, request_index: int) -> tuple[tuple[str, float], ...]:
        """The active workload mix for *request_index*."""
        active = self.phases[0]
        for phase in self.phases:
            if phase.start_request <= request_index:
                active = phase
            else:
                break
        return active.mix

    def total_epochs(self) -> int:
        """Number of (possibly short) epochs the full session runs."""
        return -(-self.requests // self.epoch_requests)

    def epoch_bounds(self, epoch: int) -> tuple[int, int]:
        """``[start, end)`` request indices of *epoch*."""
        start = epoch * self.epoch_requests
        return start, min(start + self.epoch_requests, self.requests)

    def digest(self) -> str:
        """Stable hash of the schedule-shaping fields (snapshot guard)."""
        return hashlib.sha256(repr(self).encode()).hexdigest()[:16]


def draw(seed: int, site: str, *key) -> float:
    """Uniform ``[0, 1)`` value fixed by ``(seed, site, key)``.

    The service's own decision randomness (request kinds, retention) uses
    the same keyed-hash scheme as :class:`~repro.faults.plan.FaultPlan`, so
    every draw is reproducible across restarts with no RNG state to
    snapshot.
    """
    digest = hashlib.sha256(repr((seed, site, key)).encode()).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)
