"""Decision-level counters of one serving session.

:class:`ServeStats` is the determinism contract of the daemon: everything
here is a pure function of ``(config, fault plan)`` — request counts, swap
and rollback decisions, migrated bytes — and never of heap addresses or
wall time.  The stats ride inside every snapshot, so a killed-and-resumed
session reports exactly the totals an uninterrupted one would, and the
acceptance tests compare these objects directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import obs

__all__ = ["ServeStats"]


@dataclass
class ServeStats:
    """Counters and decision logs accumulated over a session."""

    requests: int = 0
    epochs: int = 0
    swaps: int = 0
    rollbacks: int = 0
    swap_aborts: int = 0
    drift_events: int = 0
    migrated_regions: int = 0
    migrated_bytes: int = 0
    regroup_attempts: int = 0
    regroup_stalls: int = 0
    snapshots: int = 0
    sanitize_checks: int = 0
    sanitize_findings: int = 0
    live_bytes: int = 0
    #: Epoch indices where each decision landed (test-comparable history).
    swap_epochs: list[int] = field(default_factory=list)
    rollback_epochs: list[int] = field(default_factory=list)
    abort_epochs: list[int] = field(default_factory=list)
    drift_epochs: list[int] = field(default_factory=list)

    def publish(self) -> None:
        """Fold the final totals into the active obs registry (if any).

        Published once at session end rather than incrementally: partial
        epochs replayed after a resume must not double-count.
        """
        if obs.active_registry() is None:
            return
        obs.inc("serve.requests", self.requests)
        obs.inc("serve.epochs", self.epochs)
        obs.inc("serve.swaps", self.swaps)
        obs.inc("serve.rollbacks", self.rollbacks)
        obs.inc("serve.swap_aborts", self.swap_aborts)
        obs.inc("serve.drift_events", self.drift_events)
        obs.inc("serve.migrated_regions", self.migrated_regions)
        obs.inc("serve.migrated_bytes", self.migrated_bytes)
        obs.inc("serve.regroup_attempts", self.regroup_attempts)
        obs.inc("serve.regroup_stalls", self.regroup_stalls)
        obs.inc("serve.snapshots", self.snapshots)
        obs.inc("serve.sanitize_checks", self.sanitize_checks)
        obs.inc("serve.sanitize_findings", self.sanitize_findings)
        obs.gauge_set("serve.live_bytes", self.live_bytes)
