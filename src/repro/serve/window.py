"""Sliding-window profile summaries and drift detection.

The daemon never re-groups from all-time history: each epoch is folded
into an :class:`EpochSummary` (per-workload affinity graphs, a size-class
histogram, the workload mix actually served) and a :class:`ProfileWindow`
keeps the last N of them.  Candidate group tables are built from the
window's *merged* graphs; drift is the L1 distance between the window's
newest distributions and a reference captured at the last accepted table.

Everything here is plain dicts and dataclasses — the whole window pickles
into a snapshot and a restored window behaves identically.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..profiling.graph import AffinityGraph

__all__ = ["EpochSummary", "ProfileWindow", "merge_graphs", "distribution_distance"]


@dataclass
class EpochSummary:
    """What one epoch of traffic looked like.

    Attributes:
        epoch: Epoch index.
        graphs: Workload name -> affinity graph folded from every request
            of that workload in the epoch (unfiltered; coverage filtering
            happens at candidate-build time on the merged graph).
        size_hist: ``size.bit_length()`` -> allocation count.
        mix: Workload name -> requests served.
    """

    epoch: int
    graphs: dict[str, AffinityGraph] = field(default_factory=dict)
    size_hist: dict[int, int] = field(default_factory=dict)
    mix: dict[str, int] = field(default_factory=dict)

    def fold_graph(self, workload: str, graph: AffinityGraph) -> None:
        """Accumulate one request's recorder graph into the summary."""
        into = self.graphs.get(workload)
        if into is None:
            into = self.graphs[workload] = AffinityGraph()
        for node, accesses in graph.node_accesses.items():
            into.node_accesses[node] = into.node_accesses.get(node, 0) + accesses
        for key, weight in graph.edges.items():
            into.edges[key] = into.edges.get(key, 0.0) + weight
        into.total_accesses += graph.total_accesses

    def fold_sizes(self, sizes) -> None:
        """Accumulate allocation sizes into the size-class histogram."""
        hist = self.size_hist
        for size in sizes:
            bucket = size.bit_length()
            hist[bucket] = hist.get(bucket, 0) + 1


def merge_graphs(graphs) -> AffinityGraph:
    """Sum a sequence of affinity graphs into one."""
    merged = AffinityGraph()
    for graph in graphs:
        for node, accesses in graph.node_accesses.items():
            merged.node_accesses[node] = merged.node_accesses.get(node, 0) + accesses
        for key, weight in graph.edges.items():
            merged.edges[key] = merged.edges.get(key, 0.0) + weight
        merged.total_accesses += graph.total_accesses
    return merged


def _normalise(hist: dict) -> dict:
    total = sum(hist.values())
    if total <= 0:
        return {}
    return {key: value / total for key, value in hist.items()}


def distribution_distance(a: dict, b: dict) -> float:
    """Half the L1 distance between two count histograms, in ``[0, 1]``."""
    pa, pb = _normalise(a), _normalise(b)
    keys = set(pa) | set(pb)
    return 0.5 * sum(abs(pa.get(k, 0.0) - pb.get(k, 0.0)) for k in keys)


@dataclass
class DriftReference:
    """The traffic shape the incumbent table was built for."""

    size_hist: dict[int, int] = field(default_factory=dict)
    mix: dict[str, int] = field(default_factory=dict)


class ProfileWindow:
    """The last *capacity* epoch summaries plus drift bookkeeping."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"window capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._epochs: deque[EpochSummary] = deque(maxlen=capacity)
        self.reference: Optional[DriftReference] = None
        self.drift_streak = 0

    def push(self, summary: EpochSummary) -> None:
        """Append an epoch summary, evicting past the window capacity."""
        self._epochs.append(summary)
        if self.reference is None:
            # First completed epoch defines the baseline traffic shape.
            self.reference = DriftReference(
                dict(summary.size_hist), dict(summary.mix)
            )

    def summaries(self) -> list[EpochSummary]:
        """The windowed summaries, oldest first."""
        return list(self._epochs)

    def workloads(self) -> list[str]:
        """Workloads seen anywhere in the window, deterministically ordered."""
        names: dict[str, None] = {}
        for summary in self._epochs:
            for name in sorted(summary.graphs):
                names.setdefault(name)
        return list(names)

    def merged_graph(self, workload: str) -> AffinityGraph:
        """Window-wide affinity graph for *workload*."""
        return merge_graphs(
            summary.graphs[workload]
            for summary in self._epochs
            if workload in summary.graphs
        )

    # -- drift --------------------------------------------------------------

    def drift_score(self) -> float:
        """Distance of the newest epoch's traffic shape from the reference."""
        if self.reference is None or not self._epochs:
            return 0.0
        latest = self._epochs[-1]
        return max(
            distribution_distance(latest.size_hist, self.reference.size_hist),
            distribution_distance(latest.mix, self.reference.mix),
        )

    def observe_drift(self, threshold: float, hysteresis: int) -> bool:
        """Update the drift streak; True when hysteresis is satisfied.

        A triggering observation resets the streak, so one sustained shift
        fires once rather than on every subsequent epoch.
        """
        if self.drift_score() > threshold:
            self.drift_streak += 1
        else:
            self.drift_streak = 0
        if self.drift_streak >= hysteresis:
            self.drift_streak = 0
            return True
        return False

    def rebase_reference(self) -> None:
        """Adopt the newest epoch's shape as the reference (after a swap)."""
        if self._epochs:
            latest = self._epochs[-1]
            self.reference = DriftReference(dict(latest.size_hist), dict(latest.mix))
        self.drift_streak = 0

    # -- snapshot round-trip -------------------------------------------------

    def state(self) -> dict:
        """Picklable form for snapshots (see :meth:`from_state`)."""
        return {
            "epochs": list(self._epochs),
            "reference": self.reference,
            "drift_streak": self.drift_streak,
        }

    @classmethod
    def from_state(cls, capacity: int, state: dict) -> "ProfileWindow":
        window = cls(capacity)
        window._epochs.extend(state["epochs"][-capacity:])
        window.reference = state["reference"]
        window.drift_streak = state["drift_streak"]
        return window
