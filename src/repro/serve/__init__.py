"""Long-running HALO serving daemon with online re-optimisation.

The offline pipeline optimises once; this package keeps a live allocation
service optimal as its traffic shifts.  A :class:`~repro.serve.service.ServeService`
drives a deterministic request stream over one shared
:class:`~repro.allocators.group.GroupAllocator`, maintains sliding-window
affinity profiles, periodically re-groups, canary-scores every candidate
group table on recent traces, and hot-swaps accepted tables with safe
live-region migration — all wrapped in a self-healing loop that degrades
(keeps serving on the incumbent table) under injected faults instead of
dying.  See ``docs/SERVING.md``.
"""

from .config import DEFAULT_PHASES, MixPhase, ServeConfig
from .service import (
    ServeError,
    ServeReport,
    ServeService,
    drill_plan,
    run_serve,
    serve_journal,
)
from .snapshot import ServeSnapshot, SnapshotStore
from .stats import ServeStats
from .table import ServingTable, TableEntry

__all__ = [
    "DEFAULT_PHASES",
    "MixPhase",
    "ServeConfig",
    "ServeError",
    "ServeReport",
    "ServeService",
    "ServeSnapshot",
    "ServeStats",
    "ServingTable",
    "SnapshotStore",
    "TableEntry",
    "drill_plan",
    "run_serve",
    "serve_journal",
]
