"""The self-healing serving control loop.

One :class:`ServeService` owns a single live heap (one address space, one
:class:`~repro.allocators.group.GroupAllocator`) and drives the configured
request stream over it.  Each request runs a workload kernel on a fresh
simulated machine bound to the shared allocator; a slice of its surviving
objects is retained on the service heap (the long-lived state hot-swaps
must migrate), and a streaming profiler feeds the sliding window.

At every epoch boundary the loop makes its decisions in a fixed order —
expire, window-push, drift, re-group, canary, swap, sanitize, snapshot —
and every decision is a pure function of ``(config, fault plan)``.  That
is the determinism contract: two runs with the same seed, and a killed
run resumed from its last snapshot, report identical swap epochs,
rollback decisions, and final ``serve.*`` totals.

Degradation is structural rather than exceptional: a stalled re-grouper
skips the attempt, a canary regression or flipped swap keeps the
incumbent table, a corrupted snapshot falls back to the previous record —
in every case the service keeps serving.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..allocators.base import AddressSpace
from ..allocators.group import GroupAllocator
from ..allocators.size_class import SizeClassAllocator
from ..columnar.engine import score_trace
from ..core.pipeline import HaloParams
from ..core.selectors import CompiledMatcher
from ..faults.plan import FaultPlan
from ..machine.machine import GroupStateVector, Machine
from ..profiling.profiler import Profiler
from ..profiling.shadow import ContextTable
from ..sanitize.invariants import Finding, validate_allocator
from ..trace.record import TraceRecorder
from ..trace.window import TraceWindow
from ..workloads import get_workload
from ..workloads.base import Workload
from .config import ServeConfig, draw
from .snapshot import SNAPSHOT_VERSION, ServeSnapshot, SnapshotStore
from .stats import ServeStats
from .table import (
    GENERATION_SHIFT,
    WORKLOAD_SHIFT,
    BoundMatcher,
    ServingTable,
    TableEntry,
    build_entry,
    plan_regroup_mapping,
)
from .window import EpochSummary, ProfileWindow

__all__ = ["ServeError", "ServeReport", "ServeService", "run_serve", "drill_plan"]


class ServeError(Exception):
    """Raised for unusable serve state (e.g. resuming a foreign snapshot)."""


class _StopRequested(Exception):
    """Internal: the --stop-after request budget was reached."""

    def __init__(self, mode: str) -> None:
        super().__init__(mode)
        self.mode = mode


@dataclass
class _Retained:
    """A live region the service keeps across requests (ledger entry)."""

    seq: int
    gid: Optional[int]
    size: int
    expiry: int
    addr: int


@dataclass
class ServeReport:
    """What one (possibly interrupted) session did."""

    stats: ServeStats
    generation: int
    completed: bool
    resumed_from: Optional[int] = None


class ServeService:
    """The long-running allocation service (one session = one heap)."""

    def __init__(
        self,
        config: ServeConfig,
        store: Optional[SnapshotStore] = None,
        plan: Optional[FaultPlan] = None,
    ) -> None:
        self.config = config
        self.store = store
        self.plan = plan
        self.params = HaloParams(
            chunk_size=config.chunk_size, slab_size=config.slab_size
        )
        self._workloads: dict[str, Workload] = {}

        # Decision-level state (everything a snapshot carries).
        self.stats = ServeStats()
        self.table = ServingTable()
        self.contexts: dict[str, ContextTable] = {}
        self.profile_window = ProfileWindow(config.window_epochs)
        self.trace_window = TraceWindow(config.window_epochs)
        self.retained: list[_Retained] = []
        self.next_seq = 0
        self.cooldown = 0
        self.next_epoch = 0
        self.resumed_from: Optional[int] = None
        #: Ledger length at the last epoch boundary — interrupt-flushed
        #: snapshots must exclude partial-epoch retentions, which the
        #: resumed replay of that epoch will re-create.
        self._boundary_seq = 0

        # The live heap.
        self.space = AddressSpace(config.seed)
        self.matcher = BoundMatcher()
        self.allocator = GroupAllocator(
            self.space,
            SizeClassAllocator(self.space),
            self.matcher,
            GroupStateVector(),
            chunk_size=config.chunk_size,
            slab_size=config.slab_size,
            max_grouped_size=self.params.max_grouped_size,
        )

    # -- construction helpers ------------------------------------------------

    def _workload(self, name: str) -> Workload:
        workload = self._workloads.get(name)
        if workload is None:
            workload = self._workloads[name] = get_workload(name)
        return workload

    # -- resume --------------------------------------------------------------

    def restore(self, snapshot: ServeSnapshot) -> None:
        """Adopt *snapshot* and rebuild the heap it describes.

        The rebuilt regions land at different addresses than the original
        run's (the ledger stores sizes and group ids only), which is fine:
        no serve-level decision reads an address.
        """
        if snapshot.config_digest != self.config.digest():
            raise ServeError(
                "snapshot was taken under a different serve configuration "
                f"(digest {snapshot.config_digest} != {self.config.digest()})"
            )
        self.stats = snapshot.stats
        self.table = snapshot.table
        self.contexts = snapshot.contexts
        self.profile_window = ProfileWindow.from_state(
            self.config.window_epochs, snapshot.profile_window
        )
        self.trace_window = TraceWindow.from_state(
            self.config.window_epochs, snapshot.trace_window
        )
        self.cooldown = snapshot.cooldown
        self.next_epoch = snapshot.next_epoch
        self.next_seq = snapshot.next_seq
        self._boundary_seq = snapshot.next_seq
        self.resumed_from = snapshot.next_epoch
        self.retained = []
        for seq, gid, size, expiry in snapshot.retained:
            addr = self.allocator.place_region(gid, size)
            self.space.touch_range(addr, size)
            self.retained.append(_Retained(seq, gid, size, expiry, addr))

    # -- the control loop ----------------------------------------------------

    def run(
        self, stop_after: Optional[int] = None, stop_mode: str = "term"
    ) -> ServeReport:
        """Serve the configured request stream; never raises for faults.

        *stop_after* ends the session after that many requests served **in
        this process** — ``stop_mode="term"`` flushes a resume snapshot
        first (graceful shutdown), ``"kill"`` does not (simulated crash;
        recovery relies on the last periodic snapshot).
        """
        config = self.config
        total_epochs = config.total_epochs()
        served = 0
        try:
            while self.next_epoch < total_epochs:
                epoch = self.next_epoch
                start, end = config.epoch_bounds(epoch)
                summary = EpochSummary(epoch)
                traces: dict[str, object] = {}
                for index in range(start, end):
                    if stop_after is not None and served >= stop_after:
                        raise _StopRequested(stop_mode)
                    self._serve_request(index, epoch, summary, traces)
                    served += 1
                self._end_epoch(epoch, summary, traces)
                self.next_epoch = epoch + 1
                self._boundary_seq = self.next_seq
                if (
                    self.store is not None
                    and (epoch + 1) % config.snapshot_every == 0
                ):
                    # Count first: the persisted record must include its
                    # own write, or a resumed session under-reports.
                    self.stats.snapshots += 1
                    self.store.write(self._build_snapshot(), self.plan)
        except (KeyboardInterrupt, _StopRequested) as stop:
            mode = stop.mode if isinstance(stop, _StopRequested) else "term"
            if mode != "kill" and self.store is not None:
                # Graceful shutdown: flush boundary-consistent state (not
                # counted — a resumed session must report the same totals
                # an uninterrupted one does).
                self.store.write(self._build_snapshot(), self.plan)
            return ServeReport(
                stats=self.stats,
                generation=self.table.generation,
                completed=False,
                resumed_from=self.resumed_from,
            )
        self.stats.publish()
        return ServeReport(
            stats=self.stats,
            generation=self.table.generation,
            completed=True,
            resumed_from=self.resumed_from,
        )

    # -- request handling ----------------------------------------------------

    def _pick_workload(self, index: int) -> str:
        mix = self.config.mix_at(index)
        total = sum(weight for _, weight in mix)
        point = draw(self.config.seed, "request-kind", index) * total
        for name, weight in mix:
            point -= weight
            if point < 0:
                return name
        return mix[-1][0]

    def _serve_request(
        self, index: int, epoch: int, summary: EpochSummary, traces: dict
    ) -> None:
        name = self._pick_workload(index)
        workload = self._workload(name)
        contexts = self.contexts.get(name)
        if contexts is None:
            contexts = self.contexts[name] = ContextTable()
        profiler = Profiler(workload.program, self.params.affinity)
        profiler.contexts = contexts  # shared interning: stable cids per workload
        listeners: list = [profiler]
        recorder = None
        if name not in traces:
            # One trace per workload per epoch feeds the canary window.
            recorder = TraceRecorder(
                workload=name, scale="test", seed=self.config.seed,
                program=workload.program.name,
            )
            listeners.append(recorder)

        state_vector = GroupStateVector()
        self.allocator.state_vector = state_vector
        self.matcher.active = self.table.matcher_for(name)
        machine = Machine(
            workload.program,
            self.allocator,
            listeners=listeners,
            instrumentation=self.table.instrumentation_for(name),
            state_vector=state_vector,
        )
        rng = random.Random(f"serve:{self.config.seed}:{index}:{name}")
        try:
            workload._execute(machine, rng, self.config.request_factor)
            machine.finish()
        finally:
            self.matcher.active = None

        summary.mix[name] = summary.mix.get(name, 0) + 1
        summary.fold_graph(name, profiler.recorder.graph)
        summary.fold_sizes(profiler.object_sizes.values())
        if recorder is not None:
            traces[name] = recorder.close()

        # The request's own heap drains completely (workload kernels free
        # their objects; any stragglers go here) ...
        for obj in machine.objects.live_objects():
            self.allocator.free(obj.addr)

        # ... and a deterministic sample of its objects is promoted into
        # the session cache: re-allocated into the pool of the group their
        # allocation context maps to under the incumbent table.  This is
        # the long-lived state hot-swaps must migrate.
        seed = self.config.seed
        promoted = 0
        for oid in sorted(profiler.object_sizes):
            if promoted >= self.config.retain_max:
                break
            if draw(seed, "retain", index, oid) >= self.config.retain_rate:
                continue
            size = profiler.object_sizes[oid]
            gid = self._gid_for_context(name, profiler.object_context.get(oid))
            addr = self.allocator.place_region(gid, size)
            self.space.touch_range(addr, size)
            ttl = 1 + int(
                draw(seed, "retain-ttl", index, oid) * self.config.retain_epochs
            )
            self.retained.append(
                _Retained(
                    seq=self.next_seq, gid=gid, size=size,
                    expiry=epoch + ttl, addr=addr,
                )
            )
            self.next_seq += 1
            promoted += 1

    def _gid_for_context(self, workload: str, cid: Optional[int]) -> Optional[int]:
        """Global gid the incumbent table assigns to context *cid*."""
        entry = self.table.entries.get(workload)
        if entry is None or cid is None:
            return None
        for group in entry.groups:
            if cid in group.members:
                return entry.gid_base + group.gid
        return None

    # -- epoch boundary ------------------------------------------------------

    def _end_epoch(self, epoch: int, summary: EpochSummary, traces: dict) -> None:
        config = self.config
        start, end = config.epoch_bounds(epoch)
        self.stats.requests += end - start
        self.stats.epochs += 1

        self.profile_window.push(summary)
        for name in sorted(traces):
            self.trace_window.push(name, traces[name])

        # Expire retained regions whose lease ended.
        kept: list[_Retained] = []
        for region in self.retained:
            if region.expiry <= epoch:
                self.allocator.free(region.addr)
            else:
                kept.append(region)
        self.retained = kept

        drifted = self.profile_window.observe_drift(
            config.drift_threshold, config.drift_hysteresis
        )
        if drifted:
            self.stats.drift_events += 1
            self.stats.drift_epochs.append(epoch)

        if self.cooldown > 0:
            # Hysteresis: a recent rollback/abort suppresses re-grouping,
            # so oscillating traffic cannot thrash the table.
            self.cooldown -= 1
        elif drifted or (epoch + 1) % config.regroup_every == 0:
            self._attempt_regroup(epoch)

        self._sanitize_epoch()
        self.stats.live_bytes = sum(region.size for region in self.retained)

    def _attempt_regroup(self, epoch: int) -> None:
        self.stats.regroup_attempts += 1
        plan = self.plan
        if plan is not None and plan.stall_regroup(epoch):
            # The re-grouper produced nothing this epoch; keep serving on
            # the incumbent table and try again at the next trigger.
            self.stats.regroup_stalls += 1
            return

        generation = self.table.generation + 1
        candidates: dict[str, TableEntry] = {}
        for widx, name in enumerate(self.profile_window.workloads()):
            graph = self.profile_window.merged_graph(name)
            if not graph.node_accesses:
                continue
            gid_base = (generation << GENERATION_SHIFT) | (widx << WORKLOAD_SHIFT)
            entry = build_entry(
                self._workload(name), graph, self.contexts[name],
                self.params, gid_base,
            )
            if entry is not None:
                candidates[name] = entry
        if not candidates:
            return

        if self._canary_regressed(epoch, candidates):
            self.stats.rollbacks += 1
            self.stats.rollback_epochs.append(epoch)
            self.cooldown = self.config.cooldown_epochs
            return

        abort_hook = None
        if plan is not None:
            abort_hook = lambda step: plan.flip_swap(epoch, step)
        mapping = plan_regroup_mapping(self.table, candidates)
        report = self.allocator.migrate_groups(mapping.get, should_abort=abort_hook)
        if report.aborted:
            # The flip fired mid-migration; migrate_groups discarded its
            # copies, so the incumbent layout is untouched — keep serving.
            self.stats.swap_aborts += 1
            self.stats.abort_epochs.append(epoch)
            self.cooldown = self.config.cooldown_epochs
            return

        for region in self.retained:
            if region.addr in report.forwarding:
                region.addr = report.forwarding[region.addr]
            if region.gid is not None and region.gid in mapping:
                region.gid = mapping[region.gid]
        self.table.install(candidates, generation)
        self.table.prune_members(
            region.gid for region in self.retained if region.gid is not None
        )
        self.stats.swaps += 1
        self.stats.swap_epochs.append(epoch)
        self.stats.migrated_regions += report.moved_regions
        self.stats.migrated_bytes += report.moved_bytes
        self.profile_window.rebase_reference()

    # -- canary --------------------------------------------------------------

    def _canary_regressed(self, epoch: int, candidates: dict[str, TableEntry]) -> bool:
        """Score candidates vs the incumbent on the recent trace window."""
        if self.plan is not None and self.plan.flip_canary(epoch):
            return True
        incumbent_total = 0.0
        candidate_total = 0.0
        scored = False
        for name in sorted(candidates):
            trace = self.trace_window.latest(name)
            if trace is None:
                continue
            scored = True
            workload = self._workload(name)
            candidate_total += self._score_entry(workload, trace, candidates[name])
            incumbent_total += self._score_entry(
                workload, trace, self.table.entries.get(name)
            )
        if not scored:
            return False
        return candidate_total > incumbent_total * (1.0 + self.config.regress_tolerance)

    def _score_entry(
        self, workload: Workload, trace, entry: Optional[TableEntry]
    ) -> float:
        config = self.config
        if entry is None:
            return score_trace(
                workload, SizeClassAllocator, trace, seed=config.seed
            )
        state_vector = GroupStateVector()
        matcher = CompiledMatcher(list(entry.selectors), entry.bit_for_site)

        def make_allocator(space: AddressSpace) -> GroupAllocator:
            return GroupAllocator(
                space,
                SizeClassAllocator(space),
                matcher,
                state_vector,
                chunk_size=config.chunk_size,
                slab_size=config.slab_size,
                max_grouped_size=self.params.max_grouped_size,
            )

        return score_trace(
            workload,
            make_allocator,
            trace,
            seed=config.seed,
            instrumentation=dict(entry.bit_for_site),
            state_vector=state_vector,
        )

    # -- invariants ----------------------------------------------------------

    def _sanitize_epoch(self) -> list[Finding]:
        """Heap-consistency walk at the epoch boundary (post-swap)."""
        findings = validate_allocator(self.allocator)
        for region in self.retained:
            try:
                size = self.allocator.size_of(region.addr)
            except Exception as exc:
                findings.append(
                    Finding(
                        "serve.lost-region",
                        f"retained region seq={region.seq} at {region.addr:#x} "
                        f"is unknown to the allocator ({exc})",
                    )
                )
                continue
            if size != region.size:
                findings.append(
                    Finding(
                        "serve.size-mismatch",
                        f"retained region seq={region.seq}: ledger says "
                        f"{region.size} bytes, allocator says {size}",
                    )
                )
        self.stats.sanitize_checks += 1
        self.stats.sanitize_findings += len(findings)
        return findings

    # -- snapshots ------------------------------------------------------------

    def _build_snapshot(self) -> ServeSnapshot:
        """Boundary-consistent snapshot of the decision state."""
        retained = [
            (region.seq, region.gid, region.size, region.expiry)
            for region in self.retained
            if region.seq < self._boundary_seq
        ]
        return ServeSnapshot(
            version=SNAPSHOT_VERSION,
            config_digest=self.config.digest(),
            next_epoch=self.next_epoch,
            stats=self.stats,
            generation=self.table.generation,
            table=self.table,
            contexts=self.contexts,
            profile_window=self.profile_window.state(),
            trace_window=self.trace_window.state(),
            retained=retained,
            next_seq=self._boundary_seq,
            cooldown=self.cooldown,
        )


# -- entry points --------------------------------------------------------------


def serve_journal(state_dir: Union[str, Path], config: ServeConfig) -> SnapshotStore:
    """The conventional snapshot-journal location for one configuration."""
    return SnapshotStore(Path(state_dir) / f"serve-{config.digest()}.journal")


def run_serve(
    config: ServeConfig,
    state_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    plan: Optional[FaultPlan] = None,
    stop_after: Optional[int] = None,
    stop_mode: str = "term",
) -> ServeReport:
    """Run one serving session end to end.

    With *state_dir*, periodic snapshots land in a journal there and
    *resume* continues from the newest intact one (a missing or fully
    damaged journal degrades to a fresh start).
    """
    store = serve_journal(state_dir, config) if state_dir is not None else None
    service = ServeService(config, store=store, plan=plan)
    if resume and store is not None:
        snapshot = store.load()
        if snapshot is not None:
            service.restore(snapshot)
    return service.run(stop_after=stop_after, stop_mode=stop_mode)


def drill_plan(
    seed: int = 0,
    swap_flip: float = 0.35,
    canary_flip: float = 0.25,
    regroup_stall: float = 0.25,
    snapshot_corrupt: float = 0.35,
) -> FaultPlan:
    """The standard serve fault drill: every serve-layer fault armed."""
    return FaultPlan(
        seed=seed,
        serve_swap_flip_rate=swap_flip,
        serve_canary_flip_rate=canary_flip,
        serve_regroup_stall_rate=regroup_stall,
        serve_snapshot_corrupt_rate=snapshot_corrupt,
    )
