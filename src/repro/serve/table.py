"""The live group table: per-workload entries, matchers, and swaps.

One :class:`~repro.allocators.group.GroupAllocator` serves every request
of a session, so group ids must stay unique across workloads *and* across
table generations (a swap drains old-generation chunks rather than
reinterpreting them).  Global gids are namespaced arithmetically::

    global_gid = (generation << GENERATION_SHIFT) | (widx << WORKLOAD_SHIFT) | local_gid

The allocator itself consults a single :class:`BoundMatcher`; per request
the service binds the active workload's entry matcher into it, and a swap
replaces entries atomically between requests — allocations in flight never
observe a half-installed table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.grouping import Group, group_contexts, assign_groups
from ..core.identification import synthesise_selectors
from ..core.pipeline import HaloParams
from ..core.selectors import CompiledMatcher, GroupSelector, monitored_sites
from ..profiling.graph import AffinityGraph
from ..profiling.shadow import ContextTable
from ..rewriting.bolt import BoltRewriter
from ..workloads.base import Workload

__all__ = [
    "GENERATION_SHIFT",
    "WORKLOAD_SHIFT",
    "BoundMatcher",
    "OffsetMatcher",
    "TableEntry",
    "ServingTable",
    "build_entry",
    "plan_regroup_mapping",
]

#: Global-gid bit layout: 10 bits of local gid, 10 bits of workload index.
WORKLOAD_SHIFT = 10
GENERATION_SHIFT = 20


class OffsetMatcher:
    """Shifts a local matcher's group ids into the global namespace."""

    def __init__(self, inner: CompiledMatcher, gid_base: int) -> None:
        self.inner = inner
        self.gid_base = gid_base

    def match(self, state: int) -> Optional[int]:
        """Evaluate the inner matcher; offset any hit by ``gid_base``."""
        gid = self.inner.match(state)
        return None if gid is None else self.gid_base + gid


class BoundMatcher:
    """The allocator's matcher slot; rebound per request by the service."""

    def __init__(self) -> None:
        self.active: Optional[OffsetMatcher] = None

    def match(self, state: int) -> Optional[int]:
        """Delegate to the currently bound matcher (None: no grouping)."""
        active = self.active
        return None if active is None else active.match(state)


@dataclass
class TableEntry:
    """One workload's synthesised runtime, pinned to a global gid base.

    Carries exactly the offline artefacts a swap must install — selectors,
    instrumentation plan, group membership — in picklable form, so entries
    round-trip through snapshots unchanged.
    """

    workload: str
    selectors: tuple[GroupSelector, ...]
    bit_for_site: dict[int, int]
    groups: tuple[Group, ...]
    gid_base: int

    def matcher(self) -> OffsetMatcher:
        """Compile this entry's selectors into a namespaced matcher."""
        return OffsetMatcher(
            CompiledMatcher(list(self.selectors), self.bit_for_site), self.gid_base
        )

    def members_by_global_gid(self) -> dict[int, frozenset[int]]:
        """Group membership keyed by global (namespaced) gid."""
        return {self.gid_base + group.gid: group.members for group in self.groups}


@dataclass
class ServingTable:
    """The incumbent table: entries plus the global-gid member registry.

    ``members_by_gid`` keeps every generation's membership as long as any
    retained region might still live in its chunks — it is what a swap's
    old-to-new mapping is computed from.
    """

    generation: int = 0
    entries: dict[str, TableEntry] = field(default_factory=dict)
    members_by_gid: dict[int, tuple[str, frozenset[int]]] = field(default_factory=dict)

    def matcher_for(self, workload: str) -> Optional[OffsetMatcher]:
        """The matcher to bind for *workload*'s requests (None: fallback)."""
        entry = self.entries.get(workload)
        return None if entry is None else entry.matcher()

    def instrumentation_for(self, workload: str) -> dict[int, int]:
        """Site-to-bit instrumentation plan for *workload* (empty: none)."""
        entry = self.entries.get(workload)
        return {} if entry is None else dict(entry.bit_for_site)

    def install(self, entries: dict[str, TableEntry], generation: int) -> None:
        """Adopt *entries* as the new incumbent table."""
        self.generation = generation
        self.entries = entries
        for entry in entries.values():
            for gid, members in entry.members_by_global_gid().items():
                self.members_by_gid[gid] = (entry.workload, members)

    def prune_members(self, live_gids) -> None:
        """Drop membership records for gids no longer referenced anywhere."""
        keep = set(live_gids)
        for entry in self.entries.values():
            keep.update(entry.members_by_global_gid())
        self.members_by_gid = {
            gid: value for gid, value in self.members_by_gid.items() if gid in keep
        }


def build_entry(
    workload: Workload,
    graph: AffinityGraph,
    contexts: ContextTable,
    params: HaloParams,
    gid_base: int,
) -> Optional[TableEntry]:
    """Synthesise one workload's table entry from a windowed graph.

    The offline pipeline (group → identify → rewrite) applied to streaming
    profile data.  Returns None when the window yields no viable groups —
    the workload keeps falling through to the fallback allocator.
    """
    filtered = graph.filtered_by_coverage(params.affinity.node_coverage)
    groups = group_contexts(filtered, params.grouping)
    if params.max_groups is not None and len(groups) > params.max_groups:
        groups = sorted(groups, key=lambda g: (-g.accesses, g.gid))[: params.max_groups]
    if not groups:
        return None
    if any(group.gid >= (1 << WORKLOAD_SHIFT) for group in groups):
        raise ValueError(
            f"{workload.name}: local group id overflows the global-gid namespace"
        )
    context_group: dict[int, Optional[int]] = {
        cid: None for cid in range(len(contexts))
    }
    context_group.update(assign_groups(groups))
    rewriter = BoltRewriter(workload.program)
    identification = synthesise_selectors(
        groups, contexts, context_group, site_allowed=rewriter.can_instrument
    )
    plan = rewriter.instrument(monitored_sites(identification.selectors))
    return TableEntry(
        workload=workload.name,
        selectors=identification.selectors,
        bit_for_site=dict(plan.bit_for_site),
        groups=tuple(groups),
        gid_base=gid_base,
    )


def plan_regroup_mapping(
    table: ServingTable, candidates: dict[str, TableEntry]
) -> dict[int, int]:
    """Old global gid -> new global gid, by best member overlap.

    Every gid the registry knows (incumbent and still-draining older
    generations) is matched against the candidate groups of the *same*
    workload; ties break toward the lowest new gid and zero overlap leaves
    the old gid unmapped (its regions drain in place).
    """
    mapping: dict[int, int] = {}
    for old_gid in sorted(table.members_by_gid):
        workload, members = table.members_by_gid[old_gid]
        entry = candidates.get(workload)
        if entry is None:
            continue
        best_gid: Optional[int] = None
        best_overlap = 0
        for group in entry.groups:
            overlap = len(members & group.members)
            new_gid = entry.gid_base + group.gid
            if overlap > best_overlap or (
                overlap == best_overlap and overlap > 0
                and (best_gid is None or new_gid < best_gid)
            ):
                best_overlap = overlap
                best_gid = new_gid
        if best_gid is not None and best_overlap > 0:
            mapping[old_gid] = best_gid
    return mapping
