"""Crash-safe serve-state snapshots on the checkpoint journal.

Every ``snapshot_every`` epochs the service appends its complete decision
state — stats, incumbent table, context tables, profile/trace windows, the
retained-object ledger (sizes and group ids only, never addresses) — as
one CRC-framed journal record under a constant key.  The journal's framing
gives degradation for free: a torn or bit-flipped tail record fails its
CRC and :meth:`~repro.harness.checkpoint.CheckpointJournal.load` returns
the last intact snapshot, so a ``--resume`` after a crash (or a snapshot-
corruption drill) replays from the newest state that survived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..faults.plan import FaultPlan
from ..harness.checkpoint import CheckpointJournal
from .stats import ServeStats
from .table import ServingTable

__all__ = ["SNAPSHOT_KEY", "SNAPSHOT_VERSION", "ServeSnapshot", "SnapshotStore"]

SNAPSHOT_KEY = "serve-snapshot"
SNAPSHOT_VERSION = 1


@dataclass
class ServeSnapshot:
    """Everything a resumed session needs to continue deterministically.

    ``retained`` lists ``(seq, global_gid_or_None, size, expiry_epoch)`` in
    allocation order; addresses are deliberately absent — the restore path
    re-places each region, and every serve-level decision depends only on
    sizes and group ids, which is what makes resumed metric totals equal
    uninterrupted ones.
    """

    version: int
    config_digest: str
    next_epoch: int
    stats: ServeStats
    generation: int
    table: ServingTable
    contexts: dict
    profile_window: dict
    trace_window: dict[str, list[bytes]]
    retained: list[tuple[int, Optional[int], int, int]]
    next_seq: int
    cooldown: int = 0
    extra: dict = field(default_factory=dict)


class SnapshotStore:
    """Journal-backed snapshot reader/writer with drill-mode corruption."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.journal = CheckpointJournal(path)

    @property
    def path(self) -> Path:
        return self.journal.path

    def write(self, snapshot: ServeSnapshot, plan: Optional[FaultPlan] = None) -> None:
        """Append *snapshot*; under a drill plan, maybe damage it on disk.

        The corruption models a torn write of the *newest* record only —
        a byte inside the appended frame is flipped, so recovery falls
        back to the previous snapshot instead of losing the whole journal.
        """
        before = self._file_size()
        self.journal.append(SNAPSHOT_KEY, snapshot)
        if plan is not None and plan.corrupt_snapshot(snapshot.next_epoch):
            after = self._file_size()
            span = after - before
            if span > 0:
                offset = before + int(
                    plan.draw("serve-snapshot-corrupt-offset", snapshot.next_epoch)
                    * span
                )
                offset = min(offset, after - 1)
                with open(self.path, "r+b") as handle:
                    handle.seek(offset)
                    byte = handle.read(1)
                    handle.seek(offset)
                    handle.write(bytes((byte[0] ^ 0xFF,)))

    def load(self) -> Optional[ServeSnapshot]:
        """The newest intact snapshot, or None when none survives."""
        snapshot = self.journal.load().get(SNAPSHOT_KEY)
        if snapshot is None:
            return None
        if not isinstance(snapshot, ServeSnapshot) or snapshot.version != SNAPSHOT_VERSION:
            return None
        return snapshot

    def clear(self) -> None:
        """Delete the journal file (fresh-start testing helper)."""
        self.journal.clear()

    def _file_size(self) -> int:
        try:
            return self.path.stat().st_size
        except OSError:
            return 0
