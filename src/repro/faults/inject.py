"""On-disk fault injectors: deterministic file truncation and bit-flips.

These are the storage half of the fault framework: they damage cached
artifact pickles and trace containers the way a crashed writer, a bad
disk, or a torn copy would, so the pipeline's detection points (pickle
errors in :class:`~repro.core.artifact_cache.ArtifactCache`, the payload
CRC in :mod:`repro.trace.format`, the checkpoint journal's record
framing) can be exercised for real rather than mocked.

All damage is a pure function of ``(plan.seed, file name)`` — the same
plan corrupts the same bytes of the same files on every run.
"""

from __future__ import annotations

import hashlib
import random
from pathlib import Path
from typing import Union

from .plan import FaultPlan

#: File suffixes considered injectable when sweeping a directory.
INJECTABLE_SUFFIXES = (".pkl", ".trace", ".journal", ".tmp")


def _file_rng(plan: FaultPlan, path: Path) -> random.Random:
    """Per-file RNG derived from the plan seed and the file *name*."""
    digest = hashlib.sha256(repr((plan.seed, path.name)).encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def truncate_file(path: Union[str, Path], rng: random.Random) -> int:
    """Truncate *path* to a strict prefix; returns the new size.

    Keeps between 0% and 90% of the original bytes, so headers may
    survive while bodies are cut short — the torn-write shape.
    """
    path = Path(path)
    size = path.stat().st_size
    keep = int(size * rng.uniform(0.0, 0.9))
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return keep


def bitflip_file(path: Union[str, Path], rng: random.Random, flips: int = 8) -> list[int]:
    """Flip *flips* random bits of *path* in place; returns the offsets hit."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        return []
    offsets = []
    for _ in range(max(1, flips)):
        offset = rng.randrange(len(data))
        data[offset] ^= 1 << rng.randrange(8)
        offsets.append(offset)
    path.write_bytes(bytes(data))
    return offsets


def inject_into_file(path: Union[str, Path], plan: FaultPlan) -> str:
    """Damage one file as *plan* prescribes; returns the mode applied."""
    path = Path(path)
    rng = _file_rng(plan, path)
    if plan.corrupt_mode == "truncate":
        truncate_file(path, rng)
    elif plan.corrupt_mode == "bitflip":
        bitflip_file(path, rng)
    else:
        raise ValueError(f"unknown corruption mode {plan.corrupt_mode!r}")
    return plan.corrupt_mode


def inject_into_path(target: Union[str, Path], plan: FaultPlan) -> list[Path]:
    """Corrupt *target* (a file, or every injectable file under a directory).

    Directory sweeps honour ``plan.corrupt_rate``: each candidate file is
    hit iff the plan's deterministic draw for its name says so.  Returns
    the files actually damaged, sorted for stable reporting.
    """
    target = Path(target)
    if target.is_file():
        inject_into_file(target, plan)
        return [target]
    if not target.is_dir():
        raise FileNotFoundError(f"nothing to inject into at {target}")
    hit: list[Path] = []
    for candidate in sorted(target.rglob("*")):
        if not candidate.is_file() or candidate.suffix not in INJECTABLE_SUFFIXES:
            continue
        if not plan.decide(plan.corrupt_rate, "corrupt-file", candidate.name):
            continue
        inject_into_file(candidate, plan)
        hit.append(candidate)
    return hit
