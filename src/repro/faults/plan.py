"""Deterministic fault plans.

HALO's central safety argument is graceful degradation: any allocation the
grouped allocator cannot serve falls through to the default allocator, a
corrupt profile artifact is rebuilt, a bad trace is re-recorded — the worst
case behaves like plain jemalloc.  This module makes those degraded paths
*testable* by describing, up front and reproducibly, which faults one run
will experience.

A :class:`FaultPlan` is an immutable, picklable value.  Every decision it
makes — "does this trace decode fail?", "does this worker die on attempt
0?" — is a pure function of ``(plan.seed, decision site, decision key)``,
so the same plan injects the same faults in the coordinating process, in
every worker process, and on a re-run of the whole pipeline.  There is no
hidden RNG state to drift.

Consumers reach the plan through a process-global registration
(:func:`install_fault_plan` / :func:`active_fault_plan`): production code
never constructs faults, it only *asks* whether one is scheduled at its
own detection point.  With no plan installed every hook is a cheap ``is
None`` check, so the instrumented hot paths cost nothing in normal runs.
"""

from __future__ import annotations

import hashlib
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional

#: Exit status a fault-killed worker process dies with (distinctive in
#: logs; any nonzero status breaks the pool the same way).
KILLED_EXIT_STATUS = 86


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of faults for one pipeline run.

    All rates are probabilities in ``[0, 1]`` evaluated deterministically
    per decision key; explicit task tuples name exact victims for tests
    that need one specific cell to fail.

    Args:
        seed: Root of every deterministic decision the plan makes.
        corrupt_mode: How :mod:`repro.faults.inject` damages files
            (``"bitflip"`` or ``"truncate"``).
        corrupt_rate: Fraction of files :func:`~repro.faults.inject.inject_into_path`
            corrupts when given a directory.
        trace_decode_error_rate: Probability a trace body decode raises
            :class:`~repro.trace.format.TraceFormatError` (keyed by the
            trace's workload), modelling corruption surfacing mid-replay.
        group_max_chunks: When set, a :class:`~repro.allocators.group.GroupAllocator`
            behaves as if its chunk/slab reservation fails once this many
            chunks exist — allocations degrade to the fallback allocator.
        state_flip_rate: Probability (per allocation) that the selector
            reads a group-state vector with one bit flipped, modelling
            instrumentation misprediction.
        state_flip_bits: Width of the bit window flips are drawn from.
        worker_kill_rate: Probability a worker task hard-kills its process
            (keyed by task key and attempt number, so retries re-draw).
        worker_stall_rate: Probability a worker task stalls for
            ``worker_stall_seconds`` before running.
        worker_stall_seconds: Stall duration for stalled tasks.
        kill_tasks: Task keys whose first ``max_kill_attempts`` attempts
            are hard-killed regardless of ``worker_kill_rate``.
        stall_tasks: Task keys whose first ``max_kill_attempts`` attempts
            stall for ``worker_stall_seconds``.
        max_kill_attempts: Attempt count affected by the explicit task
            lists (1 = only the first attempt dies, the retry survives).
        serve_swap_flip_rate: Probability (per migration step) that the
            serving daemon's group-table swap is flipped mid-migration —
            the copy phase aborts and the incumbent layout must survive.
        serve_canary_flip_rate: Probability (per epoch) the canary verdict
            for a candidate table is flipped to "regression", modelling a
            bad re-optimisation the rollback path must absorb.
        serve_regroup_stall_rate: Probability (per epoch) the re-grouper
            stalls and produces nothing; the service keeps serving on the
            incumbent table.
        serve_snapshot_corrupt_rate: Probability (per snapshot) the
            freshly written serve snapshot is damaged on disk; a later
            ``--resume`` must fall back to the last intact one.
    """

    seed: int = 0
    corrupt_mode: str = "bitflip"
    corrupt_rate: float = 1.0
    trace_decode_error_rate: float = 0.0
    group_max_chunks: Optional[int] = None
    state_flip_rate: float = 0.0
    state_flip_bits: int = 8
    worker_kill_rate: float = 0.0
    worker_stall_rate: float = 0.0
    worker_stall_seconds: float = 0.0
    kill_tasks: tuple = field(default=())
    stall_tasks: tuple = field(default=())
    max_kill_attempts: int = 1
    serve_swap_flip_rate: float = 0.0
    serve_canary_flip_rate: float = 0.0
    serve_regroup_stall_rate: float = 0.0
    serve_snapshot_corrupt_rate: float = 0.0

    # -- deterministic decisions -------------------------------------------

    def draw(self, site: str, *key) -> float:
        """Uniform value in ``[0, 1)`` fixed by ``(seed, site, key)``."""
        digest = hashlib.sha256(
            repr((self.seed, site, key)).encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / float(1 << 64)

    def decide(self, rate: float, site: str, *key) -> bool:
        """Whether the fault at *site* (probability *rate*) fires for *key*."""
        return rate > 0.0 and self.draw(site, *key) < rate

    # -- consumer hooks ----------------------------------------------------

    def fail_trace_decode(self, workload: str) -> bool:
        """Whether decoding *workload*'s trace body should raise."""
        return self.decide(self.trace_decode_error_rate, "trace-decode", workload)

    def flip_state(self, state: int, index: int) -> int:
        """The (possibly bit-flipped) state-vector value for allocation *index*."""
        if not self.decide(self.state_flip_rate, "state-flip", index):
            return state
        bit = int(self.draw("state-flip-bit", index) * max(1, self.state_flip_bits))
        return state ^ (1 << bit)

    def on_worker_task(self, task_key: str, attempt: int) -> None:
        """Apply scheduled worker faults at the start of one task attempt.

        Called by the parallel engine's worker shim.  A kill is a hard
        ``os._exit`` — the coordinator sees a broken pool, exactly like an
        OOM-killed or segfaulted worker.
        """
        explicit = attempt < self.max_kill_attempts
        if (explicit and task_key in self.kill_tasks) or self.decide(
            self.worker_kill_rate, "worker-kill", task_key, attempt
        ):
            os._exit(KILLED_EXIT_STATUS)
        if (explicit and task_key in self.stall_tasks) or self.decide(
            self.worker_stall_rate, "worker-stall", task_key, attempt
        ):
            time.sleep(self.worker_stall_seconds)

    # -- serving-daemon hooks ----------------------------------------------

    def flip_swap(self, epoch: int, step: int) -> bool:
        """Whether migration *step* of the swap at *epoch* is flipped."""
        return self.decide(self.serve_swap_flip_rate, "serve-swap-flip", epoch, step)

    def flip_canary(self, epoch: int) -> bool:
        """Whether the canary verdict at *epoch* is forced to regression."""
        return self.decide(self.serve_canary_flip_rate, "serve-canary-flip", epoch)

    def stall_regroup(self, epoch: int) -> bool:
        """Whether the re-grouper stalls (produces nothing) at *epoch*."""
        return self.decide(self.serve_regroup_stall_rate, "serve-regroup-stall", epoch)

    def corrupt_snapshot(self, epoch: int) -> bool:
        """Whether the serve snapshot written at *epoch* is damaged on disk."""
        return self.decide(
            self.serve_snapshot_corrupt_rate, "serve-snapshot-corrupt", epoch
        )


# -- process-global registration -----------------------------------------------

_ACTIVE_PLAN: Optional[FaultPlan] = None


def install_fault_plan(plan: Optional[FaultPlan]) -> None:
    """Make *plan* the process's active fault plan (None to clear)."""
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = plan


def clear_fault_plan() -> None:
    """Remove the active fault plan."""
    install_fault_plan(None)


def active_fault_plan() -> Optional[FaultPlan]:
    """The process's active fault plan, or None."""
    return _ACTIVE_PLAN


@contextmanager
def fault_plan_active(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Scope *plan* as the active fault plan, restoring the previous one."""
    previous = active_fault_plan()
    install_fault_plan(plan)
    try:
        yield plan
    finally:
        install_fault_plan(previous)
