"""Deterministic fault-injection framework.

The paper's safety story — every degraded path collapses to plain
jemalloc behaviour — is only credible if the degraded paths actually run.
This package drives them on purpose: a seeded :class:`FaultPlan` can
truncate or bit-flip cached artifacts and traces, force
``TraceFormatError`` mid-replay, exhaust the grouped allocator's chunk
capacity, flip group-state bits to model misprediction, and kill or stall
parallel workers — all reproducibly, so a chaos run that found a bug is a
regression test by construction.

See :mod:`repro.faults.plan` for the decision model and
:mod:`repro.faults.inject` for the on-disk injectors; the chaos suite in
``tests/test_chaos.py`` asserts the pipeline's end-to-end behaviour under
randomized plans.
"""

from .inject import (
    INJECTABLE_SUFFIXES,
    bitflip_file,
    inject_into_file,
    inject_into_path,
    truncate_file,
)
from .plan import (
    KILLED_EXIT_STATUS,
    FaultPlan,
    active_fault_plan,
    clear_fault_plan,
    fault_plan_active,
    install_fault_plan,
)

__all__ = [
    "FaultPlan",
    "INJECTABLE_SUFFIXES",
    "KILLED_EXIT_STATUS",
    "active_fault_plan",
    "bitflip_file",
    "clear_fault_plan",
    "fault_plan_active",
    "inject_into_file",
    "inject_into_path",
    "install_fault_plan",
    "truncate_file",
]
