"""Runtime allocators: baseline, bump pools, random probe, and HALO's group allocator."""

from .base import (
    AddressSpace,
    AllocationError,
    Allocator,
    AllocatorStats,
    CACHE_LINE,
    MIN_ALIGNMENT,
    PAGE_SIZE,
    align_up,
)
from .bump import BumpAllocator
from .group import FragmentationSnapshot, GroupAllocator, GroupMatcher
from .random_group import RandomPoolAllocator
from .sharded import ShardedGroupAllocator
from .size_class import MAX_SMALL, SizeClassAllocator, build_size_classes

__all__ = [
    "AddressSpace",
    "AllocationError",
    "Allocator",
    "AllocatorStats",
    "BumpAllocator",
    "CACHE_LINE",
    "FragmentationSnapshot",
    "GroupAllocator",
    "GroupMatcher",
    "MAX_SMALL",
    "MIN_ALIGNMENT",
    "PAGE_SIZE",
    "RandomPoolAllocator",
    "ShardedGroupAllocator",
    "SizeClassAllocator",
    "align_up",
    "build_size_classes",
]
