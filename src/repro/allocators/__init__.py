"""Runtime allocators: baseline, bump pools, random probe, free lists,
per-thread arenas, and HALO's group allocator."""

from .arena import ArenaAllocator
from .base import (
    AddressSpace,
    AllocationError,
    Allocator,
    AllocatorStats,
    CACHE_LINE,
    MIN_ALIGNMENT,
    PAGE_SIZE,
    align_up,
)
from .bump import BumpAllocator
from .freelist import FreeListAllocator
from .group import FragmentationSnapshot, GroupAllocator, GroupMatcher
from .random_group import RandomPoolAllocator
from .sharded import ShardedGroupAllocator
from .size_class import MAX_SMALL, SizeClassAllocator, build_size_classes

#: Standalone allocator families the evaluation matrix and CLI can measure
#: directly (no offline pipeline required), keyed by family name.  Factories
#: take the run's :class:`AddressSpace` and return a fresh allocator.
ALLOCATOR_FAMILIES = {
    "baseline": lambda space: SizeClassAllocator(space),
    "freelist-ff": lambda space: FreeListAllocator(space, policy="first-fit"),
    "freelist-bf": lambda space: FreeListAllocator(space, policy="best-fit"),
    "arena": lambda space: ArenaAllocator(space, arenas=4),
}


def make_family_allocator(family: str, space: AddressSpace) -> Allocator:
    """Instantiate the registered allocator *family* over *space*."""
    try:
        factory = ALLOCATOR_FAMILIES[family]
    except KeyError:
        raise AllocationError(
            f"unknown allocator family {family!r}; "
            f"expected one of {tuple(ALLOCATOR_FAMILIES)}"
        ) from None
    return factory(space)


__all__ = [
    "ALLOCATOR_FAMILIES",
    "AddressSpace",
    "AllocationError",
    "Allocator",
    "AllocatorStats",
    "ArenaAllocator",
    "BumpAllocator",
    "CACHE_LINE",
    "FragmentationSnapshot",
    "FreeListAllocator",
    "GroupAllocator",
    "GroupMatcher",
    "MAX_SMALL",
    "MIN_ALIGNMENT",
    "PAGE_SIZE",
    "RandomPoolAllocator",
    "ShardedGroupAllocator",
    "SizeClassAllocator",
    "align_up",
    "build_size_classes",
    "make_family_allocator",
]
