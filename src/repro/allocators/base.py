"""Allocator interface and the simulated virtual address space.

All placement policies in this reproduction — the jemalloc-like baseline,
bump pools, the Figure-15 random allocator, and HALO's specialised group
allocator — implement the same small interface: ``malloc``/``free``/
``realloc`` over a shared :class:`AddressSpace`.

The address space models exactly the properties the paper's results depend
on:

* addresses are 64-bit integers, so placement decisions translate into cache
  and TLB behaviour through the simulated memory hierarchy;
* reservations are demand paged — a page only becomes *resident* once it is
  touched — which is what makes the fragmentation measurements of Table 1
  meaningful (an almost-empty chunk still pins its touched pages);
* a per-run random base offset models ASLR/run-to-run placement noise, the
  paper's motivation for reporting medians over repeated trials.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

PAGE_SIZE = 4096
PAGE_SHIFT = 12
CACHE_LINE = 64
MIN_ALIGNMENT = 8  # "All allocations are made with a minimum alignment of 8 bytes"


class AllocationError(Exception):
    """Raised on invalid allocator usage (bad free, bad size...)."""


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to the next multiple of *alignment* (a power of two)."""
    if alignment <= 0 or alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return (value + alignment - 1) & ~(alignment - 1)


class AddressSpace:
    """A simulated process virtual address space with residency accounting.

    ``reserve`` hands out non-overlapping, page-aligned regions (an ``mmap``
    stand-in); ``release`` returns them (``munmap``); ``purge`` discards a
    region's resident pages while keeping the reservation (``madvise``).
    """

    #: Default base of the simulated heap area.
    HEAP_BASE = 0x10_0000_0000

    def __init__(self, seed: int = 0) -> None:
        rng = random.Random(seed)
        # ASLR-style noise: slide the heap base by a page-aligned offset.
        self._cursor = self.HEAP_BASE + rng.randrange(0, 1 << 16) * PAGE_SIZE
        self._rng = rng
        self._reservations: dict[int, int] = {}  # base -> size
        self._touched_pages: set[int] = set()
        self.reserved_bytes = 0
        self.peak_reserved_bytes = 0

    # -- reservation ----------------------------------------------------

    def reserve(self, size: int, alignment: int = PAGE_SIZE) -> int:
        """Reserve *size* bytes aligned to *alignment*; returns the base."""
        if size <= 0:
            raise AllocationError(f"cannot reserve {size} bytes")
        alignment = max(alignment, PAGE_SIZE)
        size = align_up(size, PAGE_SIZE)
        # Per-mapping placement jitter: cache set conflicts depend on the
        # *relative* distances between mappings, so a uniform base shift
        # alone would be translation-invariant; gaps between reservations
        # are what varies between real runs.
        jitter = self._rng.randrange(0, 8) * PAGE_SIZE
        base = align_up(self._cursor + jitter, alignment)
        self._cursor = base + size
        self._reservations[base] = size
        self.reserved_bytes += size
        self.peak_reserved_bytes = max(self.peak_reserved_bytes, self.reserved_bytes)
        return base

    def release(self, base: int) -> None:
        """Release the reservation based at *base*, discarding its pages."""
        size = self._reservations.pop(base, None)
        if size is None:
            raise AllocationError(f"release of unreserved base {base:#x}")
        self.reserved_bytes -= size
        self._discard_pages(base, size)

    def purge(self, base: int, size: int) -> None:
        """Discard resident pages in [base, base+size) but keep the mapping."""
        self._discard_pages(base, size)

    def _discard_pages(self, base: int, size: int) -> None:
        first = base >> PAGE_SHIFT
        last = (base + size - 1) >> PAGE_SHIFT
        for page in range(first, last + 1):
            self._touched_pages.discard(page)

    # -- residency ------------------------------------------------------

    def touch_range(self, addr: int, size: int) -> None:
        """Mark the pages overlapping [addr, addr+size) as resident."""
        # Hot path: nearly all accesses fall within one page.
        first = addr >> PAGE_SHIFT
        last = (addr + size - 1) >> PAGE_SHIFT
        if first == last:
            self._touched_pages.add(first)
            return
        self._touched_pages.update(range(first, last + 1))

    def resident_bytes_in(self, base: int, size: int) -> int:
        """Resident bytes within [base, base+size)."""
        first = base >> PAGE_SHIFT
        last = (base + size - 1) >> PAGE_SHIFT
        touched = self._touched_pages
        count = sum(1 for page in range(first, last + 1) if page in touched)
        return count * PAGE_SIZE

    @property
    def resident_bytes(self) -> int:
        """Total resident bytes across the whole space."""
        return len(self._touched_pages) * PAGE_SIZE


@dataclass
class AllocatorStats:
    """Liveness statistics every allocator maintains."""

    live_bytes: int = 0
    live_blocks: int = 0
    peak_live_bytes: int = 0
    total_allocs: int = 0
    total_frees: int = 0

    def on_alloc(self, size: int) -> None:
        """Record an allocation of *size* bytes."""
        self.live_bytes += size
        self.live_blocks += 1
        self.total_allocs += 1
        if self.live_bytes > self.peak_live_bytes:
            self.peak_live_bytes = self.live_bytes

    def on_free(self, size: int) -> None:
        """Record a free of *size* bytes."""
        self.live_bytes -= size
        self.live_blocks -= 1
        self.total_frees += 1

    def on_resize(self, old_size: int, new_size: int) -> None:
        """Record an in-place resize: live bytes move, block count does not.

        ``total_allocs``/``total_frees`` stay untouched — an in-place
        realloc moves nothing, so counting it as a free+alloc pair would
        inflate the allocator-health table's churn columns.
        """
        self.live_bytes += new_size - old_size
        if self.live_bytes > self.peak_live_bytes:
            self.peak_live_bytes = self.live_bytes


class Allocator(ABC):
    """Abstract allocator; concrete policies override the three operations.

    Concrete allocators must keep :attr:`stats` up to date (most simply via
    :meth:`AllocatorStats.on_alloc` / ``on_free``) and must be able to report
    the size of any live block (needed for ``realloc`` and accounting).
    """

    def __init__(self, space: AddressSpace) -> None:
        self.space = space
        self.stats = AllocatorStats()

    def observable_stats(self) -> dict[str, int]:
        """Counters for the observability harvest (``measure.alloc.*``).

        Subclasses with richer bookkeeping (e.g. the grouped allocator's
        chunk churn and degradation counters) extend this dict.
        """
        return {
            "allocs": self.stats.total_allocs,
            "frees": self.stats.total_frees,
        }

    def iter_live_regions(self) -> "Iterator[tuple[int, int]]":
        """Yield ``(addr, size)`` for every live block, nested allocators
        included.

        Consumed by the heap sanitizer's liveness and cross-allocator
        overlap checks.  The default yields nothing, so allocators without
        per-region bookkeeping degrade to "nothing to check" instead of
        failing the walk.
        """
        return iter(())

    @abstractmethod
    def malloc(self, size: int, alignment: int = MIN_ALIGNMENT) -> int:
        """Allocate *size* bytes; returns the address."""

    @abstractmethod
    def free(self, addr: int) -> int:
        """Free the block at *addr*; returns its size."""

    @abstractmethod
    def size_of(self, addr: int) -> int:
        """Size of the live block at *addr*."""

    def realloc(self, addr: int, new_size: int) -> int:
        """Default realloc: allocate-new / free-old (subclasses may shortcut)."""
        old_size = self.size_of(addr)
        if new_size <= old_size:
            return addr
        new_addr = self.malloc(new_size)
        self.free(addr)
        return new_addr
