"""Coalescing free-list allocator: the classic first-fit/best-fit baseline.

The paper's evaluation compares HALO against a single size-segregated
baseline (jemalloc's placement policy).  Real allocator design space is
wider: the oldest family — dlmalloc's ancestors — keeps freed memory on an
*address-ordered free list*, coalesces adjacent free ranges on free, and
carves requests out of the first (or best) fitting range.  This module
implements that family as a third placement policy for the evaluation
matrix:

* free memory is a sorted list of disjoint, fully-coalesced address
  ranges; a free that touches a neighbouring range merges with it
  immediately (boundary coalescing), so fragmentation here is *external*
  (scattered ranges) rather than the group allocator's internal kind;
* **first-fit** scans ranges in address order and carves the first one
  that can serve the request — the policy dlmalloc calls "address-ordered
  best bet", favouring low addresses and long-lived range reuse;
* **best-fit** picks the fitting range with the least leftover slack
  (ties to the lowest address), trading scan cost for tighter packing;
* carving is alignment-aware: the returned address is aligned up inside
  the chosen range and any leading gap stays on the free list;
* ``realloc`` is real: shrinks release the tail in place, grows extend
  into an adjacent free range when one follows, and only move as a last
  resort.

Backing memory comes from the shared :class:`AddressSpace` in fixed-size
pools; requests too large for a standard pool get a dedicated reservation
sized to fit.  The allocator records *requested* sizes for ``size_of`` /
``free`` (shadow-heap compatible) and tracks the carved extent separately.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator

from .base import (
    AllocationError,
    Allocator,
    AddressSpace,
    MIN_ALIGNMENT,
    PAGE_SIZE,
    align_up,
)

#: Placement policies this family implements.
POLICIES = ("first-fit", "best-fit")


class FreeListAllocator(Allocator):
    """Address-ordered coalescing free-list allocator.

    Args:
        space: Shared simulated address space.
        policy: ``"first-fit"`` or ``"best-fit"`` range selection.
        pool_size: Bytes reserved from the address space per pool; a
            request whose extent exceeds the pool payload gets a dedicated
            pool sized to fit.
    """

    def __init__(
        self,
        space: AddressSpace,
        policy: str = "first-fit",
        pool_size: int = 1 << 20,
    ) -> None:
        super().__init__(space)
        if policy not in POLICIES:
            raise AllocationError(
                f"unknown free-list policy {policy!r}; expected one of {POLICIES}"
            )
        if pool_size < PAGE_SIZE:
            raise AllocationError(f"pool size must be at least a page, got {pool_size}")
        self.policy = policy
        self.pool_size = pool_size
        # Disjoint, fully-coalesced free ranges in ascending address order.
        # Parallel lists keep bisect simple and the common paths allocation-free.
        self._starts: list[int] = []
        self._ends: list[int] = []
        # Live bookkeeping: requested size (what size_of/free report) and
        # carved extent (what actually returns to the free list).
        self._sizes: dict[int, int] = {}
        self._extents: dict[int, int] = {}
        # Pool reservations as (base, size), in reservation order.
        self._pools: list[tuple[int, int]] = []
        #: Free operations that merged with at least one neighbouring range.
        self.coalesced_frees = 0
        #: In-place realloc outcomes (shrink-in-place or grow-into-neighbour).
        self.inplace_reallocs = 0
        #: Reallocs that had to move the block.
        self.moved_reallocs = 0

    # -- free-range bookkeeping -----------------------------------------

    def _insert_range(self, start: int, end: int) -> None:
        """Insert [start, end) into the free list, coalescing neighbours."""
        index = bisect_right(self._starts, start)
        merged = False
        # Merge with the preceding range when it ends exactly at `start`.
        if index > 0 and self._ends[index - 1] == start:
            index -= 1
            self._ends[index] = end
            merged = True
        else:
            self._starts.insert(index, start)
            self._ends.insert(index, end)
        # Merge with the following range when it starts exactly at `end`.
        if index + 1 < len(self._starts) and self._starts[index + 1] == end:
            self._ends[index] = self._ends[index + 1]
            del self._starts[index + 1]
            del self._ends[index + 1]
            merged = True
        if merged:
            self.coalesced_frees += 1

    def _carve(self, index: int, addr: int, extent: int) -> None:
        """Remove [addr, addr+extent) from the range at *index*."""
        start, end = self._starts[index], self._ends[index]
        lead = addr - start
        tail = end - (addr + extent)
        if lead and tail:
            # Split: keep the lead in place, insert the tail after it.
            self._ends[index] = start + lead
            self._starts.insert(index + 1, addr + extent)
            self._ends.insert(index + 1, end)
        elif lead:
            self._ends[index] = start + lead
        elif tail:
            self._starts[index] = addr + extent
        else:
            del self._starts[index]
            del self._ends[index]

    def _grow_pool(self, extent: int, alignment: int) -> None:
        """Reserve a new pool able to serve an *extent*-byte aligned request."""
        # Worst case the aligned address slides by (alignment - 1) into the
        # pool, so over-reserve accordingly for large aligned requests.
        need = extent + (alignment - PAGE_SIZE if alignment > PAGE_SIZE else 0)
        size = max(self.pool_size, align_up(need, PAGE_SIZE))
        base = self.space.reserve(size)
        self._pools.append((base, size))
        self._insert_range(base, base + size)

    def _find_fit(self, extent: int, alignment: int) -> tuple[int, int]:
        """Locate ``(index, aligned addr)`` of the range to carve, or (-1, 0)."""
        starts, ends = self._starts, self._ends
        if self.policy == "first-fit":
            for index in range(len(starts)):
                addr = align_up(starts[index], alignment)
                if addr + extent <= ends[index]:
                    return index, addr
            return -1, 0
        best_index, best_addr, best_slack = -1, 0, 0
        for index in range(len(starts)):
            addr = align_up(starts[index], alignment)
            if addr + extent > ends[index]:
                continue
            slack = (ends[index] - starts[index]) - extent
            if best_index < 0 or slack < best_slack:
                best_index, best_addr, best_slack = index, addr, slack
        return best_index, best_addr

    # -- the allocator interface ----------------------------------------

    def malloc(self, size: int, alignment: int = MIN_ALIGNMENT) -> int:
        if size <= 0:
            raise AllocationError(f"invalid malloc size {size}")
        alignment = max(alignment, MIN_ALIGNMENT)
        extent = align_up(size, MIN_ALIGNMENT)
        index, addr = self._find_fit(extent, alignment)
        if index < 0:
            self._grow_pool(extent, alignment)
            index, addr = self._find_fit(extent, alignment)
            if index < 0:  # pragma: no cover - pool sized to fit above
                raise AllocationError(f"request of {size} bytes cannot fit a pool")
        self._carve(index, addr, extent)
        self._sizes[addr] = size
        self._extents[addr] = extent
        self.stats.on_alloc(size)
        return addr

    def free(self, addr: int) -> int:
        size = self._sizes.pop(addr, None)
        if size is None:
            raise AllocationError(f"free of unknown address {addr:#x}")
        extent = self._extents.pop(addr)
        self._insert_range(addr, addr + extent)
        self.stats.on_free(size)
        return size

    def size_of(self, addr: int) -> int:
        size = self._sizes.get(addr)
        if size is None:
            raise AllocationError(f"size_of unknown address {addr:#x}")
        return size

    def realloc(self, addr: int, new_size: int) -> int:
        old_size = self._sizes.get(addr)
        if old_size is None:
            raise AllocationError(f"realloc of unknown address {addr:#x}")
        if new_size <= 0:
            raise AllocationError(f"invalid realloc size {new_size}")
        extent = self._extents[addr]
        new_extent = align_up(new_size, MIN_ALIGNMENT)
        if new_extent <= extent:
            # Shrink in place; the freed tail coalesces back immediately.
            if new_extent < extent:
                self._insert_range(addr + new_extent, addr + extent)
                self._extents[addr] = new_extent
            self._sizes[addr] = new_size
            self.stats.on_resize(old_size, new_size)
            self.inplace_reallocs += 1
            return addr
        # Grow: extend into the free range starting exactly at our end.
        tail = addr + extent
        index = bisect_right(self._starts, tail) - 1
        if (
            0 <= index < len(self._starts)
            and self._starts[index] == tail
            and self._ends[index] - tail >= new_extent - extent
        ):
            self._carve(index, tail, new_extent - extent)
            self._extents[addr] = new_extent
            self._sizes[addr] = new_size
            self.stats.on_resize(old_size, new_size)
            self.inplace_reallocs += 1
            return addr
        new_addr = self.malloc(new_size)
        self.free(addr)
        self.moved_reallocs += 1
        return new_addr

    # -- introspection ---------------------------------------------------

    def iter_live_regions(self) -> Iterator[tuple[int, int]]:
        yield from self._sizes.items()

    def iter_free_ranges(self) -> Iterator[tuple[int, int]]:
        """Yield ``(start, end)`` for every free range (sanitizer hook)."""
        yield from zip(self._starts, self._ends)

    def observable_stats(self) -> dict[str, int]:
        stats = super().observable_stats()
        stats.update(
            coalesced_frees=self.coalesced_frees,
            inplace_reallocs=self.inplace_reallocs,
            moved_reallocs=self.moved_reallocs,
            free_ranges=len(self._starts),
            pools=len(self._pools),
        )
        return stats


__all__ = ["FreeListAllocator", "POLICIES"]
