"""Per-thread arena allocator with a cross-thread free mailbox.

Production allocators (jemalloc's arenas, mimalloc's heaps, tcmalloc's
per-CPU caches) avoid lock contention by giving every thread its own
allocation area and handling the awkward case — thread A frees memory
thread B allocated — through a deferred hand-back queue.  This module
models that design on the simulated multi-core :class:`Machine`:

* each simulated thread maps to one of N arenas (``thread_id mod N``),
  each arena a private :class:`FreeListAllocator` carving from its own
  pools in the shared address space;
* a *same-thread* free returns memory to the owning arena immediately;
* a *cross-thread* free parks the address in the owner's **mailbox** —
  the block is logically dead at once (stats, liveness, the shadow heap
  all see the free) but its memory rejoins the owner's free list only
  when the owner next allocates, mirroring mimalloc's deferred free
  lists.  ``cross_thread_frees`` counts these, surfacing how much of a
  workload's traffic crosses arena boundaries;
* a cross-thread ``realloc`` allocates in the *current* thread's arena
  and parks the old block, so no thread ever mutates another arena's
  free list — the invariant that makes the real design lock-free.

Everything is deterministic: "threads" are the mix scheduler's seeded
interleave of tick streams, so the same seed produces the same mailbox
traffic, the same flush points, and bit-identical placement.
"""

from __future__ import annotations

from typing import Iterator

from .base import AllocationError, Allocator, AddressSpace, MIN_ALIGNMENT
from .freelist import FreeListAllocator


class ArenaAllocator(Allocator):
    """N per-thread arenas over coalescing free lists, with mailboxes.

    Args:
        space: Shared simulated address space (each arena reserves its own
            pools from it).
        arenas: Number of arenas; thread ids map on by modulo.
        policy: Free-list policy each arena uses.
        pool_size: Per-arena pool reservation size.
    """

    def __init__(
        self,
        space: AddressSpace,
        arenas: int = 4,
        policy: str = "first-fit",
        pool_size: int = 1 << 20,
    ) -> None:
        super().__init__(space)
        if arenas < 1:
            raise AllocationError(f"need at least one arena, got {arenas}")
        self.arena_count = arenas
        self._arenas = [
            FreeListAllocator(space, policy=policy, pool_size=pool_size)
            for _ in range(arenas)
        ]
        self._mailboxes: list[list[int]] = [[] for _ in range(arenas)]
        self._owner: dict[int, int] = {}  # live addr -> arena index
        self._thread = 0  # current arena index
        #: Frees issued by a thread that does not own the block's arena.
        self.cross_thread_frees = 0
        #: Mailbox drains performed at allocation time.
        self.mailbox_flushes = 0

    # -- thread routing ---------------------------------------------------

    def set_thread(self, thread_id: int) -> None:
        """Route subsequent heap ops through *thread_id*'s arena."""
        self._thread = thread_id % self.arena_count

    @property
    def current_arena(self) -> int:
        """Arena index serving the current simulated thread."""
        return self._thread

    def _flush(self, index: int) -> None:
        """Drain *index*'s mailbox into its free list (owner-side, so the
        deferred frees coalesce under the owner's own bookkeeping)."""
        mailbox = self._mailboxes[index]
        if not mailbox:
            return
        arena = self._arenas[index]
        for addr in mailbox:
            arena.free(addr)
        mailbox.clear()
        self.mailbox_flushes += 1

    # -- the allocator interface ------------------------------------------

    def malloc(self, size: int, alignment: int = MIN_ALIGNMENT) -> int:
        index = self._thread
        # The owner drains its mailbox before allocating, so deferred
        # cross-thread frees become reusable space at the first opportunity.
        self._flush(index)
        addr = self._arenas[index].malloc(size, alignment)
        self._owner[addr] = index
        self.stats.on_alloc(size)
        return addr

    def free(self, addr: int) -> int:
        owner = self._owner.pop(addr, None)
        if owner is None:
            raise AllocationError(f"free of unknown address {addr:#x}")
        size = self._arenas[owner].size_of(addr)
        if owner == self._thread:
            self._arenas[owner].free(addr)
        else:
            # Logically dead now; physically reclaimed at the owner's next
            # allocation.  Never touch a foreign arena's free list.
            self.cross_thread_frees += 1
            self._mailboxes[owner].append(addr)
        self.stats.on_free(size)
        return size

    def size_of(self, addr: int) -> int:
        owner = self._owner.get(addr)
        if owner is None:
            raise AllocationError(f"size_of unknown address {addr:#x}")
        return self._arenas[owner].size_of(addr)

    def realloc(self, addr: int, new_size: int) -> int:
        owner = self._owner.get(addr)
        if owner is None:
            raise AllocationError(f"realloc of unknown address {addr:#x}")
        if owner == self._thread:
            arena = self._arenas[owner]
            self._flush(owner)
            old_size = arena.size_of(addr)
            new_addr = arena.realloc(addr, new_size)
            if new_addr == addr:
                self.stats.on_resize(old_size, new_size)
            else:
                del self._owner[addr]
                self._owner[new_addr] = owner
                self.stats.on_free(old_size)
                self.stats.on_alloc(new_size)
            return new_addr
        # Cross-thread resize: allocate here, park the old block with its
        # owner — the move is the price of never locking a foreign arena.
        new_addr = self.malloc(new_size)
        self.free(addr)
        return new_addr

    # -- introspection -----------------------------------------------------

    def iter_live_regions(self) -> Iterator[tuple[int, int]]:
        for addr, owner in self._owner.items():
            yield addr, self._arenas[owner].size_of(addr)

    def observable_stats(self) -> dict[str, int]:
        stats = super().observable_stats()
        stats.update(
            cross_thread_frees=self.cross_thread_frees,
            mailbox_flushes=self.mailbox_flushes,
            mailbox_pending=sum(len(m) for m in self._mailboxes),
            arenas=self.arena_count,
            coalesced_frees=sum(a.coalesced_frees for a in self._arenas),
            free_ranges=sum(len(a._starts) for a in self._arenas),
            pools=sum(len(a._pools) for a in self._arenas),
        )
        return stats


__all__ = ["ArenaAllocator"]
