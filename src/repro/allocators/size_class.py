"""A jemalloc-like size-segregated allocator: the paper's baseline.

The evaluation in the paper measures everything against jemalloc 5.1.0.  What
HALO exploits about jemalloc (and ptmalloc2, and tcmalloc) is purely its
*placement policy*, described in Section 2.1 and Figure 1: free memory is
organised around a fixed set of size classes, so objects are co-located by
(size class, allocation order) and freed slots are reused lowest-address
first.  This allocator reproduces that policy:

* jemalloc-style size-class spacing (8, 16, 32, 48, 64, 80, ..., four
  classes per power-of-two group);
* per-class slabs ("runs") carved from the simulated address space, each
  holding a fixed number of equal-sized regions;
* allocation from the lowest-addressed non-full run, lowest free slot first
  (jemalloc's first-fit-by-address reuse);
* large allocations (above the small-class limit) served as standalone
  page-aligned reservations.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Optional

from .base import (
    AllocationError,
    Allocator,
    AddressSpace,
    MIN_ALIGNMENT,
    PAGE_SIZE,
    align_up,
)

#: Largest size served from the size-class bins (jemalloc's small limit).
MAX_SMALL = 14336


def build_size_classes(max_small: int = MAX_SMALL) -> list[int]:
    """Return the ascending list of small size classes.

    Follows jemalloc's scheme: 8 then 16..128 spaced by 16, after which each
    power-of-two group [2^k, 2^(k+1)] contains four classes spaced 2^(k-2).
    """
    classes = [8] + list(range(16, 129, 16))
    spacing, base = 32, 128
    while base < max_small:
        for step in range(1, 5):
            value = base + spacing * step
            if value > max_small:
                return classes
            classes.append(value)
        base *= 2
        spacing *= 2
    return classes


class _Run:
    """A slab of equal-sized regions belonging to one size-class bin."""

    __slots__ = ("base", "region_size", "capacity", "free_slots", "live", "queued")

    def __init__(self, base: int, region_size: int, capacity: int) -> None:
        self.base = base
        self.region_size = region_size
        self.capacity = capacity
        # Min-heap of free slot indices: lowest-address reuse within the run.
        self.free_slots = list(range(capacity))
        self.live = 0
        self.queued = False  # whether the run is in its bin's non-full heap

    def take(self) -> int:
        slot = heappop(self.free_slots)
        self.live += 1
        return self.base + slot * self.region_size

    def give_back(self, addr: int) -> None:
        slot = (addr - self.base) // self.region_size
        heappush(self.free_slots, slot)
        self.live -= 1

    @property
    def full(self) -> bool:
        return not self.free_slots


class _Bin:
    """All runs for a single size class."""

    __slots__ = ("region_size", "run_capacity", "run_bytes", "nonfull", "runs")

    def __init__(self, region_size: int) -> None:
        self.region_size = region_size
        # Aim for a few pages per run, as jemalloc does for small classes.
        capacity = max(1, (4 * PAGE_SIZE) // region_size)
        self.run_capacity = min(capacity, 512)
        self.run_bytes = align_up(region_size * self.run_capacity, PAGE_SIZE)
        self.nonfull: list[tuple[int, _Run]] = []  # (base, run) min-heap
        self.runs: list[_Run] = []


class SizeClassAllocator(Allocator):
    """Size-segregated allocator with jemalloc-style placement (the baseline)."""

    def __init__(self, space: AddressSpace, max_small: int = MAX_SMALL) -> None:
        super().__init__(space)
        self._classes = build_size_classes(max_small)
        self._bins = {size: _Bin(size) for size in self._classes}
        self._max_small = self._classes[-1]
        # Class lookup table indexed by ceil(size / 8): every class is a
        # multiple of 8, so the smallest class >= size equals the
        # smallest class >= the rounded-up index.  O(1) on the malloc
        # hot path instead of a binary search.
        table = []
        ci = 0
        for idx in range((self._max_small >> 3) + 1):
            while self._classes[ci] < (idx << 3):
                ci += 1
            table.append(self._classes[ci])
        self._class_table = table
        # addr -> (requested size, run or None for large)
        self._live: dict[int, tuple[int, Optional[_Run]]] = {}
        self._large: dict[int, int] = {}  # addr -> reserved bytes

    # -- class lookup ----------------------------------------------------

    def size_class(self, size: int) -> Optional[int]:
        """Smallest size class holding *size*, or None for large requests."""
        if size > self._max_small:
            return None
        return self._class_table[(size + 7) >> 3]

    # -- allocation ------------------------------------------------------

    def malloc(self, size: int, alignment: int = MIN_ALIGNMENT) -> int:
        if size <= 0:
            raise AllocationError(f"invalid malloc size {size}")
        want = size if size >= alignment else alignment
        if want > self._max_small:
            addr = self._malloc_large(size, alignment)
            self._live[addr] = (size, None)
        else:
            run = self._nonfull_run(self._bins[self._class_table[(want + 7) >> 3]])
            addr = run.take()
            if not run.free_slots:
                run.queued = False
            self._live[addr] = (size, run)
        stats = self.stats
        stats.live_bytes += size
        stats.live_blocks += 1
        stats.total_allocs += 1
        if stats.live_bytes > stats.peak_live_bytes:
            stats.peak_live_bytes = stats.live_bytes
        return addr

    def _nonfull_run(self, bin_: _Bin) -> _Run:
        nonfull = bin_.nonfull
        while nonfull:
            run = nonfull[0][1]
            if run.queued and run.free_slots:
                return run
            heappop(nonfull)  # stale entry
        base = self.space.reserve(bin_.run_bytes)
        run = _Run(base, bin_.region_size, bin_.run_capacity)
        run.queued = True
        bin_.runs.append(run)
        heappush(nonfull, (base, run))
        return run

    def _malloc_large(self, size: int, alignment: int) -> int:
        reserved = align_up(size, PAGE_SIZE)
        addr = self.space.reserve(reserved, alignment=max(alignment, PAGE_SIZE))
        self._large[addr] = reserved
        return addr

    # -- deallocation ----------------------------------------------------

    def free(self, addr: int) -> int:
        entry = self._live.pop(addr, None)
        if entry is None:
            raise AllocationError(f"free of unknown address {addr:#x}")
        size, run = entry
        if run is None:
            self.space.release(addr)
            del self._large[addr]
        else:
            was_full = not run.free_slots
            run.give_back(addr)
            if was_full and not run.queued:
                run.queued = True
                heappush(self._bins[run.region_size].nonfull, (run.base, run))
        stats = self.stats
        stats.live_bytes -= size
        stats.live_blocks -= 1
        stats.total_frees += 1
        return size

    def size_of(self, addr: int) -> int:
        entry = self._live.get(addr)
        if entry is None:
            raise AllocationError(f"size_of unknown address {addr:#x}")
        return entry[0]

    def realloc(self, addr: int, new_size: int) -> int:
        """jemalloc-style realloc: stays in place within the same size class."""
        entry = self._live.get(addr)
        if entry is None:
            raise AllocationError(f"realloc of unknown address {addr:#x}")
        old_size, run = entry
        if new_size <= old_size:
            # Shrinking keeps the block in place (the region already fits).
            self._live[addr] = (new_size, run)
            self.stats.on_resize(old_size, new_size)
            return addr
        if run is not None and self.size_class(new_size) == run.region_size:
            self._live[addr] = (new_size, run)
            self.stats.on_resize(old_size, new_size)
            return addr
        new_addr = self.malloc(new_size)
        self.free(addr)
        return new_addr

    # -- introspection ----------------------------------------------------

    @property
    def size_classes(self) -> list[int]:
        """The allocator's ascending size-class list."""
        return list(self._classes)

    def iter_live_regions(self):
        for addr, (size, _run) in self._live.items():
            yield addr, size
