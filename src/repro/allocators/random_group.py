"""The Figure-15 sensitivity probe: random assignment to bump pools.

Section 5.2 of the paper runs every benchmark under "an allocator that
randomly assigns small objects to one of four bump allocated pools, much in
the same way that a variant of HALO with an extremely poor grouping
algorithm might".  Benchmarks that slow down under this allocator are the
placement-sensitive ones — the same set on which HALO helps.

This allocator reproduces that policy: requests smaller than the page size
go to a uniformly random pool; everything else is forwarded to the fallback
(baseline) allocator, exactly as HALO forwards ungrouped requests.
"""

from __future__ import annotations

import random

from .base import Allocator, AddressSpace, MIN_ALIGNMENT, PAGE_SIZE
from .bump import BumpAllocator


class RandomPoolAllocator(Allocator):
    """Randomly scatter small objects over *pools* bump pools."""

    def __init__(
        self,
        space: AddressSpace,
        fallback: Allocator,
        pools: int = 4,
        max_pooled_size: int = PAGE_SIZE,
        seed: int = 0,
        pool_size: int = 1 << 22,
    ) -> None:
        super().__init__(space)
        self.fallback = fallback
        self.max_pooled_size = max_pooled_size
        self._rng = random.Random(seed)
        self._pools = [BumpAllocator(space, pool_size) for _ in range(pools)]
        self._pool_of: dict[int, BumpAllocator] = {}

    def malloc(self, size: int, alignment: int = MIN_ALIGNMENT) -> int:
        if size >= self.max_pooled_size:
            return self.fallback.malloc(size, alignment)
        pool = self._rng.choice(self._pools)
        addr = pool.malloc(size, alignment)
        self._pool_of[addr] = pool
        self.stats.on_alloc(size)
        return addr

    def free(self, addr: int) -> int:
        pool = self._pool_of.pop(addr, None)
        if pool is None:
            return self.fallback.free(addr)
        size = pool.free(addr)
        self.stats.on_free(size)
        return size

    def size_of(self, addr: int) -> int:
        pool = self._pool_of.get(addr)
        if pool is None:
            return self.fallback.size_of(addr)
        return pool.size_of(addr)

    def iter_live_regions(self):
        for pool in self._pools:
            yield from pool.iter_live_regions()
        yield from self.fallback.iter_live_regions()
