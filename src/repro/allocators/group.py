"""HALO's specialised group allocator (paper Section 4.4, Figure 11).

Memory is reserved from the OS in large demand-paged *slabs*, managed in
smaller group-specific *chunks* from which regions are bump-allocated:

* on a grouped allocation, a region is reserved from the group's 'current'
  chunk by bump allocation — no per-object headers, ≥8-byte alignment —
  guaranteeing contiguity between consecutive grouped allocations;
* when the current chunk is exhausted (or the group has none), a new chunk
  is carved from the current slab; when the slab is exhausted, a new slab is
  reserved;
* chunks are aligned to their size, so ``free`` locates a chunk header from
  a region pointer with bitwise operations alone; the header's
  ``live_regions`` count is decremented and the chunk is reclaimed when it
  reaches zero, either kept as a spare for reuse or purged;
* requests that match no group selector, or exceed the maximum grouped
  object size (page size), are forwarded to the next available allocator —
  the paper uses ``dlsym`` chaining; here the fallback is an explicit
  allocator object.

The artefact appendix's per-benchmark quirks are supported directly:
``chunk_size`` and ``max_spare_chunks`` are constructor parameters, and
``always_reuse_chunks`` reproduces the omnetpp/xalanc limitation where
"group chunks are always reused".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from ..faults.plan import active_fault_plan
from .base import (
    AllocationError,
    Allocator,
    AddressSpace,
    MIN_ALIGNMENT,
    PAGE_SIZE,
    align_up,
)


class GroupMatcher(Protocol):
    """Decides group membership from the group-state vector (Section 4.3)."""

    def match(self, state: int) -> Optional[int]:
        """Return the matching group id for state-vector value *state*."""
        ...


class _Chunk:
    """A size-aligned chunk serving one group by bump allocation."""

    #: Bytes reserved at the chunk base for the header (live_regions etc.).
    HEADER_SIZE = 64

    __slots__ = ("base", "size", "group", "cursor", "live_regions", "high_water", "colour")

    def __init__(self, base: int, size: int, group: int, colour: int = 0) -> None:
        self.base = base
        self.size = size
        self.group = group
        self.colour = colour
        self.cursor = base + self.HEADER_SIZE + colour
        self.live_regions = 0
        self.high_water = self.cursor

    def try_reserve(self, size: int, alignment: int) -> Optional[int]:
        """Bump-allocate *size* bytes, or None if the chunk is too full."""
        addr = align_up(self.cursor, alignment)
        if addr + size > self.base + self.size:
            return None
        self.cursor = addr + size
        if self.cursor > self.high_water:
            self.high_water = self.cursor
        self.live_regions += 1
        return addr

    def reset(self, group: int, colour: int = 0) -> None:
        """Recycle this chunk for *group* (spare-chunk reuse)."""
        self.group = group
        self.colour = colour
        self.cursor = self.base + self.HEADER_SIZE + colour
        self.live_regions = 0
        # The high-water mark belongs to the previous tenant; carrying it
        # across a reuse misattributes its bump footprint to the new group
        # (and breaks the cursor/high-water coherence the sanitizer checks).
        self.high_water = self.cursor


@dataclass
class MigrationReport:
    """Outcome of one :meth:`GroupAllocator.migrate_groups` call.

    Attributes:
        moved_regions: Live regions relocated into their new group's pool.
        moved_bytes: Sum of the moved regions' sizes.
        aborted: True when the abort hook fired mid-migration; the heap is
            left exactly as it was before the call (copies were discarded).
        forwarding: old address -> new address for every moved region.
            Callers holding raw addresses (the serving daemon's retained-
            object table) must rewrite them through this map.
    """

    moved_regions: int = 0
    moved_bytes: int = 0
    aborted: bool = False
    forwarding: dict[int, int] = field(default_factory=dict)


@dataclass
class FragmentationSnapshot:
    """Live-vs-resident accounting of grouped data (paper Table 1)."""

    live_bytes: int
    resident_bytes: int
    #: Sum of per-chunk bump high-water footprints (bytes past each chunk
    #: header the cursor ever reached).  Bounded by ``resident_bytes`` modulo
    #: page rounding; a reused spare carrying a stale high-water mark from
    #: its previous tenant shows up here as over-reporting.
    high_water_bytes: int = 0

    @property
    def wasted_bytes(self) -> int:
        return max(0, self.resident_bytes - self.live_bytes)

    @property
    def fraction(self) -> float:
        """Fraction of resident grouped memory that is not live."""
        if self.resident_bytes <= 0:
            return 0.0
        return self.wasted_bytes / self.resident_bytes


class GroupAllocator(Allocator):
    """The specialised runtime allocator HALO synthesises.

    Args:
        space: Shared simulated address space.
        fallback: The "next available allocator" — ungrouped requests are
            forwarded here (jemalloc in the paper's evaluation).
        matcher: Selector evaluator; consulted with the current state-vector
            value on every small allocation.
        state_vector: The shared :class:`~repro.machine.machine.GroupStateVector`
            the rewritten binary toggles.
        chunk_size: Chunk size in bytes (power of two; paper default 1 MiB).
        slab_size: Slab reservation size (amortises mmap costs).
        max_spare_chunks: Empty chunks retained for reuse before purging
            dirty pages (paper default 1).
        max_grouped_size: Requests at or above this size bypass grouping
            (paper: the page size).
        always_reuse_chunks: Never purge empty chunks; always keep them for
            reuse (the omnetpp/xalanc configuration).
        colour_stride: When positive, each group's chunks start their bump
            cursor at a group-specific offset (``group * stride mod page``).
            Chunks are size-aligned, so without colouring every group's hot
            prefix lands on the same cache sets; staggering the starts is
            the §4.4 extension "to reduce allocator-induced conflict
            misses" (Afek, Dice & Morrison's cache-index-aware allocation).
        max_total_chunks: Cap on chunks the allocator may ever carve.  Once
            reached (and no spare is reusable), grouped requests degrade to
            the fallback allocator instead of failing — the paper's "next
            available allocator" semantics under pool exhaustion.  None
            means unbounded (the production default).
    """

    def __init__(
        self,
        space: AddressSpace,
        fallback: Allocator,
        matcher: GroupMatcher,
        state_vector,
        chunk_size: int = 1 << 20,
        slab_size: int = 16 << 20,
        max_spare_chunks: int = 1,
        max_grouped_size: int = PAGE_SIZE,
        always_reuse_chunks: bool = False,
        colour_stride: int = 0,
        max_total_chunks: Optional[int] = None,
    ) -> None:
        super().__init__(space)
        if chunk_size <= 0 or chunk_size & (chunk_size - 1):
            raise AllocationError(f"chunk size must be a power of two, got {chunk_size}")
        if slab_size < chunk_size:
            raise AllocationError(
                f"slab size {slab_size} smaller than chunk size {chunk_size}"
            )
        self.fallback = fallback
        self.matcher = matcher
        self.state_vector = state_vector
        self.chunk_size = chunk_size
        self.slab_size = align_up(slab_size, chunk_size)
        self.max_spare_chunks = max_spare_chunks
        self.max_grouped_size = max_grouped_size
        self.always_reuse_chunks = always_reuse_chunks
        self.max_total_chunks = max_total_chunks
        if colour_stride < 0 or colour_stride % MIN_ALIGNMENT:
            raise AllocationError(
                f"colour stride must be a non-negative multiple of "
                f"{MIN_ALIGNMENT}, got {colour_stride}"
            )
        self.colour_stride = colour_stride

        self._chunks: dict[int, _Chunk] = {}  # chunk base -> chunk
        self._current: dict[int, _Chunk] = {}  # group id -> current chunk
        self._spares: list[_Chunk] = []
        self._slab_cursor = 0
        self._slab_end = 0
        self._region_sizes: dict[int, int] = {}  # grouped region addr -> size
        self._chunk_mask = ~(chunk_size - 1)

        # Statistics for Table 1 and the evaluation harness.
        self.grouped_live_bytes = 0
        self.grouped_allocs = 0
        self.forwarded_allocs = 0
        #: Grouped requests served by the fallback because the group's
        #: pool was exhausted (nonzero only under capacity pressure).
        self.degraded_allocs = 0
        #: Allocations whose selector consult saw a fault-flipped state
        #: vector (misprediction modelling; nonzero only under injection).
        self.faulted_matches = 0
        self.chunks_created = 0
        self.chunks_reused = 0
        self.chunks_purged = 0
        #: Live-layout migration totals (the serving daemon's hot swaps).
        self.migrated_regions = 0
        self.migrated_bytes = 0

    # -- allocation -----------------------------------------------------------

    def malloc(self, size: int, alignment: int = MIN_ALIGNMENT) -> int:
        if size <= 0:
            raise AllocationError(f"invalid malloc size {size}")
        group = None
        if size < self.max_grouped_size:
            state = self.state_vector.value
            plan = active_fault_plan()
            if plan is not None and plan.state_flip_rate:
                flipped = plan.flip_state(
                    state, self.grouped_allocs + self.forwarded_allocs
                )
                if flipped != state:
                    self.faulted_matches += 1
                    state = flipped
            group = self.matcher.match(state)
        if group is None:
            self.forwarded_allocs += 1
            return self.fallback.malloc(size, alignment)
        return self._group_malloc(group, size, max(alignment, MIN_ALIGNMENT))

    def _group_malloc(self, group: int, size: int, alignment: int) -> int:
        chunk = self._current.get(group)
        addr = chunk.try_reserve(size, alignment) if chunk is not None else None
        if addr is None:
            if chunk is not None and chunk.live_regions == 0:
                # free() skips retirement while a chunk is current; if the
                # displaced chunk already drained we must retire it here,
                # otherwise it is orphaned — never reused, never purged.
                del self._current[group]
                self._retire(chunk)
            chunk = self._fresh_chunk(group)
            if chunk is None:
                # Pool exhausted: degrade to the "next available allocator"
                # (paper allocation semantics) instead of failing the request.
                return self._degrade(size, alignment)
            self._current[group] = chunk
            addr = chunk.try_reserve(size, alignment)
            if addr is None:
                # A request too large even for an empty chunk (colouring or
                # header overhead can push a near-page object past the end).
                return self._degrade(size, alignment)
        self._region_sizes[addr] = size
        self.grouped_live_bytes += size
        self.grouped_allocs += 1
        self.stats.on_alloc(size)
        # Bump allocation hands out the region; the program will touch it.
        # The chunk header itself is written at carve time (residency).
        return addr

    def _degrade(self, size: int, alignment: int) -> int:
        """Serve a grouped request through the fallback (pool exhausted)."""
        self.degraded_allocs += 1
        self.forwarded_allocs += 1
        return self.fallback.malloc(size, alignment)

    def _chunk_budget(self) -> Optional[int]:
        """The effective chunk cap: configured limit and/or injected fault."""
        limit = self.max_total_chunks
        plan = active_fault_plan()
        if plan is not None and plan.group_max_chunks is not None:
            limit = (
                plan.group_max_chunks
                if limit is None
                else min(limit, plan.group_max_chunks)
            )
        return limit

    def _colour_of(self, group: int) -> int:
        """Per-group bump-start stagger (0 when colouring is disabled)."""
        if not self.colour_stride:
            return 0
        return (group * self.colour_stride) % PAGE_SIZE

    #: Concrete chunk type this allocator carves and recycles.  Subclasses
    #: with richer chunks (the sharded variant's free-list shards) override
    #: this so every path — fresh carve, spare reuse, migration refill —
    #: produces chunks of the right type.
    _chunk_class: type[_Chunk] = _Chunk

    def _fresh_chunk(self, group: int) -> Optional[_Chunk]:
        """Carve (or recycle) a chunk for *group*; None when exhausted."""
        if self._spares:
            chunk = self._spares.pop()
            if type(chunk) is not self._chunk_class:
                # A spare carved by a different layer (base-class migration /
                # place_region over a subclass, or vice versa) is rebuilt as
                # this allocator's chunk type before reuse: the spare is
                # empty, so only its identity (base, size) carries over.
                rebuilt = self._chunk_class(chunk.base, chunk.size, group)
                self._chunks[chunk.base] = rebuilt
                chunk = rebuilt
            chunk.reset(group, self._colour_of(group))
            self.chunks_reused += 1
            self.space.touch_range(chunk.base, _Chunk.HEADER_SIZE)
            return chunk
        limit = self._chunk_budget()
        if limit is not None and self.chunks_created >= limit:
            return None
        if self._slab_cursor + self.chunk_size > self._slab_end:
            base = self.space.reserve(self.slab_size, alignment=self.chunk_size)
            self._slab_cursor = base
            self._slab_end = base + self.slab_size
        base = self._slab_cursor
        self._slab_cursor += self.chunk_size
        chunk = self._chunk_class(base, self.chunk_size, group, self._colour_of(group))
        self._chunks[base] = chunk
        self.chunks_created += 1
        self.space.touch_range(base, _Chunk.HEADER_SIZE)
        return chunk

    # -- deallocation ------------------------------------------------------------

    def free(self, addr: int) -> int:
        chunk = self._chunk_of(addr)
        if chunk is None:
            return self.fallback.free(addr)
        size = self._region_sizes.pop(addr, None)
        if size is None:
            raise AllocationError(f"group free of unknown region {addr:#x}")
        chunk.live_regions -= 1
        self.grouped_live_bytes -= size
        self.stats.on_free(size)
        if chunk.live_regions == 0 and self._current.get(chunk.group) is not chunk:
            self._retire(chunk)
        return size

    def _chunk_of(self, addr: int) -> Optional[_Chunk]:
        """Locate a region's chunk via address masking (the header trick)."""
        return self._chunks.get(addr & self._chunk_mask)

    def _retire(self, chunk: _Chunk) -> None:
        """An emptied chunk becomes a spare or has its dirty pages purged."""
        if self.always_reuse_chunks or len(self._spares) < self.max_spare_chunks:
            self._spares.append(chunk)
            return
        # Purge dirty pages: the reservation stays (it belongs to a slab)
        # but resident pages are returned to the OS.
        self.space.purge(chunk.base, chunk.size)
        self.chunks_purged += 1
        self._spares.append(chunk)  # purged chunks remain reusable

    def size_of(self, addr: int) -> int:
        size = self._region_sizes.get(addr)
        if size is None:
            return self.fallback.size_of(addr)
        return size

    # -- live-layout migration ----------------------------------------------

    def group_of(self, addr: int) -> Optional[int]:
        """Group id of the chunk holding *addr* (None for fallback regions)."""
        chunk = self._chunk_of(addr)
        return None if chunk is None else chunk.group

    def place_region(
        self, group: Optional[int], size: int, alignment: int = MIN_ALIGNMENT
    ) -> int:
        """Place a region directly into *group*'s pool, bypassing the matcher.

        The state-restore and migration paths use this to rebuild or move a
        known layout: ``group=None`` (and any over-large request) routes to
        the fallback, exactly like an unmatched ``malloc``.  Pool exhaustion
        degrades to the fallback per the usual semantics — the returned
        address is always valid.
        """
        if size <= 0:
            raise AllocationError(f"invalid region size {size}")
        if group is None or size >= self.max_grouped_size:
            self.forwarded_allocs += 1
            return self.fallback.malloc(size, alignment)
        return self._group_malloc(group, size, max(alignment, MIN_ALIGNMENT))

    def migrate_groups(
        self,
        regroup: Callable[[int], Optional[int]],
        should_abort: Optional[Callable[[int], bool]] = None,
    ) -> MigrationReport:
        """Relocate live grouped regions under a new group assignment.

        *regroup* maps a region's current group id to its new group id (or
        None / the same id to leave the region in place).  Relocation is
        two-phase so a mid-migration failure can never tear the heap:

        1. **copy** — each moving region is bump-allocated into its new
           group's pool (the data copy is modelled as a page touch).  Before
           every copy the optional *should_abort* hook is consulted with the
           step index; if it fires, every copy made so far is freed and the
           report comes back ``aborted`` with the original layout intact.
        2. **commit** — only after every copy landed are the old regions
           freed and the forwarding map published.

        Emptied source chunks retire through the normal spare/purge path, so
        the sanitizer invariants hold at every step.
        """
        plan_moves: list[tuple[int, int, int]] = []
        for addr in sorted(self._region_sizes):
            chunk = self._chunk_of(addr)
            if chunk is None:
                continue
            target = regroup(chunk.group)
            if target is None or target == chunk.group:
                continue
            plan_moves.append((addr, self._region_sizes[addr], target))

        copies: list[int] = []
        for step, (addr, size, target) in enumerate(plan_moves):
            if should_abort is not None and should_abort(step):
                # Roll back: discard the copies; source regions were never
                # touched, so the incumbent layout is exactly as before.
                for new_addr in copies:
                    self.free(new_addr)
                return MigrationReport(aborted=True)
            new_addr = self.place_region(target, size)
            self.space.touch_range(new_addr, size)  # the migration memcpy
            copies.append(new_addr)

        report = MigrationReport()
        for (addr, size, _), new_addr in zip(plan_moves, copies):
            self.free(addr)
            report.forwarding[addr] = new_addr
            report.moved_regions += 1
            report.moved_bytes += size
        self.migrated_regions += report.moved_regions
        self.migrated_bytes += report.moved_bytes
        return report

    def realloc(self, addr: int, new_size: int) -> int:
        chunk = self._chunk_of(addr)
        if chunk is None and addr not in self._region_sizes:
            return self.fallback.realloc(addr, new_size)
        old_size = self.size_of(addr)
        if new_size <= old_size:
            # Shrink in place — but the recorded size must follow, or a later
            # free() credits back the stale larger size and live-byte
            # accounting drifts negative.
            self._region_sizes[addr] = new_size
            self.grouped_live_bytes -= old_size - new_size
            self.stats.on_resize(old_size, new_size)
            return addr
        new_addr = self.malloc(new_size)
        self.free(addr)
        return new_addr

    # -- accounting ---------------------------------------------------------------

    def observable_stats(self) -> dict[str, int]:
        """Base counters plus grouping/degradation/chunk-churn detail."""
        stats = super().observable_stats()
        stats.update(
            grouped_allocs=self.grouped_allocs,
            forwarded_allocs=self.forwarded_allocs,
            degraded_allocs=self.degraded_allocs,
            faulted_matches=self.faulted_matches,
            chunks_created=self.chunks_created,
            chunks_reused=self.chunks_reused,
            chunks_purged=self.chunks_purged,
            migrated_regions=self.migrated_regions,
            migrated_bytes=self.migrated_bytes,
        )
        return stats

    def fragmentation(self) -> FragmentationSnapshot:
        """Current live-vs-resident relationship of grouped data (Table 1)."""
        resident = 0
        high_water = 0
        for chunk in self._chunks.values():
            resident += self.space.resident_bytes_in(chunk.base, chunk.size)
            high_water += chunk.high_water - (chunk.base + _Chunk.HEADER_SIZE)
        return FragmentationSnapshot(
            live_bytes=self.grouped_live_bytes,
            resident_bytes=resident,
            high_water_bytes=high_water,
        )

    @property
    def total_live_bytes(self) -> int:
        """Live bytes across grouped data and the fallback allocator."""
        return self.grouped_live_bytes + self.fallback.stats.live_bytes

    def iter_live_regions(self):
        yield from self._region_sizes.items()
        yield from self.fallback.iter_live_regions()
