"""Simple bump allocators.

A bump allocator hands out consecutive addresses from large reservations and
never reuses freed space.  HALO's group allocator builds on bump allocation
inside chunks (Section 4.4); the multi-pool variant here is the building
block of the Figure-15 random-placement allocator.
"""

from __future__ import annotations

from .base import (
    AllocationError,
    Allocator,
    AddressSpace,
    MIN_ALIGNMENT,
    align_up,
)


class BumpAllocator(Allocator):
    """Contiguous bump allocation from successively reserved pools.

    ``free`` only updates statistics: bump allocation never compacts, so the
    memory is reclaimed only when the whole allocator is dropped.  This is
    intentional — it is exactly the behaviour whose fragmentation cost the
    paper quantifies in Table 1.
    """

    def __init__(self, space: AddressSpace, pool_size: int = 1 << 22) -> None:
        super().__init__(space)
        if pool_size <= 0:
            raise AllocationError(f"invalid pool size {pool_size}")
        self.pool_size = pool_size
        self._pool_base = 0
        self._pool_end = 0
        self._cursor = 0
        self._sizes: dict[int, int] = {}
        self.pools: list[int] = []

    def malloc(self, size: int, alignment: int = MIN_ALIGNMENT) -> int:
        if size <= 0:
            raise AllocationError(f"invalid malloc size {size}")
        if size > self.pool_size:
            raise AllocationError(
                f"request of {size} bytes exceeds pool size {self.pool_size}"
            )
        addr = align_up(self._cursor, alignment)
        if addr + size > self._pool_end:
            base = self.space.reserve(self.pool_size)
            self.pools.append(base)
            self._pool_base = base
            self._pool_end = base + self.pool_size
            addr = align_up(base, alignment)
        self._cursor = addr + size
        self._sizes[addr] = size
        self.stats.on_alloc(size)
        return addr

    def free(self, addr: int) -> int:
        size = self._sizes.pop(addr, None)
        if size is None:
            raise AllocationError(f"free of unknown address {addr:#x}")
        self.stats.on_free(size)
        return size

    def size_of(self, addr: int) -> int:
        size = self._sizes.get(addr)
        if size is None:
            raise AllocationError(f"size_of unknown address {addr:#x}")
        return size

    def owns(self, addr: int) -> bool:
        """Whether *addr* was handed out by this allocator and is live."""
        return addr in self._sizes

    def iter_live_regions(self):
        yield from self._sizes.items()
