"""Free-list-sharded group allocator — the paper's §6 future-work variant.

The paper's specialised allocator never reuses space inside a live chunk:
regions are bump-allocated and a chunk is reclaimed only when *every*
region in it has died, which is exactly what produces the pathological
fragmentation rows of Table 1 (roms 93.6 %, leela 99.99 %).  Its
conclusion points at mimalloc's *free list sharding* (Leijen, Zorn &
de Moura, 2019) as the remedy.

This module implements that variant: each group's chunks carry their own
sharded free lists (one shard per size class within the chunk), freed
regions go back onto their owning chunk's shard, and allocation prefers
recycling from the group's current chunk before bumping fresh space.  The
trade-offs are the expected ones:

* consecutive allocations are no longer guaranteed contiguous once frees
  start landing (slightly weaker spatial locality than pure bump);
* fragmentation improves dramatically under churn, because dead space
  inside a live chunk is reusable instead of stranded.

The extension benchmark (``benchmarks/test_ablation_sharded.py``)
quantifies both effects against the paper's bump design.
"""

from __future__ import annotations

from typing import Optional

from .base import AllocationError, MIN_ALIGNMENT, align_up
from .group import GroupAllocator, _Chunk


def _shard_class(size: int) -> int:
    """Size shard for a region: regions recycle only within their shard.

    Shards are 16-byte buckets, so a freed 48-byte region can satisfy a
    later 33..48-byte request without splitting or coalescing — mimalloc's
    sharding discipline scaled down to chunk granularity.
    """
    return align_up(max(size, MIN_ALIGNMENT), 16)


class _ShardedChunk(_Chunk):
    """A group chunk whose freed regions are recycled via sharded free lists."""

    __slots__ = ("shards",)

    def __init__(self, base: int, size: int, group: int, colour: int = 0) -> None:
        super().__init__(base, size, group, colour)
        self.shards: dict[int, list[int]] = {}

    def try_recycle(self, shard_class: int) -> Optional[int]:
        """Pop a free region from the *shard_class* shard, if any.

        The caller passes an already-rounded shard class — the
        requested-size/shard-size distinction lives in the allocator, not
        here, so the chunk never re-rounds.
        """
        shard = self.shards.get(shard_class)
        if shard:
            self.live_regions += 1
            return shard.pop()
        return None

    def give_back(self, addr: int, shard_class: int) -> None:
        """Return a region to the *shard_class* shard (already rounded)."""
        self.shards.setdefault(shard_class, []).append(addr)
        self.live_regions -= 1

    def reset(self, group: int, colour: int = 0) -> None:
        super().reset(group, colour)
        self.shards = {}


class ShardedGroupAllocator(GroupAllocator):
    """Group allocator with intra-chunk recycling via sharded free lists.

    Drop-in replacement for :class:`GroupAllocator`; only the region
    allocate/free paths differ.  Regions are rounded up to their shard
    class on allocation so a recycled slot is always large enough.
    """

    #: Every carve and spare reuse — including base-class migration and
    #: ``place_region`` paths — produces sharded chunks; a spare carved by
    #: another layer is rebuilt by :meth:`GroupAllocator._fresh_chunk`.
    _chunk_class = _ShardedChunk

    def _group_malloc(self, group: int, size: int, alignment: int) -> int:
        if alignment > 16:
            raise AllocationError(
                f"sharded group allocator supports alignment <= 16, got {alignment}"
            )
        reserve = _shard_class(size)
        chunk = self._current.get(group)
        addr: Optional[int] = None
        if chunk is not None:
            if isinstance(chunk, _ShardedChunk):
                addr = chunk.try_recycle(reserve)
            if addr is None:
                addr = chunk.try_reserve(reserve, 16)
        if addr is None:
            if chunk is not None and chunk.live_regions == 0:
                # Same rule as the bump variant: a drained current chunk is
                # only ever retired here, at displacement time.
                del self._current[group]
                self._retire(chunk)
            chunk = self._fresh_chunk(group)
            if chunk is None:
                # Pool exhausted: degrade to the "next available allocator",
                # exactly like the bump variant under a chunk budget.
                return self._degrade(size, alignment)
            self._current[group] = chunk
            addr = chunk.try_reserve(reserve, 16)
            if addr is None:  # pragma: no cover - size << chunk
                raise AllocationError(f"request of {size} bytes cannot fit a chunk")
        self._region_sizes[addr] = size
        self.grouped_live_bytes += size
        self.grouped_allocs += 1
        self.stats.on_alloc(size)
        return addr

    def free(self, addr: int) -> int:
        chunk = self._chunk_of(addr)
        if chunk is None:
            return self.fallback.free(addr)
        size = self._region_sizes.pop(addr, None)
        if size is None:
            raise AllocationError(f"group free of unknown region {addr:#x}")
        if isinstance(chunk, _ShardedChunk):
            # The shard class is computed exactly once, here: give_back
            # stores under the given key, so requested size never leaks
            # into shard bookkeeping (and the sanitizer asserts every
            # shard key is a fixed point of _shard_class).
            chunk.give_back(addr, _shard_class(size))
        else:
            # A plain chunk (carved by a base-class layer before this
            # allocator took over) cannot recycle; its regions just die.
            chunk.live_regions -= 1
        self.grouped_live_bytes -= size
        self.stats.on_free(size)
        if chunk.live_regions == 0 and self._current.get(chunk.group) is not chunk:
            self._retire(chunk)
        return size
