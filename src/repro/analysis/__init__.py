"""Result rendering and export."""

from .graphviz import affinity_graph_dot, artifacts_dot
from .report import bar_chart, format_table, to_json

__all__ = [
    "affinity_graph_dot",
    "artifacts_dot",
    "bar_chart",
    "format_table",
    "to_json",
]
