"""Report rendering: tables, ASCII bar charts, and JSON export.

The paper's artefact generates PDF plots; this reproduction renders the
same data as terminal-friendly tables and horizontal bar charts, and can
dump the raw series as JSON for external plotting (matching the artefact's
"JSON files ... containing the specific data points for each run").
"""

from __future__ import annotations

import json
from dataclasses import asdict, is_dataclass
from typing import Any, Mapping, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
) -> str:
    """Render a simple aligned text table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(value.ljust(w) for value, w in zip(row, widths)))
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 40,
    percent: bool = True,
    baseline: Optional[float] = None,
) -> str:
    """Render a horizontal ASCII bar chart.

    Negative values grow to the left of the axis; positive to the right —
    matching the orientation of the paper's Figures 13-15 where a negative
    bar is a slowdown / miss increase.
    """
    if not values:
        return title or "(no data)"
    label_width = max(len(label) for label in values)
    magnitude = max(abs(v) for v in values.values()) or 1.0
    half = width // 2
    lines = [title] if title else []
    if baseline is not None:
        lines.append(f"(baseline = {baseline:,.0f})")
    for label, value in values.items():
        length = int(round(abs(value) / magnitude * half))
        if value >= 0:
            bar = " " * half + "|" + "#" * length
        else:
            bar = " " * (half - length) + "#" * length + "|"
        rendered = f"{value * 100:+7.1f}%" if percent else f"{value:+12,.0f}"
        lines.append(f"{label.ljust(label_width)} {bar.ljust(width + 1)} {rendered}")
    return "\n".join(lines)


def to_json(payload: Any, indent: int = 2) -> str:
    """Serialise dataclasses / mappings to JSON."""

    def default(obj: Any) -> Any:
        if is_dataclass(obj) and not isinstance(obj, type):
            return asdict(obj)
        raise TypeError(f"cannot serialise {type(obj).__name__}")

    return json.dumps(payload, indent=indent, default=default)


def allocator_health_rows(evaluations: Mapping[str, Any]) -> list[list[str]]:
    """Per-benchmark allocator-health rows for :func:`format_table`.

    Sums ``grouped_allocs`` / ``forwarded_allocs`` / ``degraded_allocs``
    across every HALO trial of each evaluation (duck-typed: anything with
    ``.halo.measurements`` works).  These counters were previously
    collected by the runner but never surfaced; a non-zero "degraded"
    column means grouped requests fell back to the general allocator
    (pool exhaustion) and the layout was not what the plan intended.
    """
    rows = []
    for name in evaluations:
        measurements = evaluations[name].halo.measurements
        grouped = sum(m.grouped_allocs for m in measurements)
        forwarded = sum(m.forwarded_allocs for m in measurements)
        degraded = sum(m.degraded_allocs for m in measurements)
        rows.append([name, f"{grouped:,}", f"{forwarded:,}", f"{degraded:,}"])
    return rows


def allocator_health_table(evaluations: Mapping[str, Any]) -> str:
    """The allocator-health table printed after ``halo plot`` figures."""
    return format_table(
        ["benchmark", "grouped allocs", "forwarded", "degraded"],
        allocator_health_rows(evaluations),
        title="Allocator health (HALO config, summed over trials)",
    )


def resilience_summary(times: Any) -> str:
    """One-line summary of the parallel engine's resilience counters.

    Duck-typed against :class:`repro.harness.prepare.PhaseTimes`
    (``retries`` / ``requeues`` / ``pool_rebuilds``).  Returns an empty
    string when every counter is zero — the common, healthy case prints
    nothing.
    """
    parts = []
    for attr, label in (
        ("retries", "task retries"),
        ("requeues", "requeued tasks"),
        ("pool_rebuilds", "pool rebuilds"),
    ):
        value = getattr(times, attr, 0)
        if value:
            parts.append(f"{label}: {value}")
    if not parts:
        return ""
    return "resilience: " + ", ".join(parts)
