"""Graphviz (DOT) export of affinity graphs and their groups.

Paper Figure 9 visualises the grouping result on povray's test workload:
one node per allocation context, coloured by group, edge thickness by
affinity weight, grey for ungrouped contexts, with light edges hidden to
reduce noise.  :func:`affinity_graph_dot` renders the same picture for any
profile; feed the output to ``dot -Tpdf`` (Graphviz is not required by
this package — the DOT text is plain data).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.grouping import Group, assign_groups
from ..machine.program import Program
from ..profiling.graph import AffinityGraph
from ..profiling.shadow import ContextTable

#: A colour-blind-friendly categorical palette; groups cycle through it.
GROUP_COLOURS = (
    "#4477aa", "#ee6677", "#228833", "#ccbb44",
    "#66ccee", "#aa3377", "#bbbbbb", "#000000",
)

UNGROUPED_COLOUR = "#d9d9d9"  # grey, as in the paper's figure


def _context_label(cid: int, contexts: Optional[ContextTable], program: Optional[Program]) -> str:
    if contexts is None:
        return f"ctx {cid}"
    chain = contexts.chain(cid)
    if not chain:
        return f"ctx {cid}"
    if program is not None:
        site = program.sites.get(chain[-1])
        if site is not None:
            label = f"{site.caller}\\n@{site.callee}"
            if site.label:
                label = site.label + "\\n" + label
            return label
    return " > ".join(hex(addr) for addr in chain[-2:])


def affinity_graph_dot(
    graph: AffinityGraph,
    groups: Sequence[Group] = (),
    contexts: Optional[ContextTable] = None,
    program: Optional[Program] = None,
    min_edge_weight: float = 0.0,
    name: str = "affinity",
) -> str:
    """Render *graph* (optionally with *groups*) as Graphviz DOT text.

    Args:
        graph: The (filtered) affinity graph.
        groups: Allocation groups colouring the nodes; ungrouped contexts
            are grey, as in paper Figure 9.
        contexts: Optional context table for human-readable labels.
        program: Optional program for symbolised labels.
        min_edge_weight: Hide lighter edges ("edges with weight less than
            200,000 are hidden to reduce visual noise").
    """
    assignment = assign_groups(list(groups))
    max_weight = max(graph.edges.values(), default=1.0)
    max_access = max(graph.node_accesses.values(), default=1)

    lines = [f'graph "{name}" {{']
    lines.append("  layout=neato; overlap=false; splines=true;")
    lines.append('  node [style=filled, fontsize=10, fontname="Helvetica"];')

    for cid in sorted(graph.nodes):
        gid = assignment.get(cid)
        colour = (
            GROUP_COLOURS[gid % len(GROUP_COLOURS)] if gid is not None else UNGROUPED_COLOUR
        )
        font = "white" if gid is not None and colour != "#ccbb44" else "black"
        # Node area scales with access count (hotter = bigger).
        scale = 0.5 + 1.2 * (graph.accesses_of(cid) / max_access) ** 0.5
        label = _context_label(cid, contexts, program)
        lines.append(
            f'  n{cid} [label="{label}", fillcolor="{colour}", fontcolor="{font}", '
            f"width={scale:.2f}, height={scale * 0.6:.2f}];"
        )

    for (a, b), weight in sorted(graph.edges.items()):
        if weight < min_edge_weight:
            continue
        penwidth = 0.5 + 5.0 * weight / max_weight
        if a == b:
            lines.append(f'  n{a} -- n{a} [penwidth={penwidth:.2f}, color="#999999"];')
        else:
            lines.append(f"  n{a} -- n{b} [penwidth={penwidth:.2f}];")

    lines.append("}")
    return "\n".join(lines)


def artifacts_dot(artifacts, min_edge_weight: float = 0.0) -> str:
    """Figure 9 for a :class:`~repro.core.pipeline.HaloArtifacts` bundle."""
    return affinity_graph_dot(
        artifacts.profile.graph,
        artifacts.groups,
        contexts=artifacts.profile.contexts,
        program=artifacts.program,
        min_edge_weight=min_edge_weight,
        name=artifacts.program.name,
    )
