"""Alternative clusterers the paper's grouping algorithm is compared against."""

from .cuts import cut_groups
from .hcs import hcs_groups
from .modularity import modularity_groups

__all__ = ["cut_groups", "hcs_groups", "modularity_groups"]
