"""Highly Connected Subgraphs clustering (Hartuv & Shamir, 2000).

One of the alternatives the paper's grouping algorithm is contrasted with
(Section 4.2).  A subgraph is *highly connected* when its minimum edge cut
exceeds half its vertex count; HCS recursively splits along minimum cuts
until every component is highly connected.

Weighted variant: minimum cuts are computed by Stoer–Wagner on the affinity
weights, and the highly-connected test compares the cut's total weight (in
units of the graph's mean edge weight) against ``|V| / 2``.
"""

from __future__ import annotations

from ..core.grouping import Group
from ..core.score import internal_weight
from ..profiling.graph import AffinityGraph


def hcs_groups(graph: AffinityGraph, min_members: int = 2) -> list[Group]:
    """Cluster *graph* with the (weighted) HCS recursion."""
    import networkx as nx

    nxg = graph.to_networkx()
    nxg.remove_edges_from(nx.selfloop_edges(nxg))
    if nxg.number_of_edges() == 0:
        return []
    mean_weight = (
        sum(d["weight"] for _, _, d in nxg.edges(data=True)) / nxg.number_of_edges()
    )

    clusters: list[set[int]] = []

    def recurse(subgraph) -> None:
        n = subgraph.number_of_nodes()
        if n < 2:
            return
        if subgraph.number_of_edges() == 0:
            return
        if not nx.is_connected(subgraph):
            for component in nx.connected_components(subgraph):
                recurse(subgraph.subgraph(component).copy())
            return
        cut_weight, (part_a, part_b) = nx.stoer_wagner(subgraph, weight="weight")
        # Normalise the weighted cut into "edge count" units.
        if cut_weight / mean_weight > n / 2:
            clusters.append(set(subgraph.nodes))
            return
        recurse(subgraph.subgraph(part_a).copy())
        recurse(subgraph.subgraph(part_b).copy())

    recurse(nxg)

    groups: list[Group] = []
    for members in clusters:
        if len(members) < min_members:
            continue
        member_set = frozenset(members)
        groups.append(
            Group(
                gid=len(groups),
                members=member_set,
                weight=internal_weight(graph, member_set),
                accesses=sum(graph.accesses_of(cid) for cid in member_set),
            )
        )
    return groups
