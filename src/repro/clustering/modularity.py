"""Modularity clustering (Newman & Girvan, 2004) over the affinity graph.

Section 4.2 of the paper states the greedy HALO clusters are "more amenable
to region-based co-allocation than standard modularity ... clustering
techniques"; this module provides the modularity alternative so that claim
can be tested (see the ablation benchmark).

Uses networkx's greedy modularity communities (CNM algorithm) on the
weighted affinity graph; self-loops are dropped first because modularity
treats them degenerately and they carry no cross-context placement signal.
"""

from __future__ import annotations

from ..core.grouping import Group
from ..core.score import internal_weight
from ..profiling.graph import AffinityGraph


def modularity_groups(graph: AffinityGraph, min_members: int = 1) -> list[Group]:
    """Cluster *graph* into groups by greedy modularity maximisation."""
    import networkx as nx
    from networkx.algorithms.community import greedy_modularity_communities

    nxg = graph.to_networkx()
    nxg.remove_edges_from(nx.selfloop_edges(nxg))
    if nxg.number_of_edges() == 0:
        return []
    communities = greedy_modularity_communities(nxg, weight="weight")
    groups: list[Group] = []
    for members in communities:
        if len(members) < min_members:
            continue
        member_set = frozenset(members)
        groups.append(
            Group(
                gid=len(groups),
                members=member_set,
                weight=internal_weight(graph, member_set),
                accesses=sum(graph.accesses_of(cid) for cid in member_set),
            )
        )
    return groups
