"""Cut-based clustering: recursive Kernighan–Lin bisection.

The third alternative mentioned in Section 4.2 ("cut-based clustering
techniques").  The graph is recursively bisected with the weighted
Kernighan–Lin heuristic until each part is either small or dense enough,
measured by the same weighted-density score the HALO grouping uses — which
makes the comparison in the ablation benchmark apples-to-apples.
"""

from __future__ import annotations

from ..core.grouping import Group
from ..core.score import internal_weight, score
from ..profiling.graph import AffinityGraph


def cut_groups(
    graph: AffinityGraph,
    max_members: int = 16,
    min_members: int = 2,
    seed: int = 0,
) -> list[Group]:
    """Cluster *graph* by recursive KL bisection."""
    import networkx as nx

    nxg = graph.to_networkx()
    nxg.remove_edges_from(nx.selfloop_edges(nxg))
    if nxg.number_of_edges() == 0:
        return []

    # Cut-based methods reason about cross edges only; scoring the stop
    # rule on a loop-free view keeps heavy self-loops from forcing splits.
    loopless = AffinityGraph(
        node_accesses=dict(graph.node_accesses),
        edges={(a, b): w for (a, b), w in graph.edges.items() if a != b},
        total_accesses=graph.total_accesses,
    )

    clusters: list[set[int]] = []

    def recurse(nodes: set[int]) -> None:
        if len(nodes) <= max(2, min_members):
            clusters.append(nodes)
            return
        if len(nodes) <= max_members:
            # Dense enough to stop?  Compare the part against its best split.
            subgraph = nxg.subgraph(nodes)
            if subgraph.number_of_edges() == 0:
                clusters.append(nodes)
                return
            part_a, part_b = nx.algorithms.community.kernighan_lin_bisection(
                subgraph, weight="weight", seed=seed
            )
            whole = score(loopless, nodes)
            split = max(score(loopless, part_a), score(loopless, part_b))
            if whole >= split:
                clusters.append(nodes)
                return
            recurse(set(part_a))
            recurse(set(part_b))
            return
        subgraph = nxg.subgraph(nodes)
        if subgraph.number_of_edges() == 0:
            for node in nodes:
                clusters.append({node})
            return
        part_a, part_b = nx.algorithms.community.kernighan_lin_bisection(
            subgraph, weight="weight", seed=seed
        )
        recurse(set(part_a))
        recurse(set(part_b))

    recurse(set(nxg.nodes))

    groups: list[Group] = []
    for members in clusters:
        if len(members) < min_members:
            continue
        member_set = frozenset(members)
        groups.append(
            Group(
                gid=len(groups),
                members=member_set,
                weight=internal_weight(graph, member_set),
                accesses=sum(graph.accesses_of(cid) for cid in member_set),
            )
        )
    return groups
