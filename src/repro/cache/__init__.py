"""Trace-driven memory-hierarchy simulation (Xeon W-2195 geometry)."""

from .cache import CacheConfigError, CacheStats, SetAssociativeCache
from .hierarchy import CacheHierarchy, HierarchyConfig, HierarchyStats
from .sharing import FalseSharingTracker
from .timing import CostModel
from .tlb import TLB

__all__ = [
    "CacheConfigError",
    "CacheHierarchy",
    "CacheStats",
    "CostModel",
    "FalseSharingTracker",
    "HierarchyConfig",
    "HierarchyStats",
    "SetAssociativeCache",
    "TLB",
]
