"""The Xeon W-2195 memory hierarchy used in the paper's evaluation.

Section 5.1: "32KiB per-core L1 data caches, 1,024KiB per-core L2 caches,
and a 25,344KiB shared L3 cache" (single-threaded runs, so the shared L3 is
effectively private here).  Lines are 64 bytes throughout.  The hierarchy is
non-inclusive and fills all levels on a miss, which is sufficient for
hit/miss statistics on a single-threaded trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cache import SetAssociativeCache
from .tlb import TLB

KIB = 1024


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry of a three-level hierarchy plus D-TLB."""

    l1_size: int = 32 * KIB
    l1_assoc: int = 8
    l2_size: int = 1024 * KIB
    l2_assoc: int = 16
    l3_size: int = 25344 * KIB
    l3_assoc: int = 11
    line_size: int = 64
    tlb_entries: int = 64
    page_size: int = 4096

    @staticmethod
    def xeon_w2195() -> "HierarchyConfig":
        """The evaluation machine's configuration (the defaults)."""
        return HierarchyConfig()


@dataclass
class HierarchyStats:
    """Immutable snapshot of all hierarchy counters."""

    accesses: int
    l1_misses: int
    l2_misses: int
    l3_misses: int
    tlb_misses: int

    def l1_miss_reduction(self, other: "HierarchyStats") -> float:
        """Fractional L1D miss reduction of *other* relative to ``self``.

        Positive means *other* has fewer misses — matches the orientation of
        paper Figure 13 where the baseline calls this method.
        """
        if self.l1_misses == 0:
            return 0.0
        return (self.l1_misses - other.l1_misses) / self.l1_misses

    def as_counters(self) -> dict[str, int]:
        """Counters for the observability harvest (``measure.cache.*``).

        Hit counts are derived — each level only sees the accesses that
        missed the level above it.
        """
        return {
            "accesses": self.accesses,
            "l1_hits": self.accesses - self.l1_misses,
            "l1_misses": self.l1_misses,
            "l2_hits": self.l1_misses - self.l2_misses,
            "l2_misses": self.l2_misses,
            "l3_hits": self.l2_misses - self.l3_misses,
            "l3_misses": self.l3_misses,
            "tlb_misses": self.tlb_misses,
        }


class CacheHierarchy:
    """L1D → L2 → L3 → memory, plus a D-TLB, driven by byte-level accesses."""

    def __init__(self, config: HierarchyConfig | None = None) -> None:
        self.config = config = config or HierarchyConfig()
        self.l1 = SetAssociativeCache(config.l1_size, config.l1_assoc, config.line_size, "L1D")
        self.l2 = SetAssociativeCache(config.l2_size, config.l2_assoc, config.line_size, "L2")
        self.l3 = SetAssociativeCache(config.l3_size, config.l3_assoc, config.line_size, "L3")
        self.tlb = TLB(config.tlb_entries, config.page_size)
        self._line_shift = config.line_size.bit_length() - 1
        self._page_shift = config.page_size.bit_length() - 1

    def access(self, addr: int, size: int = 8, is_store: bool = False) -> None:
        """Simulate an access of *size* bytes at *addr* (may straddle lines)."""
        # Hot path: the overwhelmingly common case is a small access inside
        # one cache line (and therefore one page) — no range objects.
        end = addr + size - 1
        first_line = addr >> self._line_shift
        last_line = end >> self._line_shift
        l1_access = self.l1.access_line
        l2_access = self.l2.access_line
        l3_access = self.l3.access_line
        if first_line == last_line:
            if not l1_access(first_line):
                if not l2_access(first_line):
                    l3_access(first_line)
        else:
            for line in range(first_line, last_line + 1):
                if not l1_access(line):
                    if not l2_access(line):
                        l3_access(line)
        first_page = addr >> self._page_shift
        last_page = end >> self._page_shift
        tlb_access = self.tlb.access_page
        if first_page == last_page:
            tlb_access(first_page)
        else:
            for page in range(first_page, last_page + 1):
                tlb_access(page)

    def snapshot(self) -> HierarchyStats:
        """Capture the current counters."""
        return HierarchyStats(
            accesses=self.l1.stats.accesses,
            l1_misses=self.l1.stats.misses,
            l2_misses=self.l2.stats.misses,
            l3_misses=self.l3.stats.misses,
            tlb_misses=self.tlb.stats.misses,
        )
