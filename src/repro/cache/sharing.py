"""Contention and false-sharing accounting for multi-threaded runs.

When the mix scheduler interleaves tenant tick streams as simulated
threads, placement quality acquires a new axis: two threads whose data
share a cache line ping the line between cores regardless of how good
each thread's own locality is.  Allocators *cause* this — a free list
that hands thread B the other half of the line thread A's object sits in
manufactures false sharing; per-thread arenas exist to prevent it.

:class:`FalseSharingTracker` is a machine listener that watches the
event stream and attributes cache lines to threads:

* **allocation ownership** — each line covered by a live object belongs
  to the thread that allocated it; a line carrying live objects from two
  different threads is *false shared* (``false_sharing_lines``).  Line
  tenancy is reference-counted, so a line fully freed and later reused
  by another thread is re-owned, not miscounted — only genuinely
  concurrent co-tenancy counts;
* **access sharing** — a line touched by two different threads while its
  tenancy persists is *shared* (``shared_lines``), and every touch of a
  line the toucher does not own is a ``cross_thread_access`` — the
  contention proxy (coherence traffic in a real machine).

Single-threaded runs (every existing workload) keep all counters at
zero for free; the tracker only ever *observes*, so measurements are
unchanged whether it is attached or not.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..allocators.base import CACHE_LINE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.heap import HeapObject
    from ..machine.machine import Machine

from ..machine.events import Listener


class FalseSharingTracker(Listener):
    """Listener attributing cache lines to the threads that own and touch them."""

    def __init__(self, line_size: int = CACHE_LINE) -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise ValueError(f"line size must be a power of two, got {line_size}")
        self._shift = line_size.bit_length() - 1
        # line -> [owning thread (-1 once co-tenanted), live-object refcount]
        self._tenancy: dict[int, list[int]] = {}
        # line -> first-touching thread (-1 once another thread touched it);
        # entries die with their line's tenancy, so reuse re-owns cleanly.
        self._touched: dict[int, int] = {}
        self._threads: set[int] = set()
        self.false_sharing_lines = 0
        self.shared_lines = 0
        self.cross_thread_accesses = 0

    # -- tenancy ----------------------------------------------------------

    def _claim(self, addr: int, size: int, thread: int) -> None:
        shift = self._shift
        tenancy = self._tenancy
        for line in range(addr >> shift, (addr + size - 1 >> shift) + 1):
            entry = tenancy.get(line)
            if entry is None:
                tenancy[line] = [thread, 1]
                continue
            entry[1] += 1
            if entry[0] not in (thread, -1):
                entry[0] = -1
                self.false_sharing_lines += 1

    def _release(self, addr: int, size: int) -> None:
        shift = self._shift
        tenancy = self._tenancy
        for line in range(addr >> shift, (addr + size - 1 >> shift) + 1):
            entry = tenancy.get(line)
            if entry is None:
                continue
            entry[1] -= 1
            if entry[1] <= 0:
                del tenancy[line]
                self._touched.pop(line, None)

    # -- listener hooks ---------------------------------------------------

    def on_alloc(self, machine: "Machine", obj: "HeapObject") -> None:
        thread = machine.thread_id
        self._threads.add(thread)
        self._claim(obj.addr, obj.size, thread)

    def on_free(self, machine: "Machine", obj: "HeapObject") -> None:
        self._release(obj.addr, obj.size)

    def on_realloc(
        self, machine: "Machine", obj: "HeapObject", old_addr: int, old_size: int
    ) -> None:
        self._release(old_addr, old_size)
        self._claim(obj.addr, obj.size, machine.thread_id)

    def on_access(
        self,
        machine: "Machine",
        obj: "HeapObject",
        offset: int,
        size: int,
        is_store: bool,
    ) -> None:
        thread = machine.thread_id
        shift = self._shift
        addr = obj.addr + offset
        touched = self._touched
        for line in range(addr >> shift, (addr + size - 1 >> shift) + 1):
            owner = touched.get(line)
            if owner is None:
                touched[line] = thread
            elif owner != thread:
                self.cross_thread_accesses += 1
                if owner != -1:
                    touched[line] = -1
                    self.shared_lines += 1

    # -- harvest ----------------------------------------------------------

    def as_counters(self) -> dict[str, int]:
        """Integer counters for the observability harvest (``measure.cache.*``)."""
        return {
            "false_sharing_lines": self.false_sharing_lines,
            "shared_lines": self.shared_lines,
            "cross_thread_accesses": self.cross_thread_accesses,
            "threads_seen": len(self._threads),
        }


__all__ = ["FalseSharingTracker"]
