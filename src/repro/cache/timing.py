"""Cycle-level cost model converting simulated counters into execution time.

The paper reports wall-clock speedups on real hardware.  In this
reproduction, execution time is derived from the same causes the paper's
speedups have — cache and TLB misses — plus the workload's base compute.
The model is the standard additive-latency approximation:

    cycles = compute
           + accesses   * l1_hit_cycles
           + L1 misses  * (l2 - l1) extra latency
           + L2 misses  * (l3 - l2) extra latency
           + L3 misses  * (mem - l3) extra latency
           + TLB misses * page-walk cost
           + allocator operations * per-op cost
           + instrumentation toggles * toggle cost

Latencies default to Skylake-SP-class numbers.  The per-workload knob that
matters for reproducing the paper's compute- vs memory-bound split is the
``compute`` term, which workloads accrue via ``machine.work``: povray and
leela charge many compute cycles per access (so their reduced misses barely
move total time, Section 5.2), while health and ft charge almost none.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.machine import MachineMetrics
from .hierarchy import HierarchyStats


@dataclass(frozen=True)
class CostModel:
    """Latency parameters (cycles)."""

    l1_hit: float = 4.0
    l2_hit: float = 14.0
    l3_hit: float = 44.0
    memory: float = 170.0
    tlb_walk: float = 25.0
    malloc_op: float = 30.0
    free_op: float = 20.0
    call_op: float = 2.0
    toggle_op: float = 1.0

    def cycles(self, metrics: MachineMetrics, cache: HierarchyStats) -> float:
        """Total simulated cycles for a run."""
        total = metrics.compute_cycles
        total += cache.accesses * self.l1_hit
        total += cache.l1_misses * (self.l2_hit - self.l1_hit)
        total += cache.l2_misses * (self.l3_hit - self.l2_hit)
        total += cache.l3_misses * (self.memory - self.l3_hit)
        total += cache.tlb_misses * self.tlb_walk
        total += metrics.allocs * self.malloc_op
        total += metrics.frees * self.free_op
        total += metrics.calls * self.call_op
        total += metrics.instrumentation_toggles * self.toggle_op
        return total

    @staticmethod
    def speedup(baseline_cycles: float, optimised_cycles: float) -> float:
        """Fractional speedup, oriented as in paper Figure 14.

        A value of 0.28 means the optimised run is 28 % faster, i.e. its
        execution time is baseline/(1+0.28).
        """
        if optimised_cycles <= 0:
            return 0.0
        return baseline_cycles / optimised_cycles - 1.0
