"""Set-associative cache simulation.

The paper measures L1 data-cache misses on an Intel Xeon W-2195.  This
module provides the trace-driven equivalent: a set-associative, LRU,
write-allocate cache.  Only hit/miss behaviour matters for the reproduction
(write-back traffic does not change the reported metric), so lines carry no
dirty state.
"""

from __future__ import annotations

from dataclasses import dataclass


class CacheConfigError(Exception):
    """Raised for impossible cache geometries."""


@dataclass(slots=True)
class CacheStats:
    """Hit/miss counters for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses per access (0 when never accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """A set-associative cache with true-LRU replacement.

    Args:
        size: Capacity in bytes.
        assoc: Associativity (ways per set).
        line_size: Line size in bytes (power of two).
        name: Label used in reports ("L1D", "L2", ...).
    """

    def __init__(self, size: int, assoc: int, line_size: int = 64, name: str = "cache") -> None:
        if line_size <= 0 or line_size & (line_size - 1):
            raise CacheConfigError(f"line size must be a power of two, got {line_size}")
        if size % (assoc * line_size):
            raise CacheConfigError(
                f"{name}: size {size} not divisible by assoc*line ({assoc}*{line_size})"
            )
        self.name = name
        self.size = size
        self.assoc = assoc
        self.line_size = line_size
        self.num_sets = size // (assoc * line_size)
        self._line_shift = line_size.bit_length() - 1
        # Per-set LRU: dict preserves insertion order; last item = MRU.
        self._sets: list[dict[int, None]] = [dict() for _ in range(self.num_sets)]
        # Sets are indexed by low line-address bits; support non-power-of-two
        # set counts (e.g. 11-way L3 slices) via modulo.
        self._pow2_sets = self.num_sets & (self.num_sets - 1) == 0
        self._set_mask = self.num_sets - 1
        self.stats = CacheStats()

    def line_of(self, addr: int) -> int:
        """The line address (tag+index) containing byte *addr*."""
        return addr >> self._line_shift

    def access_line(self, line: int) -> bool:
        """Access one line; returns True on hit (line is inserted on miss)."""
        # Hot path: one attribute load for the stats block, and the common
        # power-of-two geometry resolved with a single mask.
        stats = self.stats
        stats.accesses += 1
        if self._pow2_sets:
            ways = self._sets[line & self._set_mask]
        else:
            ways = self._sets[line % self.num_sets]
        if line in ways:
            # Refresh LRU position.
            del ways[line]
            ways[line] = None
            stats.hits += 1
            return True
        stats.misses += 1
        if len(ways) >= self.assoc:
            ways.pop(next(iter(ways)))  # evict LRU (oldest insertion)
        ways[line] = None
        return False

    def contains_line(self, line: int) -> bool:
        """Whether *line* is currently cached (no LRU update)."""
        if self._pow2_sets:
            index = line & self._set_mask
        else:
            index = line % self.num_sets
        return line in self._sets[index]

    def flush(self) -> None:
        """Empty the cache (counters are preserved)."""
        for ways in self._sets:
            ways.clear()
