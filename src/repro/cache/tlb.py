"""Data-TLB simulation.

Section 2.1 of the paper notes that scattering related objects across pages
also costs TLB misses; the timing model charges page-walk latency for them.
Modelled as a small fully/set-associative LRU translation cache over 4 KiB
pages.
"""

from __future__ import annotations

from .cache import CacheStats


class TLB:
    """An LRU translation lookaside buffer for 4 KiB pages."""

    def __init__(self, entries: int = 64, page_size: int = 4096, name: str = "DTLB") -> None:
        if entries <= 0:
            raise ValueError(f"TLB needs at least one entry, got {entries}")
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError(f"page size must be a power of two, got {page_size}")
        self.name = name
        self.entries = entries
        self.page_size = page_size
        self._page_shift = page_size.bit_length() - 1
        self._lru: dict[int, None] = {}
        self.stats = CacheStats()

    def access_page(self, page: int) -> bool:
        """Translate *page*; returns True on TLB hit."""
        self.stats.accesses += 1
        lru = self._lru
        if page in lru:
            del lru[page]
            lru[page] = None
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(lru) >= self.entries:
            lru.pop(next(iter(lru)))
        lru[page] = None
        return False

    def page_of(self, addr: int) -> int:
        """Page number containing byte *addr*."""
        return addr >> self._page_shift
