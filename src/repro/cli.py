"""Command-line interface, mirroring the paper artefact's ``halo`` tool.

The artefact appendix (Section A.5) describes ``halo baseline``, ``halo
run`` and ``halo plot``; this module provides the same verbs against the
simulation:

* ``halo baseline -b povray`` — measure a benchmark under jemalloc-like
  placement;
* ``halo run -b povray [--affinity-distance 128] [--chunk-size N]
  [--max-spare-chunks N] [--max-groups N]`` — run the full HALO pipeline
  and report the optimised measurement (the appendix's per-benchmark flags
  are accepted);
* ``halo plot --figure 13|14|15 [--out DIR] [--jobs N]`` — regenerate a
  paper figure as an ASCII chart plus JSON data points, optionally fanning
  the evaluation matrix out over N worker processes;
* ``halo plot --figure 12`` / ``--table 1`` — likewise for the sweep and
  the fragmentation table;
* ``halo trace record|info|replay|sweep`` — capture a workload's complete
  machine-event stream once, then inspect it, re-measure from it, or sweep
  pipeline parameters against it without ever re-executing the workload;
* ``halo faults inject DIR`` — reproducibly corrupt cached artifacts and
  traces on disk (resilience testing; consumers must degrade, not die);
* ``halo sanitize fuzz`` — differentially fuzz the allocator families
  against the shadow-heap oracle and invariant checker (the same checks
  ``--sanitize`` attaches to ``baseline``/``run``/``plot`` measurements);
  ``--scenarios N`` adds generated-scenario op sequences to the matrix;
* ``halo scenario gen|info|run|corpus`` — seeded generated workloads:
  derive a corpus with golden config hashes, inspect or quick-run a
  generated name (``scn-7``, ``mix-5x3-rr``) or config file, and verify
  a committed corpus manifest (see ``docs/SCENARIOS.md``);
* ``halo obs export|summary|check`` — inspect a metrics snapshot written
  by ``--metrics-out`` (on ``plot`` and ``trace sweep``), convert it to
  Prometheus text or a Perfetto-loadable Chrome trace, or gate it against
  a committed ``BENCH_*.json`` baseline (see ``docs/OBSERVABILITY.md``);
* ``halo list`` — show the available benchmarks.

Parallel runs (``--jobs N``) are resilient: ``--task-timeout`` bounds any
single worker task, ``--max-retries`` bounds per-cell retries, and
``--resume`` continues an interrupted matrix from its checkpoint journal.

Profiling artifacts are cached under ``--cache-dir`` (default
``.halo-cache``; disable with ``--no-cache``), so a warm re-run skips the
profile and analyse phases — the per-phase wall-time report printed after
``run``/``plot`` shows exactly what was skipped.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path
from typing import Iterator, Optional

from . import obs
from .allocators import ALLOCATOR_FAMILIES
from .analysis.report import (
    allocator_health_table,
    bar_chart,
    format_table,
    resilience_summary,
    to_json,
)
from .core.artifact_cache import ArtifactCache
from .core.pipeline import optimise_profile, profile_workload
from .harness import reproduce
from .harness.prepare import PhaseTimes, prepare_workload
from .harness.runner import measure_baseline, measure_family, measure_halo
from .sanitize import FAMILIES as SANITIZE_FAMILIES
from .workloads.base import WorkloadError, get_workload, resolve_scale, workload_names

#: Default on-disk artifact cache location (overridden by ``--cache-dir``).
DEFAULT_CACHE_DIR = Path(".halo-cache")


def _add_cache_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help="directory for cached profiling artifacts (default: .halo-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the artifact cache (profile from scratch)",
    )


def cache_from_args(args: argparse.Namespace) -> Optional[ArtifactCache]:
    """The artifact cache selected by ``--cache-dir``/``--no-cache``."""
    if getattr(args, "no_cache", False):
        return None
    return ArtifactCache(args.cache_dir)


def _add_benchmark_arg(parser: argparse.ArgumentParser) -> None:
    # Not constrained by `choices`: generated scenario names (scn-*/mix-*)
    # are valid targets but only materialise on resolution.
    parser.add_argument(
        "-b", "--benchmark", required=True,
        help="target benchmark (see `halo list`; also accepts generated "
        "scenario names like scn-7 or mix-5x3-rr)",
    )


def _workload_or_exit(name: str):
    """Resolve *name* to a workload, exiting with a clean CLI error."""
    try:
        return get_workload(name)
    except WorkloadError as exc:
        raise SystemExit(f"error: {exc}") from None


def _check_scale(args: argparse.Namespace) -> None:
    """Fail fast on an unknown ``--scale`` (before any expensive phase)."""
    scale = getattr(args, "scale", None)
    if scale is None:
        return
    try:
        resolve_scale(scale)
    except WorkloadError as exc:
        raise SystemExit(f"error: {exc}") from None


def _add_sanitize_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sanitize",
        nargs="?",
        const=1024,
        type=int,
        default=None,
        metavar="N",
        help="enable the heap sanitizer: shadow-heap oracle on every heap op "
        "plus a full invariant walk every N ops (default 1024 when the flag "
        "is given bare); see docs/SANITIZER.md",
    )


@contextlib.contextmanager
def _sanitize_session(args: argparse.Namespace) -> Iterator[None]:
    """Scope the heap sanitizer over a command when ``--sanitize`` was given.

    The config is installed process-globally, so it reaches every machine
    the command constructs — including in worker processes under
    ``--jobs N``, which inherit it through the parallel harness.
    """
    interval = getattr(args, "sanitize", None)
    if interval is None:
        yield
        return
    from .sanitize import SanitizerConfig, sanitizer_active

    with sanitizer_active(SanitizerConfig(check_interval=interval)):
        yield


def _add_metrics_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        type=Path,
        default=None,
        metavar="FILE.json",
        help="write an observability snapshot (counters, gauges, spans) "
        "here; inspect it with `halo obs`",
    )


@contextlib.contextmanager
def _metrics_session(
    path: Optional[Path], times: Optional[PhaseTimes] = None
) -> Iterator[None]:
    """Install a metrics registry for the duration of a command.

    No-op (observability fully disabled) unless ``--metrics-out`` was
    given.  On exit the registry is uninstalled, worker-side metrics
    carried back on *times* are merged in, and the combined snapshot is
    written to *path* as JSON.
    """
    if path is None:
        yield
        return
    registry = obs.MetricsRegistry()
    obs.install(registry)
    try:
        yield
    finally:
        obs.uninstall()
        snapshot = registry.snapshot()
        if times is not None and times.metrics is not None:
            snapshot.merge(times.metrics)
        path.write_text(obs.snapshot_to_json(snapshot))
        print(f"wrote metrics snapshot {path}")


def _parse_benchmarks(args: argparse.Namespace) -> Optional[tuple[str, ...]]:
    """The validated ``--benchmarks`` list, or None for the paper default."""
    raw = getattr(args, "benchmarks", None)
    if raw is None:
        return None
    names = tuple(name.strip() for name in raw.split(",") if name.strip())
    # Resolving (rather than checking against workload_names()) lets
    # generated scenario names through; each resolves or errors cleanly.
    for name in names:
        _workload_or_exit(name)
    if not names:
        raise SystemExit("error: --benchmarks is empty")
    return names


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    """Flags shared by the parallel entry points (``--jobs > 1`` only)."""
    parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any worker task running longer than this",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per failed matrix cell before it is reported failed (default: 2)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume from the checkpoint journal beside the artifact cache, "
        "skipping already-completed cells",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="halo", description="HALO heap-layout optimisation (simulated reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    baseline = sub.add_parser(
        "baseline",
        help="measure an un-optimised allocator family (jemalloc-like default)",
    )
    _add_benchmark_arg(baseline)
    baseline.add_argument("--scale", default="ref", help="input scale (test/train/ref)")
    baseline.add_argument("--seed", type=int, default=1)
    baseline.add_argument(
        "-a", "--allocator",
        choices=tuple(ALLOCATOR_FAMILIES),
        default="baseline",
        help="allocator family to measure (default: the size-class baseline; "
        "freelist-ff/freelist-bf are coalescing free lists, arena is "
        "per-thread arenas with a cross-thread free mailbox)",
    )
    _add_sanitize_arg(baseline)
    _add_metrics_arg(baseline)

    run = sub.add_parser("run", help="run the full HALO pipeline on a benchmark")
    _add_benchmark_arg(run)
    run.add_argument("--scale", default="ref")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--affinity-distance", type=int, default=None)
    run.add_argument("--chunk-size", type=int, default=None)
    run.add_argument("--max-spare-chunks", type=int, default=None)
    run.add_argument("--max-groups", type=int, default=None)
    run.add_argument(
        "--profile",
        type=Path,
        default=None,
        metavar="FILE.json",
        help="reuse a saved profile instead of re-profiling",
    )
    run.add_argument("--show-groups", action="store_true", help="print the allocation groups")
    _add_sanitize_arg(run)
    _add_cache_args(run)
    run.add_argument(
        "--dump-graph",
        type=Path,
        default=None,
        metavar="FILE.dot",
        help="write the grouped affinity graph as Graphviz DOT (paper Figure 9)",
    )

    prof = sub.add_parser("profile", help="profile a benchmark and save the model")
    _add_benchmark_arg(prof)
    prof.add_argument("-o", "--output", type=Path, required=True, metavar="FILE.json")
    prof.add_argument("--scale", default="test")
    prof.add_argument("--affinity-distance", type=int, default=None)
    prof.add_argument(
        "--include-trace",
        action="store_true",
        help="also store the object reference trace (needed for HDS analysis)",
    )

    plot = sub.add_parser("plot", help="regenerate a paper figure or table")
    group = plot.add_mutually_exclusive_group(required=True)
    group.add_argument("--figure", type=int, choices=(12, 13, 14, 15))
    group.add_argument("--table", type=int, choices=(1,))
    plot.add_argument("--trials", type=int, default=3)
    plot.add_argument(
        "--benchmarks",
        metavar="NAME,NAME,...",
        default=None,
        help="comma-separated benchmark subset (default: the paper's set; "
        "ignored by --figure 12, which sweeps a fixed pair)",
    )
    plot.add_argument(
        "--scale",
        default="ref",
        help="measurement input scale (test/train/ref; default: ref)",
    )
    plot.add_argument("--out", type=Path, default=None, help="directory for JSON output")
    plot.add_argument(
        "--engine",
        choices=("direct", "auto", "columnar", "event"),
        default="direct",
        help="measurement backend for the figure matrix: direct executes "
        "workloads; auto/columnar/event measure from recorded event traces "
        "(requires --scale test, the trace-recording scale)",
    )
    plot.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the evaluation matrix (default: 1, serial)",
    )
    plot.add_argument(
        "--families",
        metavar="NAME,NAME,...",
        default=None,
        help="extra standalone allocator families to measure alongside the "
        "paper configurations (from: "
        + ",".join(f for f in ALLOCATOR_FAMILIES if f != "baseline")
        + "); reported in the per-family speedup table "
        "(ignored by --figure 12 and --table 1)",
    )
    _add_resilience_args(plot)
    _add_sanitize_arg(plot)
    _add_cache_args(plot)
    _add_metrics_arg(plot)

    trace = sub.add_parser(
        "trace", help="record, inspect, replay, and sweep machine-event traces"
    )
    tsub = trace.add_subparsers(dest="trace_command", required=True)

    t_record = tsub.add_parser("record", help="record a workload's event trace")
    _add_benchmark_arg(t_record)
    t_record.add_argument("--scale", default="test", help="input scale (test/train/ref)")
    t_record.add_argument("--seed", type=int, default=0)
    t_record.add_argument(
        "-o",
        "--output",
        type=Path,
        default=None,
        metavar="FILE.trace",
        help="output path (default: <benchmark>-<scale>.trace)",
    )
    _add_metrics_arg(t_record)

    t_info = tsub.add_parser("info", help="summarise a recorded trace")
    t_info.add_argument("trace", type=Path, help="trace file to inspect")

    t_replay = tsub.add_parser(
        "replay", help="re-measure a recorded run (no workload execution)"
    )
    t_replay.add_argument(
        "traces", type=Path, nargs="+", metavar="TRACE",
        help="trace file(s) to replay",
    )
    t_replay.add_argument("--seed", type=int, default=1, help="address-space seed")
    t_replay.add_argument(
        "--engine",
        choices=("auto", "columnar", "event"),
        default="auto",
        help="measurement backend (default: auto, which picks the columnar "
        "core unless a sanitizer is active)",
    )
    _add_metrics_arg(t_replay)

    t_sweep = tsub.add_parser(
        "sweep", help="sweep pipeline parameters against one recorded trace"
    )
    t_sweep.add_argument("trace", type=Path, help="trace file to sweep against")
    knob = t_sweep.add_mutually_exclusive_group(required=True)
    knob.add_argument(
        "--affinity-distance",
        metavar="A,A,...",
        help="comma-separated affinity window sizes (paper Figure 12)",
    )
    knob.add_argument(
        "--merge-tolerance",
        metavar="T,T,...",
        help="comma-separated grouping merge tolerances",
    )
    knob.add_argument(
        "--max-groups",
        metavar="N,N,...",
        help="comma-separated group-count caps",
    )
    t_sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (default: 1, in-process with a shared decode)",
    )
    _add_resilience_args(t_sweep)
    _add_cache_args(t_sweep)
    _add_metrics_arg(t_sweep)

    faults = sub.add_parser(
        "faults", help="deterministic fault injection for resilience testing"
    )
    fsub = faults.add_subparsers(dest="faults_command", required=True)
    f_inject = fsub.add_parser(
        "inject",
        help="corrupt cached artifact/trace files on disk, reproducibly",
    )
    f_inject.add_argument(
        "target",
        type=Path,
        help="file or directory (e.g. the artifact cache) to damage",
    )
    f_inject.add_argument(
        "--seed", type=int, default=0, help="fault-plan seed (default: 0)"
    )
    f_inject.add_argument(
        "--mode",
        choices=("bitflip", "truncate"),
        default="bitflip",
        help="corruption applied to each selected file (default: bitflip)",
    )
    f_inject.add_argument(
        "--rate",
        type=float,
        default=1.0,
        metavar="P",
        help="per-file probability of corruption when targeting a directory "
        "(default: 1.0, every injectable file)",
    )

    obs_parser = sub.add_parser(
        "obs", help="inspect, export, and regression-check metrics snapshots"
    )
    osub = obs_parser.add_subparsers(dest="obs_command", required=True)

    o_export = osub.add_parser(
        "export", help="convert a snapshot to another observability format"
    )
    o_export.add_argument(
        "-i", "--input", type=Path, required=True, metavar="SNAP.json",
        help="snapshot written by --metrics-out",
    )
    o_export.add_argument(
        "--format",
        choices=obs.EXPORT_FORMATS,
        default="jsonl",
        help="output format (chrome-trace loads in Perfetto / chrome://tracing)",
    )
    o_export.add_argument(
        "-o", "--output", type=Path, default=None, metavar="FILE",
        help="write here instead of stdout",
    )

    o_summary = osub.add_parser("summary", help="human-readable snapshot summary")
    o_summary.add_argument(
        "-i", "--input", type=Path, required=True, metavar="SNAP.json",
        help="snapshot written by --metrics-out",
    )

    o_check = osub.add_parser(
        "check", help="compare a snapshot against a committed benchmark baseline"
    )
    o_check.add_argument(
        "-i", "--input", type=Path, required=True, metavar="SNAP.json",
        help="snapshot written by --metrics-out",
    )
    o_check.add_argument(
        "--baseline", type=Path, required=True, metavar="BENCH.json",
        help="committed baseline (BENCH_eval_walltime.json / BENCH_trace_replay.json)",
    )
    o_check.add_argument(
        "--tolerance", type=float, default=0.5, metavar="F",
        help="allowed fractional regression before failing (default: 0.5)",
    )

    sanitize = sub.add_parser(
        "sanitize", help="heap-sanitizer tools (differential allocator fuzzing)"
    )
    szsub = sanitize.add_subparsers(dest="sanitize_command", required=True)
    s_fuzz = szsub.add_parser(
        "fuzz",
        help="fuzz the allocator families against the shadow-heap oracle",
    )
    s_fuzz.add_argument("--seed", type=int, default=0, help="scenario seed")
    s_fuzz.add_argument(
        "--ops", type=int, default=20000, help="heap ops per scenario (default: 20000)"
    )
    s_fuzz.add_argument(
        "--family",
        choices=("all",) + SANITIZE_FAMILIES,
        default="all",
        help="restrict to one allocator family (default: all)",
    )
    s_fuzz.add_argument(
        "--scenarios",
        type=int,
        default=0,
        metavar="N",
        help="additionally fuzz N generated-scenario op sequences (sizes and "
        "lifetime churn from seeded scenario specs; default: 0, off)",
    )

    scenario = sub.add_parser(
        "scenario",
        help="generated workloads: seeded corpora, spec inspection, quick runs",
    )
    scsub = scenario.add_subparsers(dest="scenario_command", required=True)

    sc_gen = scsub.add_parser(
        "gen", help="derive a seeded corpus and print its golden hashes"
    )
    sc_gen.add_argument("--seed", type=int, default=0, help="corpus seed (default: 0)")
    sc_gen.add_argument(
        "--scenarios", type=int, default=4,
        help="single-tenant scenarios in the corpus (default: 4)",
    )
    sc_gen.add_argument(
        "--mixes", type=int, default=2,
        help="multi-tenant mixes in the corpus (default: 2)",
    )
    sc_gen.add_argument(
        "--out", type=Path, default=None, metavar="DIR",
        help="materialise the manifest plus every spec as JSON here",
    )

    sc_info = scsub.add_parser(
        "info", help="show the full spec behind a generated name or config file"
    )
    sc_info.add_argument(
        "scenario", help="generated name (scn-7, mix-5x3-rr) or spec file (.json/.toml)"
    )
    sc_info.add_argument(
        "--json", action="store_true", help="print the canonical JSON instead"
    )

    sc_run = scsub.add_parser(
        "run", help="quick baseline-vs-HALO comparison of one generated workload"
    )
    sc_run.add_argument(
        "scenario", help="generated name (scn-7, mix-5x3-rr) or spec file (.json/.toml)"
    )
    sc_run.add_argument("--scale", default="test", help="input scale (default: test)")
    sc_run.add_argument("--seed", type=int, default=1)
    _add_sanitize_arg(sc_run)

    sc_corpus = scsub.add_parser(
        "corpus", help="verify a corpus manifest against freshly re-sampled specs"
    )
    sc_corpus.add_argument(
        "--manifest", type=Path, default=Path("corpora/default.json"),
        metavar="FILE.json",
        help="manifest to verify (default: corpora/default.json)",
    )

    serve = sub.add_parser(
        "serve", help="long-running serving daemon with online re-optimisation"
    )
    svsub = serve.add_subparsers(dest="serve_command", required=True)

    def _add_serve_config_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=0, help="session seed")
        p.add_argument(
            "--requests", type=int, default=240, help="requests to serve (default: 240)"
        )
        p.add_argument(
            "--epoch-requests", type=int, default=24,
            help="requests per decision epoch (default: 24)",
        )
        p.add_argument(
            "--window", type=int, default=3,
            help="profile/trace sliding-window length in epochs (default: 3)",
        )
        p.add_argument(
            "--regroup-every", type=int, default=2,
            help="scheduled re-grouping period in epochs (default: 2)",
        )
        p.add_argument(
            "--cooldown", type=int, default=2,
            help="epochs to back off after a rollback or abort (default: 2)",
        )
        p.add_argument(
            "--request-factor", type=float, default=0.05,
            help="workload scale factor per request (default: 0.05)",
        )
        p.add_argument(
            "--drift-threshold", type=float, default=0.25,
            help="windowed distribution distance that counts as drift (default: 0.25)",
        )
        p.add_argument(
            "--snapshot-every", type=int, default=1,
            help="epochs between crash-safe snapshots (default: 1)",
        )
        p.add_argument(
            "--phase",
            action="append",
            default=None,
            metavar="START:W=WEIGHT[,W=WEIGHT...]",
            help="request-mix phase, e.g. '0:health=3,ft=1'; repeat for "
            "drifting traffic (default: the built-in two-phase schedule)",
        )
        p.add_argument(
            "--state-dir", type=Path, default=None, metavar="DIR",
            help="directory for crash-safe snapshot journals (enables --resume)",
        )

    s_run = svsub.add_parser("run", help="run one deterministic serving session")
    _add_serve_config_args(s_run)
    s_run.add_argument(
        "--resume", action="store_true",
        help="continue from the newest intact snapshot in --state-dir",
    )
    s_run.add_argument(
        "--stop-after", type=int, default=None, metavar="N",
        help="stop after N requests served in this process (restart testing)",
    )
    s_run.add_argument(
        "--stop-mode", choices=("term", "kill"), default="term",
        help="how --stop-after ends the session: 'term' flushes a snapshot, "
        "'kill' simulates a crash (default: term)",
    )
    _add_metrics_arg(s_run)

    s_status = svsub.add_parser(
        "status", help="summarise snapshot journals in a state directory"
    )
    s_status.add_argument(
        "state_dir", type=Path, help="directory holding serve-*.journal files"
    )

    s_drill = svsub.add_parser(
        "drill", help="run a session under the serve-layer fault drill"
    )
    _add_serve_config_args(s_drill)
    s_drill.add_argument("--drill-seed", type=int, default=0, help="fault-plan seed")
    s_drill.add_argument(
        "--swap-flip", type=float, default=0.35,
        help="per-step mid-migration flip probability (default: 0.35)",
    )
    s_drill.add_argument(
        "--canary-flip", type=float, default=0.25,
        help="per-epoch forced-rollback probability (default: 0.25)",
    )
    s_drill.add_argument(
        "--regroup-stall", type=float, default=0.25,
        help="per-epoch re-grouper stall probability (default: 0.25)",
    )
    s_drill.add_argument(
        "--snapshot-corrupt", type=float, default=0.35,
        help="per-snapshot corruption probability (default: 0.35)",
    )
    _add_metrics_arg(s_drill)

    sub.add_parser("list", help="list available benchmarks")
    return parser


def _cmd_baseline(args: argparse.Namespace) -> int:
    _check_scale(args)
    workload = _workload_or_exit(args.benchmark)
    with _metrics_session(args.metrics_out):
        measurement = measure_family(
            workload, args.allocator, scale=args.scale, seed=args.seed
        )
    print(
        format_table(
            ["metric", "value"],
            [
                ["cycles", f"{measurement.cycles:,.0f}"],
                ["heap accesses", f"{measurement.accesses:,}"],
                ["L1D misses", f"{measurement.cache.l1_misses:,}"],
                ["L2 misses", f"{measurement.cache.l2_misses:,}"],
                ["L3 misses", f"{measurement.cache.l3_misses:,}"],
                ["DTLB misses", f"{measurement.cache.tlb_misses:,}"],
                ["peak live bytes", f"{measurement.peak_live_bytes:,}"],
            ],
            title=f"{args.benchmark} {args.allocator} ({args.scale})",
        )
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    _check_scale(args)
    workload = _workload_or_exit(args.benchmark)
    overrides = {}
    if args.chunk_size is not None:
        overrides["chunk_size"] = args.chunk_size
    if args.max_spare_chunks is not None:
        overrides["max_spare_chunks"] = args.max_spare_chunks
    if args.max_groups is not None:
        overrides["max_groups"] = args.max_groups
    params = reproduce.halo_params_for(workload, **overrides)
    if args.affinity_distance is not None:
        params = params.with_affinity_distance(args.affinity_distance)

    if args.profile is not None:
        from .profiling import load_profile

        profile = load_profile(args.profile, workload.program)
        artifacts = optimise_profile(profile, params)
    else:
        prepared = prepare_workload(
            args.benchmark,
            halo_params=params,
            include_hds=False,
            cache=cache_from_args(args),
            workload=workload,
        )
        artifacts = prepared.halo
    if args.show_groups:
        for line in artifacts.describe_groups():
            print(line)
    if args.dump_graph is not None:
        from .analysis.graphviz import artifacts_dot

        args.dump_graph.write_text(artifacts_dot(artifacts))
        print(f"wrote {args.dump_graph}")
    baseline = measure_baseline(workload, scale=args.scale, seed=args.seed)
    optimised = measure_halo(workload, artifacts, scale=args.scale, seed=args.seed)
    reduction = 0.0
    if baseline.cache.l1_misses:
        reduction = (
            baseline.cache.l1_misses - optimised.cache.l1_misses
        ) / baseline.cache.l1_misses
    speedup = baseline.cycles / optimised.cycles - 1.0 if optimised.cycles else 0.0
    print(
        format_table(
            ["metric", "baseline", "HALO"],
            [
                ["cycles", f"{baseline.cycles:,.0f}", f"{optimised.cycles:,.0f}"],
                ["L1D misses", f"{baseline.cache.l1_misses:,}", f"{optimised.cache.l1_misses:,}"],
                ["groups", "-", str(len(artifacts.groups))],
                ["monitored sites", "-", str(artifacts.plan.bits_used)],
                ["grouped allocs", "-", f"{optimised.grouped_allocs:,}"],
                ["degraded allocs", "-", f"{optimised.degraded_allocs:,}"],
            ],
            title=f"{args.benchmark} ({args.scale})",
        )
    )
    print(f"\nL1D miss reduction: {reduction * 100:+.1f}%   speedup: {speedup * 100:+.1f}%")
    return 0


def _write_json(out: Optional[Path], name: str, payload) -> None:
    if out is None:
        return
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"{name}.json"
    path.write_text(to_json(payload))
    print(f"\nwrote {path}")


def _report_failures(failures) -> None:
    """Surface permanently failed matrix cells without aborting the run."""
    for failure in failures:
        print(f"warning: {failure}", file=sys.stderr)


def _cmd_plot(args: argparse.Namespace) -> int:
    _check_scale(args)
    benchmarks = _parse_benchmarks(args)
    target = f"table{args.table}" if args.table else f"figure{args.figure}"
    cache = cache_from_args(args)
    times = PhaseTimes()
    failures: list = []
    with _metrics_session(args.metrics_out, times):
        with obs.span(f"halo.plot.{target}", scale=args.scale) as root:
            ret = _run_plot(args, benchmarks, cache, times, failures)
        print(times.report(wall=root.elapsed))
        summary = resilience_summary(times)
        if summary:
            print(summary)
    return ret


def _run_plot(
    args: argparse.Namespace,
    benchmarks: Optional[tuple[str, ...]],
    cache: Optional[ArtifactCache],
    times: PhaseTimes,
    failures: list,
) -> int:
    """The body of ``halo plot`` (split out so the root span wraps it)."""
    if args.table == 1:
        rows = reproduce.table1(
            benchmarks=benchmarks or reproduce.TABLE1_BENCHMARKS,
            scale=args.scale,
            jobs=args.jobs,
            cache=cache,
            phase_times=times,
            task_timeout=args.task_timeout,
            max_retries=args.max_retries,
            failures=failures,
        )
        _report_failures(failures)
        print(
            format_table(
                ["Benchmark", "Frag. (%)", "Frag. (bytes)"],
                [[r.benchmark, f"{r.fraction * 100:.2f}%", f"{r.wasted_bytes:,}"] for r in rows],
                title="Table 1: fragmentation of grouped objects at peak memory usage",
            )
        )
        _write_json(args.out, "table1", rows)
        return 0
    if args.figure == 12:
        result = reproduce.figure12(trials=args.trials, cache=cache, phase_times=times)
        series = result.series[0]
        print(
            bar_chart(
                {k: v / result.notes["baseline"] - 1.0 for k, v in series.values.items()},
                title=result.figure + " (relative to baseline)",
            )
        )
        _write_json(args.out, "figure12", result)
        return 0
    families: tuple[str, ...] = ()
    if args.families:
        families = tuple(dict.fromkeys(args.families.split(",")))
        unknown = [f for f in families if f not in ALLOCATOR_FAMILIES]
        if unknown:
            print(
                f"unknown allocator families: {', '.join(unknown)} "
                f"(expected from: {', '.join(ALLOCATOR_FAMILIES)})",
                file=sys.stderr,
            )
            return 2
    checkpoint = None
    if args.jobs > 1 and (cache is not None or args.resume):
        from .harness.checkpoint import journal_for

        checkpoint = journal_for(
            args.cache_dir if cache is not None else None, f"figure{args.figure}"
        )
    evaluations = reproduce.evaluate_all(
        benchmarks=benchmarks or reproduce.PAPER_BENCHMARKS,
        trials=args.trials,
        scale=args.scale,
        include_random=args.figure == 15,
        jobs=args.jobs,
        cache=cache,
        phase_times=times,
        task_timeout=args.task_timeout,
        max_retries=args.max_retries,
        checkpoint=checkpoint,
        resume=args.resume,
        failures=failures,
        engine=args.engine,
        families=families,
    )
    _report_failures(failures)
    figure = {13: reproduce.figure13, 14: reproduce.figure14, 15: reproduce.figure15}[args.figure]
    result = figure(evaluations)
    for series in result.series:
        print(bar_chart(series.values, title=f"{result.figure} — {series.label}"))
        print()
    print(allocator_health_table(evaluations))
    if families:
        print()
        print(
            format_table(
                ["benchmark", "family", "speedup vs baseline"],
                [
                    [name, family, f"{evaluation.family_speedup(family):+.1%}"]
                    for name, evaluation in evaluations.items()
                    for family in families
                    if family in evaluation.extra
                ],
                title="Extra allocator families",
            )
        )
    _write_json(args.out, f"figure{args.figure}", result)
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .profiling import save_profile

    _check_scale(args)
    workload = _workload_or_exit(args.benchmark)
    params = reproduce.halo_params_for(workload)
    if args.affinity_distance is not None:
        params = params.with_affinity_distance(args.affinity_distance)
    profile = profile_workload(
        workload, params, scale=args.scale, record_trace=args.include_trace
    )
    save_profile(profile, args.output, include_trace=args.include_trace)
    print(
        f"profiled {args.benchmark} ({args.scale}): "
        f"{len(profile.contexts)} contexts, {len(profile.graph)} graph nodes"
    )
    print(f"wrote {args.output}")
    return 0


def trace_info_lines(trace) -> list[str]:
    """Deterministic summary lines for ``halo trace info``.

    Everything here is a pure function of the recorded event stream (no
    file sizes, no timings), so the output is stable across machines and
    suitable as a golden reference.
    """
    h = trace.header
    returns = h.events - (
        h.calls + h.allocs + h.frees + h.reallocs + h.loads + h.stores + h.works + 1
    )
    return [
        f"workload:        {h.workload} ({h.scale})",
        f"program:         {h.program}",
        f"format:          v{h.format}",
        f"events:          {h.events:,}",
        f"  calls:         {h.calls:,}",
        f"  returns:       {returns:,}",
        f"  allocs:        {h.allocs:,} ({h.alloc_bytes:,} bytes requested)",
        f"  frees:         {h.frees:,}",
        f"  reallocs:      {h.reallocs:,}",
        f"  loads:         {h.loads:,}",
        f"  stores:        {h.stores:,}",
        f"  work:          {h.works:,}",
        f"accessed bytes:  {h.access_bytes:,}",
    ]


def _cmd_trace_record(args: argparse.Namespace) -> int:
    from .trace import record_workload

    _check_scale(args)
    _workload_or_exit(args.benchmark)
    output = args.output
    if output is None:
        output = Path(f"{args.benchmark}-{args.scale}.trace")
    with _metrics_session(args.metrics_out):
        with obs.span(
            "halo.trace.record", workload=args.benchmark, scale=args.scale
        ) as sp:
            trace = record_workload(args.benchmark, scale=args.scale, seed=args.seed)
        trace.save(output)
        print(
            f"recorded {args.benchmark} ({args.scale}): {trace.header.events:,} events "
            f"in {sp.elapsed:.2f}s"
        )
        print(f"wrote {output} ({output.stat().st_size:,} bytes)")
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    from .trace import EventTrace

    trace = EventTrace.load(args.trace)
    for line in trace_info_lines(trace):
        print(line)
    print(f"bytes on disk:   {args.trace.stat().st_size:,}")
    return 0


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    from .harness.runner import resolve_engine
    from .trace import EventTrace

    with _metrics_session(args.metrics_out):
        for path in args.traces:
            trace = EventTrace.load(path)
            workload = get_workload(trace.header.workload)
            resolved = resolve_engine(args.engine, trace)
            if resolved == "columnar":
                # Decode once up front: column decoding is a per-trace
                # cost shared by every replay, not engine time, and the
                # bench baselines gate on warm engine throughput.
                trace.columns()
            with obs.span(
                "halo.trace.replay",
                workload=trace.header.workload,
                engine=resolved,
            ) as sp:
                measurement = measure_baseline(
                    workload,
                    scale=trace.header.scale,
                    seed=args.seed,
                    trace=trace,
                    engine=args.engine,
                )
            print(
                format_table(
                    ["metric", "value"],
                    [
                        ["cycles", f"{measurement.cycles:,.0f}"],
                        ["heap accesses", f"{measurement.accesses:,}"],
                        ["L1D misses", f"{measurement.cache.l1_misses:,}"],
                        ["L2 misses", f"{measurement.cache.l2_misses:,}"],
                        ["L3 misses", f"{measurement.cache.l3_misses:,}"],
                        ["DTLB misses", f"{measurement.cache.tlb_misses:,}"],
                        ["peak live bytes", f"{measurement.peak_live_bytes:,}"],
                    ],
                    title=(
                        f"{trace.header.workload} baseline ({trace.header.scale}) "
                        f"[{resolved} engine, {sp.elapsed:.2f}s]"
                    ),
                )
            )
    return 0


def _parse_sweep_values(args: argparse.Namespace) -> tuple[str, list]:
    """The (knob name, parsed value list) selected on a ``trace sweep``."""
    if args.affinity_distance is not None:
        return "affinity-distance", [int(v) for v in args.affinity_distance.split(",")]
    if args.merge_tolerance is not None:
        return "merge-tolerance", [float(v) for v in args.merge_tolerance.split(",")]
    values = [None if v.lower() == "none" else int(v) for v in args.max_groups.split(",")]
    return "max-groups", values


def _cmd_trace_sweep(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from .trace import EventTrace

    trace = EventTrace.load(args.trace)
    workload = get_workload(trace.header.workload)
    knob, values = _parse_sweep_values(args)
    base = reproduce.halo_params_for(workload)
    if knob == "affinity-distance":
        configs = [base.with_affinity_distance(v) for v in values]
    elif knob == "merge-tolerance":
        configs = [
            replace(base, grouping=replace(base.grouping, merge_tolerance=v))
            for v in values
        ]
    else:
        configs = [replace(base, max_groups=v) for v in values]

    times = PhaseTimes()
    with _metrics_session(args.metrics_out, times):
        with obs.span(
            "halo.trace.sweep", workload=trace.header.workload, knob=knob
        ) as sweep_span:
            rows = _run_sweep(args, trace, workload, knob, values, configs, times)
        print(
            format_table(
                [knob, "groups", "grouped ctxs", "graph nodes", "monitored sites"],
                rows,
                title=(
                    f"{trace.header.workload}: {len(configs)}-point {knob} sweep "
                    "from one trace"
                ),
            )
        )
        print(
            f"\nswept {len(configs)} configs in {sweep_span.elapsed:.2f}s "
            "(no workload re-execution)"
        )
        summary = resilience_summary(times)
        if summary:
            print(summary)
    return 0


def _run_sweep(
    args: argparse.Namespace,
    trace,
    workload,
    knob: str,
    values: list,
    configs: list,
    times: PhaseTimes,
) -> list[list[str]]:
    """Execute a ``trace sweep`` and return its table rows."""
    if args.jobs > 1:
        from .harness.checkpoint import journal_for
        from .harness.parallel import run_sweep_parallel

        cache = cache_from_args(args)
        checkpoint = None
        if cache is not None or args.resume:
            checkpoint = journal_for(
                args.cache_dir if cache is not None else None,
                f"sweep-{trace.header.workload}",
            )
        failures: list = []
        points = run_sweep_parallel(
            trace.header.workload,
            configs,
            jobs=args.jobs,
            cache=cache,
            phase_times=times,
            task_timeout=args.task_timeout,
            max_retries=args.max_retries,
            checkpoint=checkpoint,
            resume=args.resume,
            failures=failures,
        )
        _report_failures(failures)
        # Label each surviving point from its own parameters — a failed
        # point leaves a gap, so zipping against `values` would mislabel.
        knob_of = {
            "affinity-distance": lambda p: p.affinity_distance,
            "merge-tolerance": lambda p: p.merge_tolerance,
            "max-groups": lambda p: p.max_groups,
        }[knob]
        return [
            [
                str(knob_of(p)),
                str(p.groups),
                str(p.grouped_contexts),
                str(p.graph_nodes),
                str(p.monitored_sites),
            ]
            for p in points
        ]
    from .core.selectors import monitored_sites
    from .trace import sweep_pipeline

    artifacts = sweep_pipeline(trace, workload.program, configs)
    return [
        [
            str(v),
            str(len(a.groups)),
            str(sum(len(g.members) for g in a.groups)),
            str(len(a.profile.graph)),
            str(len(monitored_sites(a.identification.selectors))),
        ]
        for v, a in zip(values, artifacts)
    ]


def _cmd_faults(args: argparse.Namespace) -> int:
    if args.faults_command == "inject":
        from .faults import FaultPlan, inject_into_path

        plan = FaultPlan(
            seed=args.seed, corrupt_mode=args.mode, corrupt_rate=args.rate
        )
        try:
            damaged = inject_into_path(args.target, plan)
        except FileNotFoundError:
            print(f"error: {args.target} does not exist", file=sys.stderr)
            return 1
        for path in damaged:
            print(f"injected {args.mode} into {path}")
        print(
            f"damaged {len(damaged)} file(s) under {args.target} "
            f"(seed={args.seed}, rate={args.rate})"
        )
        return 0
    return 1  # pragma: no cover - argparse enforces choices


def _load_snapshot(path: Path) -> "obs.MetricsSnapshot":
    """Load a ``--metrics-out`` snapshot, exiting cleanly on bad input."""
    try:
        return obs.snapshot_from_json(path.read_text())
    except FileNotFoundError:
        raise SystemExit(f"error: {path} does not exist")
    except ValueError as exc:
        raise SystemExit(f"error: {path}: {exc}")


def obs_summary_lines(snapshot) -> list[str]:
    """Human-readable summary of a metrics snapshot (``halo obs summary``).

    Three sections: a counters table (sorted by key), gauges, and a span
    roll-up aggregating total seconds and call counts per span name.
    """
    lines: list[str] = []
    if snapshot.counters:
        rows = [
            [key, f"{value:,.3f}".rstrip("0").rstrip(".")]
            for key, value in sorted(snapshot.counters.items())
        ]
        lines.append(format_table(["counter", "value"], rows, title="Counters"))
    if snapshot.gauges:
        rows = [
            [key, f"{value:,.3f}".rstrip("0").rstrip(".")]
            for key, value in sorted(snapshot.gauges.items())
        ]
        lines.append("")
        lines.append(format_table(["gauge", "value"], rows, title="Gauges"))
    if snapshot.histograms:
        rows = [
            [key, f"{h.count:,}", f"{h.total:.3f}"]
            for key, h in sorted(snapshot.histograms.items())
        ]
        lines.append("")
        lines.append(
            format_table(["histogram", "count", "sum (s)"], rows, title="Histograms")
        )
    if snapshot.spans:
        totals: dict[str, list[float]] = {}
        for span in snapshot.spans:
            entry = totals.setdefault(span.name, [0.0, 0])
            entry[0] += span.duration
            entry[1] += 1
        rows = [
            [name, str(count), f"{seconds:.3f}"]
            for name, (seconds, count) in sorted(totals.items())
        ]
        lines.append("")
        lines.append(
            format_table(
                ["span", "count", "total (s)"],
                rows,
                title=f"Spans ({len(snapshot.spans)} recorded)",
            )
        )
    if not lines:
        lines.append("(empty snapshot)")
    return lines


def _cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "export":
        rendered = obs.render(_load_snapshot(args.input), args.format)
        if args.output is not None:
            args.output.write_text(rendered)
            print(f"wrote {args.output}")
        else:
            print(rendered, end="" if rendered.endswith("\n") else "\n")
        return 0
    if args.obs_command == "summary":
        for line in obs_summary_lines(_load_snapshot(args.input)):
            print(line)
        return 0
    if args.obs_command == "check":
        snapshot = _load_snapshot(args.input)
        try:
            passed, report = obs.run_gate(
                snapshot, args.baseline, tolerance=args.tolerance
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(report)
        return 0 if passed else 1
    return 1  # pragma: no cover - argparse enforces choices


def _cmd_sanitize(args: argparse.Namespace) -> int:
    if args.sanitize_command == "fuzz":
        return _cmd_sanitize_fuzz(args)
    return 1  # pragma: no cover - argparse enforces choices


def _cmd_sanitize_fuzz(args: argparse.Namespace) -> int:
    from .sanitize import FuzzConfig, default_scenarios, format_ops, run_fuzz

    entries = [
        (config, ()) for config in default_scenarios(args.seed, args.ops, args.family)
    ]
    if args.scenarios:
        from .scenario import scenario_fuzz_entries

        family = None if args.family == "all" else args.family
        entries.extend(
            scenario_fuzz_entries(args.seed, args.scenarios, args.ops, family)
        )
    failed = 0
    rows = []
    for config, extra_ops in entries:
        report = run_fuzz(config, extra_ops=extra_ops)
        variant = []
        if config.colour_stride:
            variant.append(f"colour={config.colour_stride}")
        if config.always_reuse_chunks:
            variant.append("always-reuse")
        if config.chunk_budget is not None:
            variant.append(f"chunk-budget={config.chunk_budget}")
        if config.pool_size != FuzzConfig.pool_size:
            variant.append(f"pool={config.pool_size >> 10}K")
        if extra_ops:
            variant.append(f"scenario seed={config.seed}")
        label = f"{config.family}" + (f" ({', '.join(variant)})" if variant else "")
        rows.append([label, f"{report.executed:,}", "ok" if report.ok else "FAIL"])
        if not report.ok:
            failed += 1
            print(f"\n{label}: {len(report.findings)} finding(s)", file=sys.stderr)
            for finding in report.findings:
                print(f"  {finding}", file=sys.stderr)
            if report.reproducer is not None:
                print(
                    f"minimal reproducer ({len(report.reproducer)} ops):",
                    file=sys.stderr,
                )
                print(format_ops(report.reproducer), file=sys.stderr)
    print(
        format_table(
            ["scenario", "ops", "result"],
            rows,
            title=f"sanitize fuzz (seed {args.seed})",
        )
    )
    if failed:
        print(f"\n{failed} scenario(s) failed", file=sys.stderr)
        return 1
    print("\nall scenarios clean")
    return 0


def _scenario_workload(ref: str):
    """Resolve a scenario reference: a generated name or a spec file path."""
    if ref.endswith((".json", ".toml")) or "/" in ref:
        from .scenario import (
            MixSpec,
            ScenarioError,
            load_config,
            register_mix,
            register_scenario,
        )

        try:
            spec = load_config(ref)
            if isinstance(spec, MixSpec):
                register_mix(spec)
            else:
                register_scenario(spec)
        except (OSError, ScenarioError) as exc:
            raise SystemExit(f"error: {exc}") from None
        return get_workload(spec.name)
    return _workload_or_exit(ref)


def scenario_info_lines(spec) -> list[str]:
    """Deterministic summary lines for ``halo scenario info``.

    Accepts a :class:`~repro.scenario.ScenarioSpec` or a
    :class:`~repro.scenario.MixSpec`; everything printed is a pure
    function of the spec, so the output is stable across machines.
    """
    from .scenario import MixSpec

    if isinstance(spec, MixSpec):
        lines = [
            f"mix:        {spec.name} (config {spec.digest()})",
            f"scheduler:  {spec.scheduler}",
            f"tenants:    {len(spec.tenants)}",
        ]
        for index, tenant in enumerate(spec.tenants):
            lines.append(
                f"  t{index}: {tenant.spec.name} (config {tenant.spec.digest()}) "
                f"weight={tenant.weight:g} burst={tenant.burst}"
            )
            lines.extend(
                "    " + line for line in scenario_info_lines(tenant.spec)[1:]
            )
        return lines
    lines = [
        f"scenario:   {spec.name} (config {spec.digest()})",
        f"phases:     {len(spec.phases)}  table={spec.table_kb}KiB  "
        f"free-stride={spec.free_stride}  work/access={spec.work_per_access:g}",
    ]
    for kind in spec.kinds:
        size = kind.size.to_dict()
        cells = f" cells={kind.cells}" if kind.cells else ""
        group = f" site-group={kind.group}" if kind.site_group else ""
        lines.append(
            f"  kind {kind.label}: n={kind.base_count} size={size}"
            f" life={kind.lifetime} access={kind.access}"
            f" passes={kind.hot_passes}{cells}{group}"
        )
    for phase in spec.phases:
        weights = ", ".join(f"{label}x{weight:g}" for label, weight in phase.weights)
        repeats = f" (x{phase.repeats})" if phase.repeats > 1 else ""
        lines.append(f"  phase {phase.label}{repeats}: {weights}")
    return lines


def _cmd_scenario_gen(args: argparse.Namespace) -> int:
    from .scenario import build_corpus, corpus_digest, corpus_names, materialise_corpus

    names = corpus_names(args.seed, scenarios=args.scenarios, mixes=args.mixes)
    entries = build_corpus(names)
    print(
        format_table(
            ["name", "kind", "config digest"],
            [[e.name, e.kind, e.digest] for e in entries],
            title=f"scenario corpus (seed {args.seed})",
        )
    )
    print(f"\ncorpus digest: {corpus_digest(entries)}")
    if args.out is not None:
        written = materialise_corpus(args.out, entries, args.seed)
        print(f"wrote {len(written)} file(s) under {args.out}")
    return 0


def _cmd_scenario_info(args: argparse.Namespace) -> int:
    workload = _scenario_workload(args.scenario)
    spec = getattr(workload, "mix", None) or workload.spec
    if args.json:
        import json as _json

        print(_json.dumps(spec.to_dict(), indent=2, sort_keys=True))
        return 0
    for line in scenario_info_lines(spec):
        print(line)
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    _check_scale(args)
    workload = _scenario_workload(args.scenario)
    prepared = prepare_workload(workload.name, include_hds=False, workload=workload)
    baseline = measure_baseline(workload, scale=args.scale, seed=args.seed)
    optimised = measure_halo(workload, prepared.halo, scale=args.scale, seed=args.seed)
    reduction = 0.0
    if baseline.cache.l1_misses:
        reduction = (
            baseline.cache.l1_misses - optimised.cache.l1_misses
        ) / baseline.cache.l1_misses
    speedup = baseline.cycles / optimised.cycles - 1.0 if optimised.cycles else 0.0
    print(
        format_table(
            ["metric", "baseline", "HALO"],
            [
                ["cycles", f"{baseline.cycles:,.0f}", f"{optimised.cycles:,.0f}"],
                ["L1D misses", f"{baseline.cache.l1_misses:,}", f"{optimised.cache.l1_misses:,}"],
                ["groups", "-", str(len(prepared.halo.groups))],
                ["grouped allocs", "-", f"{optimised.grouped_allocs:,}"],
            ],
            title=f"{workload.name} ({args.scale})",
        )
    )
    print(f"\nL1D miss reduction: {reduction * 100:+.1f}%   speedup: {speedup * 100:+.1f}%")
    return 0


def _cmd_scenario_corpus(args: argparse.Namespace) -> int:
    from .scenario import ScenarioError, verify_manifest

    try:
        problems = verify_manifest(args.manifest)
    except (OSError, ScenarioError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if problems:
        for problem in problems:
            print(f"DRIFT: {problem}", file=sys.stderr)
        print(f"\n{len(problems)} corpus problem(s)", file=sys.stderr)
        return 1
    print(f"{args.manifest}: all golden hashes reproduce")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    if args.scenario_command == "gen":
        return _cmd_scenario_gen(args)
    if args.scenario_command == "info":
        return _cmd_scenario_info(args)
    if args.scenario_command == "run":
        return _cmd_scenario_run(args)
    if args.scenario_command == "corpus":
        return _cmd_scenario_corpus(args)
    return 1  # pragma: no cover - argparse enforces choices


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "record":
        return _cmd_trace_record(args)
    if args.trace_command == "info":
        return _cmd_trace_info(args)
    if args.trace_command == "replay":
        return _cmd_trace_replay(args)
    if args.trace_command == "sweep":
        return _cmd_trace_sweep(args)
    return 1  # pragma: no cover - argparse enforces choices


@contextlib.contextmanager
def _graceful_sigterm() -> Iterator[None]:
    """Translate SIGTERM into KeyboardInterrupt for the serve loop.

    The service's interrupt path flushes a final snapshot, so a plain
    ``kill <pid>`` becomes a graceful shutdown instead of lost state.
    """
    import signal

    def _handler(signum, frame):  # pragma: no cover - signal delivery
        raise KeyboardInterrupt

    previous = None
    try:
        previous = signal.getsignal(signal.SIGTERM)
        signal.signal(signal.SIGTERM, _handler)
    except ValueError:  # pragma: no cover - non-main thread
        previous = None
    try:
        yield
    finally:
        if previous is not None:
            with contextlib.suppress(ValueError):
                signal.signal(signal.SIGTERM, previous)


def _serve_config_from_args(args: argparse.Namespace):
    from .serve import DEFAULT_PHASES, MixPhase, ServeConfig

    phases = DEFAULT_PHASES
    if args.phase:
        parsed = []
        for spec in args.phase:
            start_text, sep, mix_text = spec.partition(":")
            if not sep:
                raise SystemExit(f"bad --phase {spec!r}: expected START:W=WEIGHT,...")
            try:
                mix = []
                for part in mix_text.split(","):
                    name, eq, weight = part.partition("=")
                    mix.append((name.strip(), float(weight) if eq else 1.0))
                parsed.append(MixPhase(int(start_text), tuple(mix)))
            except ValueError as exc:
                raise SystemExit(f"bad --phase {spec!r}: {exc}")
        phases = tuple(sorted(parsed, key=lambda phase: phase.start_request))
    return ServeConfig(
        seed=args.seed,
        requests=args.requests,
        epoch_requests=args.epoch_requests,
        phases=phases,
        request_factor=args.request_factor,
        window_epochs=args.window,
        regroup_every=args.regroup_every,
        cooldown_epochs=args.cooldown,
        drift_threshold=args.drift_threshold,
        snapshot_every=args.snapshot_every,
    )


def _print_serve_report(report, title: str) -> None:
    stats = report.stats
    def _epochs(values: list[int]) -> str:
        return ",".join(str(v) for v in values) if values else "-"

    rows = [
        ("requests served", str(stats.requests)),
        ("epochs", str(stats.epochs)),
        ("table generation", str(report.generation)),
        ("swaps", f"{stats.swaps} (epochs {_epochs(stats.swap_epochs)})"),
        ("rollbacks", f"{stats.rollbacks} (epochs {_epochs(stats.rollback_epochs)})"),
        ("swap aborts", f"{stats.swap_aborts} (epochs {_epochs(stats.abort_epochs)})"),
        ("drift events", f"{stats.drift_events} (epochs {_epochs(stats.drift_epochs)})"),
        ("regroup attempts", str(stats.regroup_attempts)),
        ("regroup stalls", str(stats.regroup_stalls)),
        ("migrated", f"{stats.migrated_regions} regions / {stats.migrated_bytes} B"),
        ("snapshots", str(stats.snapshots)),
        ("sanitizer", f"{stats.sanitize_findings} finding(s) in {stats.sanitize_checks} check(s)"),
        ("live bytes", str(stats.live_bytes)),
    ]
    if report.resumed_from is not None:
        rows.insert(0, ("resumed from epoch", str(report.resumed_from)))
    print(format_table(["metric", "value"], rows, title=title))
    if not report.completed:
        print("\nsession interrupted before completion; continue with --resume")


def _cmd_serve_run(args: argparse.Namespace, plan=None, title: str = "serve run") -> int:
    from .serve import ServeError, run_serve

    if getattr(args, "resume", False) and args.state_dir is None:
        print("--resume requires --state-dir", file=sys.stderr)
        return 1
    try:
        config = _serve_config_from_args(args)
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 1
    try:
        with _metrics_session(args.metrics_out), _graceful_sigterm():
            report = run_serve(
                config,
                state_dir=args.state_dir,
                resume=getattr(args, "resume", False),
                plan=plan,
                stop_after=getattr(args, "stop_after", None),
                stop_mode=getattr(args, "stop_mode", "term"),
            )
    except ServeError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 1
    _print_serve_report(report, f"{title} (seed {config.seed})")
    if report.stats.sanitize_findings:
        print(f"\n{report.stats.sanitize_findings} sanitizer finding(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_serve_status(args: argparse.Namespace) -> int:
    from .serve import SnapshotStore

    journals = sorted(Path(args.state_dir).glob("serve-*.journal"))
    if not journals:
        print(f"no serve journals under {args.state_dir}")
        return 0
    rows = []
    for path in journals:
        snapshot = SnapshotStore(path).load()
        if snapshot is None:
            rows.append((path.name, "-", "-", "-", "no intact snapshot"))
            continue
        stats = snapshot.stats
        rows.append(
            (
                path.name,
                str(snapshot.next_epoch),
                str(snapshot.generation),
                str(stats.requests),
                f"{stats.swaps} swap(s), {stats.rollbacks} rollback(s)",
            )
        )
    print(
        format_table(
            ["journal", "next epoch", "generation", "requests", "decisions"],
            rows,
            title="serve status",
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.serve_command == "run":
        return _cmd_serve_run(args)
    if args.serve_command == "status":
        return _cmd_serve_status(args)
    if args.serve_command == "drill":
        from .serve import drill_plan

        plan = drill_plan(
            seed=args.drill_seed,
            swap_flip=args.swap_flip,
            canary_flip=args.canary_flip,
            regroup_stall=args.regroup_stall,
            snapshot_corrupt=args.snapshot_corrupt,
        )
        return _cmd_serve_run(args, plan=plan, title="serve drill")
    return 1  # pragma: no cover - argparse enforces choices


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for name in workload_names():
            workload = get_workload(name)
            print(f"{name:10s} {workload.suite:14s} {workload.description}")
        return 0
    if args.command == "baseline":
        with _sanitize_session(args):
            return _cmd_baseline(args)
    if args.command == "run":
        with _sanitize_session(args):
            return _cmd_run(args)
    if args.command == "plot":
        with _sanitize_session(args):
            return _cmd_plot(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "sanitize":
        return _cmd_sanitize(args)
    if args.command == "scenario":
        if args.scenario_command == "run":
            with _sanitize_session(args):
                return _cmd_scenario(args)
        return _cmd_scenario(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "serve":
        return _cmd_serve(args)
    return 1  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
