"""Catalogue of every metric the pipeline emits.

One place maps metric names to one-line help strings; the Prometheus
exporter renders them as ``# HELP`` lines and ``docs/OBSERVABILITY.md``
documents the same set.  Names are dot-separated, grouped by family:

* ``measure.*`` — harvested from finished :class:`Measurement` runs.
  Integer-valued and fully deterministic: serial and ``--jobs N`` runs
  produce bit-identical totals (the determinism test relies on this).
* ``profile.*`` / ``analyse.*`` — profiling/grouping work actually
  executed; totals depend on cache warmth (a cache hit skips the work).
* ``trace.*`` — event-trace record/replay throughput.
* ``harness.*`` — resilient-runner operational counters; inherently
  nondeterministic (retries, latencies).
* ``phase.seconds`` / spans — wall time; nondeterministic by nature.
"""

from __future__ import annotations

__all__ = ["CATALOGUE", "help_for"]

#: Metric name -> help line (Prometheus ``# HELP``; docs catalogue).
CATALOGUE: dict[str, str] = {
    # phase timing
    "phase.seconds": "Wall seconds spent in a pipeline phase (label: phase).",
    # measurement harvest (deterministic; labels: workload, config)
    "measure.runs": "Finished measurement runs (workload seeds executed).",
    "measure.machine.loads": "Heap load operations executed by the simulated machine.",
    "measure.machine.stores": "Heap store operations executed by the simulated machine.",
    "measure.machine.allocs": "Allocations serviced by the simulated machine.",
    "measure.machine.frees": "Frees serviced by the simulated machine.",
    "measure.machine.reallocs": "Reallocs serviced by the simulated machine.",
    "measure.machine.calls": "Function calls entered on the simulated machine.",
    "measure.machine.instrumentation_toggles": "HALO monitoring state-vector flips.",
    "measure.cache.accesses": "Accesses presented to the cache hierarchy.",
    "measure.cache.l1_hits": "L1D hits.",
    "measure.cache.l1_misses": "L1D misses.",
    "measure.cache.l2_hits": "L2 hits.",
    "measure.cache.l2_misses": "L2 misses.",
    "measure.cache.l3_hits": "L3 hits.",
    "measure.cache.l3_misses": "L3 misses.",
    "measure.cache.tlb_misses": "TLB misses.",
    "measure.alloc.allocs": "Allocations serviced by the allocator under test.",
    "measure.alloc.frees": "Frees serviced by the allocator under test.",
    "measure.alloc.grouped_allocs": "Allocations placed into HALO group chunks.",
    "measure.alloc.forwarded_allocs": "Allocations forwarded to the fallback allocator.",
    "measure.alloc.degraded_allocs": "Allocations degraded to fallback after chunk-budget exhaustion.",
    "measure.alloc.faulted_matches": "Selector matches dropped by injected faults.",
    "measure.alloc.chunks_created": "Group chunks created (chunk churn).",
    "measure.alloc.chunks_reused": "Group chunks reused after emptying (chunk churn).",
    "measure.alloc.chunks_purged": "Group chunks returned to the OS (chunk churn).",
    "measure.alloc.migrated_regions": "Live regions moved by group-table hot-swaps.",
    "measure.alloc.migrated_bytes": "Bytes copied by group-table hot-swaps.",
    "measure.peak_live_bytes": "Sum over runs of peak live heap bytes.",
    # per-engine measurement throughput (labels: engine, workload, config;
    # runs/events are deterministic, seconds is wall time)
    "engine.measure.runs": "Measurement runs per backend (labels: engine, workload, config).",
    "engine.measure.events": "Trace events (or direct accesses) measured per backend.",
    "engine.measure.seconds": "Wall seconds spent measuring, per backend.",
    # profiling harvest (labels: program)
    "profile.runs": "Profiler executions (cache hits do not profile).",
    "profile.contexts": "Distinct allocation contexts discovered.",
    "profile.graph_nodes": "Nodes in the recorded affinity graph.",
    "profile.graph_edges": "Edges in the recorded affinity graph.",
    "profile.machine_accesses": "Machine accesses observed while profiling.",
    "profile.access_bytes": "Bytes of heap access traffic folded into affinity.",
    "profile.affinity_queue_len": "Affinity sliding-window queue length at harvest (gauge).",
    "profile.shadow_stack_depth_max": "Deepest shadow call stack seen while profiling (gauge).",
    # analysis harvest (labels: program)
    "analyse.runs": "Grouping/identification pipeline executions.",
    "analyse.groups": "Affinity groups kept by grouping.",
    "analyse.grouped_contexts": "Contexts covered by the kept groups.",
    "analyse.monitored_sites": "Allocation sites monitored by the synthesised allocator.",
    "analyse.selectors": "Context selectors synthesised for the grouped allocator.",
    "analyse.grouping.seeds": "Seed edges considered by the Figure-6 grouping loop.",
    "analyse.grouping.merge_steps": "Members merged into candidate groups (grouping iterations).",
    # trace record/replay (labels: workload)
    "trace.records": "Workload executions recorded to an event trace.",
    "trace.record.events": "Events written while recording traces.",
    "trace.record.seconds": "Wall seconds spent recording traces.",
    "trace.replays": "Profiles driven from a recorded trace.",
    "trace.replay.events": "Events replayed from traces.",
    "trace.replay.seconds": "Wall seconds spent replaying traces.",
    # heap sanitizer (deterministic: op counts fix the check schedule)
    "sanitize.checks": "Full heap-invariant walks executed by the sanitizer.",
    "sanitize.findings": "Invariant/oracle violations the sanitizer reported.",
    "sanitize.shadow.ops": "Heap operations mirrored into the shadow-heap oracle.",
    # serving daemon (deterministic: decision-level counters only)
    "serve.requests": "Requests served by the long-running allocation service.",
    "serve.epochs": "Serve epochs completed (request batches between decisions).",
    "serve.swaps": "Group-table hot-swaps committed to the live allocator.",
    "serve.rollbacks": "Candidate tables rejected by the canary (kept incumbent).",
    "serve.swap_aborts": "Swaps aborted mid-migration (fault flip; incumbent kept).",
    "serve.drift_events": "Windowed drift detections that triggered re-grouping.",
    "serve.migrated_regions": "Live regions moved across all committed swaps.",
    "serve.migrated_bytes": "Bytes copied across all committed swaps.",
    "serve.regroup_attempts": "Re-grouping attempts (scheduled or drift-triggered).",
    "serve.regroup_stalls": "Re-grouper stalls absorbed (service kept serving).",
    "serve.snapshots": "Crash-safe service snapshots flushed to the journal.",
    "serve.sanitize_checks": "Heap-consistency walks run at swap/epoch boundaries.",
    "serve.sanitize_findings": "Heap-consistency violations found while serving.",
    "serve.live_bytes": "Live retained bytes on the service heap (gauge).",
    # generated scenarios (deterministic: specs are pure functions of seeds)
    "scenario.workloads": "Generated workload classes compiled and registered from specs.",
    "scenario.runs": "Executions of generated scenario/mix workloads.",
    "scenario.ticks": "Scheduling ticks driven through generated workloads (label: workload).",
    "scenario.tenants": "Tenant generators interleaved by mix runs (label: workload).",
    "scenario.corpus.entries": "Corpus entries derived while building/verifying corpora.",
    "scenario.fuzz.ops": "Heap ops contributed to the fuzz matrix by generated scenarios.",
    # resilient-runner operations
    "harness.tasks": "Parallel tasks submitted (label: kind).",
    "harness.task_seconds": "Per-task wall latency histogram (label: kind).",
    "harness.task_retries": "Task attempts retried after a tolerated failure.",
    "harness.task_timeouts": "Tasks cancelled for exceeding their deadline.",
    "harness.task_requeues": "Healthy bystander tasks requeued after a pool rebuild.",
    "harness.pool_rebuilds": "Process-pool rebuilds after a worker crash or timeout.",
    "harness.task_failures": "Tasks that exhausted retries and were reported failed.",
}


def help_for(name: str) -> str:
    """Return the catalogue help line for *name* (empty when unknown)."""
    return CATALOGUE.get(name, "")
