"""Exporters: snapshot JSON, JSONL, Prometheus text, Chrome trace_event.

All four formats are deterministic for a given snapshot — keys are
sorted and field order is fixed — so golden tests can compare exact
strings and repeated exports of the same run diff clean.

* :func:`snapshot_to_json` / :func:`snapshot_from_json` — the canonical
  on-disk form written by ``--metrics-out`` and read back by
  ``halo obs export|summary|check``.
* :func:`to_jsonl` — one JSON object per line (counter / gauge /
  histogram / span events), for log shippers.
* :func:`to_prometheus` — text exposition format with ``# HELP`` lines
  from :mod:`repro.obs.catalogue`; suitable for a node-exporter textfile
  collector.
* :func:`to_chrome_trace` — Chrome ``trace_event`` JSON ("X" complete
  events, microsecond timestamps) loadable in Perfetto or
  ``chrome://tracing``.
"""

from __future__ import annotations

import json
from typing import Any

from .catalogue import help_for
from .metrics import HistogramData, MetricsSnapshot, SpanData, split_metric_key

__all__ = [
    "SNAPSHOT_FORMAT",
    "EXPORT_FORMATS",
    "snapshot_to_json",
    "snapshot_from_json",
    "to_jsonl",
    "to_prometheus",
    "to_chrome_trace",
    "render",
]

#: Identifier stamped into snapshot files; guards ``obs`` against
#: being pointed at an arbitrary JSON file.
SNAPSHOT_FORMAT = "halo-metrics-v1"

#: Formats understood by :func:`render` / ``halo obs export --format``.
EXPORT_FORMATS = ("jsonl", "prometheus", "chrome-trace")


# -- canonical snapshot file -----------------------------------------------


def snapshot_to_json(snapshot: MetricsSnapshot) -> str:
    """Serialise *snapshot* to the canonical indented-JSON document."""
    doc = {
        "format": SNAPSHOT_FORMAT,
        "counters": {key: snapshot.counters[key] for key in sorted(snapshot.counters)},
        "gauges": {key: snapshot.gauges[key] for key in sorted(snapshot.gauges)},
        "histograms": {
            key: {
                "buckets": list(hist.buckets),
                "counts": list(hist.counts),
                "total": hist.total,
                "count": hist.count,
            }
            for key, hist in sorted(snapshot.histograms.items())
        },
        "spans": [
            {
                "name": span.name,
                "start": span.start,
                "duration": span.duration,
                "depth": span.depth,
                "parent": span.parent,
                "pid": span.pid,
                "attrs": span.attrs,
            }
            for span in snapshot.spans
        ],
    }
    return json.dumps(doc, indent=1)


def snapshot_from_json(text: str) -> MetricsSnapshot:
    """Parse a document produced by :func:`snapshot_to_json`."""
    doc = json.loads(text)
    if not isinstance(doc, dict) or doc.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(f"not a {SNAPSHOT_FORMAT} snapshot")
    return MetricsSnapshot(
        counters=dict(doc.get("counters", {})),
        gauges=dict(doc.get("gauges", {})),
        histograms={
            key: HistogramData(
                tuple(entry["buckets"]), list(entry["counts"]), entry["total"], entry["count"]
            )
            for key, entry in doc.get("histograms", {}).items()
        },
        spans=[
            SpanData(
                entry["name"],
                entry["start"],
                entry["duration"],
                entry.get("depth", 0),
                entry.get("parent", -1),
                entry.get("pid", 0),
                dict(entry.get("attrs", {})),
            )
            for entry in doc.get("spans", [])
        ],
    )


# -- JSONL event stream ----------------------------------------------------


def to_jsonl(snapshot: MetricsSnapshot) -> str:
    """Render *snapshot* as one compact JSON object per line."""
    lines: list[str] = []

    def emit(obj: dict[str, Any]) -> None:
        lines.append(json.dumps(obj, separators=(",", ":")))

    for key in sorted(snapshot.counters):
        name, labels = split_metric_key(key)
        emit({"type": "counter", "name": name, "labels": labels, "value": snapshot.counters[key]})
    for key in sorted(snapshot.gauges):
        name, labels = split_metric_key(key)
        emit({"type": "gauge", "name": name, "labels": labels, "value": snapshot.gauges[key]})
    for key in sorted(snapshot.histograms):
        name, labels = split_metric_key(key)
        hist = snapshot.histograms[key]
        emit(
            {
                "type": "histogram",
                "name": name,
                "labels": labels,
                "buckets": list(hist.buckets),
                "counts": list(hist.counts),
                "sum": hist.total,
                "count": hist.count,
            }
        )
    for span in snapshot.spans:
        emit(
            {
                "type": "span",
                "name": span.name,
                "start": round(span.start, 9),
                "duration": round(span.duration, 9),
                "depth": span.depth,
                "parent": span.parent,
                "pid": span.pid,
                "attrs": span.attrs,
            }
        )
    return "\n".join(lines) + ("\n" if lines else "")


# -- Prometheus text exposition --------------------------------------------


def _prom_name(name: str, prefix: str) -> str:
    """Mangle a dotted metric name into a Prometheus identifier."""
    return f"{prefix}_{name}".replace(".", "_").replace("-", "_")


def _prom_labels(labels: dict[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    """Render a label dict (plus fixed extras) as ``{a="1",b="x"}``."""
    items = [(k, labels[k]) for k in sorted(labels)] + list(extra)
    if not items:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in items) + "}"


def _fmt_value(value: float) -> str:
    """Format a sample value; integral floats print without ``.0``."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus(snapshot: MetricsSnapshot, prefix: str = "halo") -> str:
    """Render *snapshot* in the Prometheus text exposition format.

    Counters gain a ``_total`` suffix; histograms render cumulative
    ``_bucket``/``_sum``/``_count`` series.  ``# HELP``/``# TYPE``
    headers are emitted once per metric family, with help text from the
    catalogue.
    """
    lines: list[str] = []
    seen_headers: set[str] = set()

    def header(name: str, mangled: str, kind: str) -> None:
        if mangled in seen_headers:
            return
        seen_headers.add(mangled)
        help_text = help_for(name)
        if help_text:
            lines.append(f"# HELP {mangled} {help_text}")
        lines.append(f"# TYPE {mangled} {kind}")

    for key in sorted(snapshot.counters):
        name, labels = split_metric_key(key)
        mangled = _prom_name(name, prefix) + "_total"
        header(name, mangled, "counter")
        lines.append(f"{mangled}{_prom_labels(labels)} {_fmt_value(snapshot.counters[key])}")
    for key in sorted(snapshot.gauges):
        name, labels = split_metric_key(key)
        mangled = _prom_name(name, prefix)
        header(name, mangled, "gauge")
        lines.append(f"{mangled}{_prom_labels(labels)} {_fmt_value(snapshot.gauges[key])}")
    for key in sorted(snapshot.histograms):
        name, labels = split_metric_key(key)
        mangled = _prom_name(name, prefix)
        header(name, mangled, "histogram")
        hist = snapshot.histograms[key]
        cumulative = 0
        for bound, count in zip(hist.buckets, hist.counts):
            cumulative += count
            lines.append(
                f"{mangled}_bucket{_prom_labels(labels, (('le', _fmt_value(bound)),))} {cumulative}"
            )
        lines.append(f"{mangled}_bucket{_prom_labels(labels, (('le', '+Inf'),))} {hist.count}")
        lines.append(f"{mangled}_sum{_prom_labels(labels)} {_fmt_value(hist.total)}")
        lines.append(f"{mangled}_count{_prom_labels(labels)} {hist.count}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- Chrome trace_event JSON -----------------------------------------------


def to_chrome_trace(snapshot: MetricsSnapshot) -> str:
    """Render the snapshot's spans as Chrome ``trace_event`` JSON.

    Each span becomes an ``"X"`` (complete) event with microsecond
    ``ts``/``dur``.  Each originating process gets its own ``pid`` with
    a ``process_name`` metadata record, so a parallel run opens in
    Perfetto as one track per worker.  Field order within every event is
    fixed for golden-test stability.
    """
    events: list[dict[str, Any]] = []
    pids: list[int] = []
    for span in snapshot.spans:
        if span.pid not in pids:
            pids.append(span.pid)
    for pid in pids:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"halo pid {pid}"},
            }
        )
    for span in snapshot.spans:
        events.append(
            {
                "name": span.name,
                "cat": "halo",
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": span.pid,
                "tid": 0,
                "args": {key: span.attrs[key] for key in sorted(span.attrs)},
            }
        )
    doc = {"traceEvents": events, "displayTimeUnit": "ms"}
    return json.dumps(doc, indent=1)


def render(snapshot: MetricsSnapshot, fmt: str) -> str:
    """Dispatch to an exporter by format name (see :data:`EXPORT_FORMATS`)."""
    if fmt == "jsonl":
        return to_jsonl(snapshot)
    if fmt == "prometheus":
        return to_prometheus(snapshot)
    if fmt == "chrome-trace":
        return to_chrome_trace(snapshot)
    raise ValueError(f"unknown export format {fmt!r} (expected one of {EXPORT_FORMATS})")
