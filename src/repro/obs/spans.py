"""Hierarchical span tracing: the one implementation of phase timing.

A :class:`Span` is a context manager that times a region on the
monotonic ``perf_counter`` clock and — when a metrics registry is
installed — records a :class:`~repro.obs.metrics.SpanData` with its
nesting depth and parent.  Spans always measure, even with no registry:
``span.elapsed`` is valid after the block either way, which is what lets
the ad-hoc ``time.perf_counter()`` blocks that used to be scattered
through ``cli.py`` / ``harness/`` collapse onto this module.

:class:`PhaseSpan` additionally folds the elapsed time into a
``PhaseTimes`` accumulator field and a ``phase.seconds{phase=...}``
counter, so the human-readable phase report and the exported metric
stream are fed from the same measurement.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Optional

from . import metrics

__all__ = ["Span", "PhaseSpan", "span", "phase_span"]


class Span:
    """Context manager timing one named region of the pipeline.

    After the ``with`` block exits, ``elapsed`` holds the region's wall
    time in seconds.  Nested spans recorded in the same registry form a
    parent/child tree (rendered by the Chrome ``trace_event`` exporter).
    """

    __slots__ = ("name", "attrs", "elapsed", "_registry", "_index", "_started")

    def __init__(self, name: str, **attrs: Any) -> None:
        """Create a span called *name*; *attrs* become span attributes."""
        self.name = name
        self.attrs = attrs
        self.elapsed = 0.0
        self._registry: Optional[metrics.MetricsRegistry] = None
        self._index = -1
        self._started = 0.0

    def __enter__(self) -> "Span":
        registry = metrics.active_registry()
        self._registry = registry
        self._started = perf_counter()
        if registry is not None:
            self._index = registry.begin_span(self.name, self._started, dict(self.attrs))
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = perf_counter() - self._started
        if self._registry is not None:
            self._registry.end_span(self._index, self.elapsed)
            self._registry = None


class PhaseSpan(Span):
    """Span that also feeds a ``PhaseTimes`` accumulator.

    *times* is duck-typed (any object with a float attribute named
    *phase*); passing ``None`` skips the accumulator but still records
    the span and the ``phase.seconds`` counter.
    """

    __slots__ = ("times", "phase")

    def __init__(self, times: Optional[Any], phase: str, **attrs: Any) -> None:
        """Time the pipeline phase *phase*, accumulating into *times*."""
        super().__init__(f"phase.{phase}", **attrs)
        self.times = times
        self.phase = phase

    def __exit__(self, *exc_info: object) -> None:
        super().__exit__(*exc_info)
        if self.times is not None:
            setattr(self.times, self.phase, getattr(self.times, self.phase) + self.elapsed)
        metrics.inc("phase.seconds", self.elapsed, phase=self.phase)


def span(name: str, **attrs: Any) -> Span:
    """Convenience constructor: ``with span("halo.plot") as s: ...``."""
    return Span(name, **attrs)


def phase_span(times: Optional[Any], phase: str, **attrs: Any) -> PhaseSpan:
    """Convenience constructor for :class:`PhaseSpan`."""
    return PhaseSpan(times, phase, **attrs)
