"""Unified observability: metrics registry, span tracing, exporters, gate.

Usage from instrumented code (all no-ops when no registry is installed)::

    from .. import obs

    obs.inc("measure.runs", 1, workload=name, config=config)
    with obs.span("halo.plot", figure="13"):
        ...

Usage from a collection point (CLI, tests)::

    registry = obs.install(obs.MetricsRegistry())
    ...run the pipeline...
    obs.uninstall()
    snapshot = registry.snapshot()
    print(obs.to_prometheus(snapshot))

See ``docs/OBSERVABILITY.md`` for the metric catalogue, the span
hierarchy, and how to open a Chrome-trace export in Perfetto.
"""

from .catalogue import CATALOGUE, help_for
from .export import (
    EXPORT_FORMATS,
    render,
    snapshot_from_json,
    snapshot_to_json,
    to_chrome_trace,
    to_jsonl,
    to_prometheus,
)
from .metrics import (
    DEFAULT_BUCKETS,
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
    SpanData,
    active_registry,
    collecting,
    gauge_max,
    gauge_set,
    inc,
    install,
    metric_key,
    observe,
    split_metric_key,
    uninstall,
)
from .regression import Check, compare_snapshot, render_checks, run_gate
from .spans import PhaseSpan, Span, phase_span, span

__all__ = [
    "CATALOGUE",
    "help_for",
    "EXPORT_FORMATS",
    "render",
    "snapshot_from_json",
    "snapshot_to_json",
    "to_chrome_trace",
    "to_jsonl",
    "to_prometheus",
    "DEFAULT_BUCKETS",
    "HistogramData",
    "MetricsRegistry",
    "MetricsSnapshot",
    "SpanData",
    "active_registry",
    "collecting",
    "gauge_max",
    "gauge_set",
    "inc",
    "install",
    "metric_key",
    "observe",
    "split_metric_key",
    "uninstall",
    "Check",
    "compare_snapshot",
    "render_checks",
    "run_gate",
    "PhaseSpan",
    "Span",
    "phase_span",
    "span",
]
