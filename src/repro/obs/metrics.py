"""Process-wide metrics registry: counters, gauges, and histograms.

This is the collection half of the observability subsystem
(``docs/OBSERVABILITY.md``).  A :class:`MetricsRegistry` holds labelled
counters, gauges, histograms, and finished spans for one process.  At
most one registry is *installed* per process at a time; the module-level
helpers (:func:`inc`, :func:`gauge_set`, :func:`gauge_max`,
:func:`observe`) forward to it and are a single ``is None`` check when
nothing is installed, so instrumented code pays effectively nothing when
observability is off.

Two disciplines keep multi-process accounting honest:

* **Harvest, not per-event hooks.**  Hot paths (``Machine._access``,
  ``AffinityRecorder.record_access``) are never instrumented directly;
  already-collected stats objects are folded into the registry once at
  phase boundaries.
* **Publish once, merge explicitly.**  Each event is counted in exactly
  one process's registry.  Worker processes collect into a private
  registry (see :func:`collecting`) and ship a :class:`MetricsSnapshot`
  back inside their result payload; the coordinator merges snapshots
  with :meth:`MetricsSnapshot.merge`.  Snapshots are plain picklable
  dataclasses, so they cross ``ProcessPoolExecutor`` boundaries and
  survive in checkpoint journals.

Merge semantics: counters add, gauges take the maximum (they record
high-water marks), histograms add bucket-wise, span lists concatenate.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional

__all__ = [
    "DEFAULT_BUCKETS",
    "HistogramData",
    "SpanData",
    "MetricsSnapshot",
    "MetricsRegistry",
    "metric_key",
    "split_metric_key",
    "install",
    "uninstall",
    "active_registry",
    "collecting",
    "inc",
    "gauge_set",
    "gauge_max",
    "observe",
]

#: Default histogram bucket upper bounds, in seconds.  Tuned for task
#: latencies: sub-millisecond cache hits up to multi-minute ref-scale runs.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)


def metric_key(name: str, labels: Mapping[str, object]) -> str:
    """Serialise *name* + *labels* into a canonical flat key.

    The format is Prometheus-style — ``name{a="1",b="x"}`` with label
    names sorted — so a given (name, labels) pair always maps to the
    same dictionary key and exports are stable.
    """
    if not labels:
        return name
    inner = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{inner}}}"


def split_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`metric_key` into ``(name, labels)``.

    Only keys produced by :func:`metric_key` are supported; label values
    containing ``"`` or ``,`` are not (and are never emitted here).
    """
    if not key.endswith("}"):
        return key, {}
    name, _, inner = key[:-1].partition("{")
    labels: dict[str, str] = {}
    if inner:
        for part in inner.split(","):
            lname, _, lvalue = part.partition("=")
            labels[lname] = lvalue.strip('"')
    return name, labels


@dataclass
class HistogramData:
    """Bucketed distribution of observed values (e.g. task latencies).

    ``counts`` has one slot per entry of ``buckets`` plus a final
    overflow slot (the implicit ``+Inf`` bucket); counts are *per
    bucket*, not cumulative — exporters cumulate on the way out.
    """

    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        """Size the count vector to the bucket layout if not given."""
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        """Record one observation of *value*."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    def merge(self, other: "HistogramData") -> None:
        """Fold *other* (same bucket layout) into this histogram."""
        if other.buckets != self.buckets:
            raise ValueError("cannot merge histograms with different bucket layouts")
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.total += other.total
        self.count += other.count

    def copy(self) -> "HistogramData":
        """Return an independent copy (merging never aliases state)."""
        return HistogramData(self.buckets, list(self.counts), self.total, self.count)


@dataclass
class SpanData:
    """One finished span: a named, timed region of the pipeline.

    ``start`` is seconds since the owning registry's epoch (a
    ``perf_counter`` origin, so only *relative* times are meaningful and
    spans from one process nest consistently).  ``depth``/``parent``
    encode the nesting at record time; ``parent`` is an index into the
    same snapshot's span list, or ``-1`` for a root span.
    """

    name: str
    start: float
    duration: float
    depth: int = 0
    parent: int = -1
    pid: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)


@dataclass
class MetricsSnapshot:
    """Frozen, picklable view of a registry's contents.

    Keys of ``counters``/``gauges``/``histograms`` are :func:`metric_key`
    strings.  Snapshots are the unit of cross-process transport: workers
    attach one to their returned ``PhaseTimes`` and coordinators
    :meth:`merge` them.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramData] = field(default_factory=dict)
    spans: list[SpanData] = field(default_factory=list)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Fold *other* into this snapshot (counters add, gauges max).

        *other* is left untouched; histogram state is copied, never
        aliased.  Span ``parent`` indices are rebased so they keep
        pointing at the right entry of the concatenated list.
        """
        for key, value in other.counters.items():
            self.counters[key] = self.counters.get(key, 0) + value
        for key, value in other.gauges.items():
            prev = self.gauges.get(key)
            self.gauges[key] = value if prev is None else max(prev, value)
        for key, hist in other.histograms.items():
            mine = self.histograms.get(key)
            if mine is None:
                self.histograms[key] = hist.copy()
            else:
                mine.merge(hist)
        base = len(self.spans)
        for span in other.spans:
            self.spans.append(
                SpanData(
                    span.name,
                    span.start,
                    span.duration,
                    span.depth,
                    span.parent + base if span.parent >= 0 else -1,
                    span.pid,
                    dict(span.attrs),
                )
            )
        return self

    def counters_with_prefix(self, prefix: str) -> dict[str, float]:
        """Return the counters whose metric *name* starts with *prefix*."""
        return {
            key: value
            for key, value in self.counters.items()
            if split_metric_key(key)[0].startswith(prefix)
        }

    def sum_counter(self, name: str) -> float:
        """Sum a counter's value across all of its label combinations."""
        return sum(
            value for key, value in self.counters.items() if split_metric_key(key)[0] == name
        )

    def sum_counter_where(self, name: str, **labels: str) -> float:
        """Sum a counter over the label combinations matching *labels*.

        Only the given labels are constrained; any additional labels on a
        series are ignored (so adding a new label dimension later does not
        silently zero existing queries).
        """
        total = 0.0
        for key, value in self.counters.items():
            got_name, got_labels = split_metric_key(key)
            if got_name == name and all(
                got_labels.get(k) == v for k, v in labels.items()
            ):
                total += value
        return total

    def is_empty(self) -> bool:
        """True when nothing at all has been recorded."""
        return not (self.counters or self.gauges or self.histograms or self.spans)


class MetricsRegistry:
    """Mutable per-process metric store.

    Instrumented code normally goes through the module-level helpers
    rather than holding a registry directly; tests and the CLI create
    one, :func:`install` it, and read it back with :meth:`snapshot`.
    """

    def __init__(self) -> None:
        """Create an empty registry stamped with this process's pid."""
        self.pid = os.getpid()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, HistogramData] = {}
        self._spans: list[SpanData] = []
        self._span_stack: list[int] = []

    # -- scalar metrics ----------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels: object) -> None:
        """Add *value* to the counter *name* with the given labels."""
        key = metric_key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def gauge_set(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge *name* to *value* (last write wins in-process)."""
        self._gauges[metric_key(name, labels)] = value

    def gauge_max(self, name: str, value: float, **labels: object) -> None:
        """Raise the gauge *name* to *value* if it is a new high-water mark."""
        key = metric_key(name, labels)
        prev = self._gauges.get(key)
        if prev is None or value > prev:
            self._gauges[key] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[tuple[float, ...]] = None,
        **labels: object,
    ) -> None:
        """Record *value* into the histogram *name* with the given labels."""
        key = metric_key(name, labels)
        hist = self._histograms.get(key)
        if hist is None:
            hist = self._histograms[key] = HistogramData(buckets or DEFAULT_BUCKETS)
        hist.observe(value)

    # -- spans -------------------------------------------------------------

    def begin_span(self, name: str, start: float, attrs: dict[str, Any]) -> int:
        """Open a span; returns its index for :meth:`end_span`.

        Called by :class:`repro.obs.spans.Span` — *start* is seconds on
        the ``perf_counter`` clock.  The span is recorded immediately
        (with zero duration) so children observe the correct parent and
        depth even before the parent closes.
        """
        index = len(self._spans)
        parent = self._span_stack[-1] if self._span_stack else -1
        self._spans.append(
            SpanData(name, start, 0.0, len(self._span_stack), parent, self.pid, attrs)
        )
        self._span_stack.append(index)
        return index

    def end_span(self, index: int, duration: float) -> None:
        """Close the span opened as *index*, fixing its duration."""
        self._spans[index].duration = duration
        if self._span_stack and self._span_stack[-1] == index:
            self._span_stack.pop()

    # -- reading -----------------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Deep-copy the current contents into a :class:`MetricsSnapshot`."""
        return MetricsSnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms={key: hist.copy() for key, hist in self._histograms.items()},
            spans=[
                SpanData(s.name, s.start, s.duration, s.depth, s.parent, s.pid, dict(s.attrs))
                for s in self._spans
            ],
        )


# -- process-global installation -------------------------------------------

_ACTIVE: Optional[MetricsRegistry] = None


def install(registry: MetricsRegistry) -> MetricsRegistry:
    """Make *registry* the process's active sink; returns it for chaining."""
    global _ACTIVE
    _ACTIVE = registry
    return registry


def uninstall() -> None:
    """Remove the active registry; instrumentation reverts to no-ops."""
    global _ACTIVE
    _ACTIVE = None


def active_registry() -> Optional[MetricsRegistry]:
    """Return the installed registry, or ``None`` when observability is off."""
    return _ACTIVE


@contextmanager
def collecting(registry: Optional[MetricsRegistry] = None) -> Iterator[MetricsRegistry]:
    """Install a registry for the duration of a ``with`` block.

    Used by parallel-worker entry points to collect one task's metrics
    in isolation: the previous registry (usually none) is restored on
    exit, and the caller snapshots the yielded registry into the task's
    result payload.  A failed attempt's registry is simply discarded
    with the exception, so retries never double-count.
    """
    global _ACTIVE
    if registry is None:
        registry = MetricsRegistry()
    previous = _ACTIVE
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous


# -- no-op-checked module helpers ------------------------------------------


def inc(name: str, value: float = 1, **labels: object) -> None:
    """Counter increment on the active registry; no-op when none installed."""
    if _ACTIVE is not None:
        _ACTIVE.inc(name, value, **labels)


def gauge_set(name: str, value: float, **labels: object) -> None:
    """Gauge write on the active registry; no-op when none installed."""
    if _ACTIVE is not None:
        _ACTIVE.gauge_set(name, value, **labels)


def gauge_max(name: str, value: float, **labels: object) -> None:
    """High-water-mark gauge update; no-op when none installed."""
    if _ACTIVE is not None:
        _ACTIVE.gauge_max(name, value, **labels)


def observe(name: str, value: float, **labels: object) -> None:
    """Histogram observation on the active registry; no-op when none installed."""
    if _ACTIVE is not None:
        _ACTIVE.observe(name, value, **labels)
