"""Co-allocation sets and weighted set packing (Chilimbi & Shaham, PLDI'06).

Each hot data stream suggests a *co-allocation set*: the allocation sites of
the objects it references.  If the runtime allocator co-locates everything
allocated from those sites, the stream's accesses touch fewer cache lines.
Since a site can feed only one pool, the chosen sets must be disjoint; the
original work picks a profitable family using an approximation algorithm to
weighted set packing (Halldorsson, 1999), replicated here as the standard
greedy rule: take sets in decreasing ``benefit / sqrt(|set|)`` order,
skipping any that conflict with earlier picks.

The projected benefit of a set follows the original paper's cache-miss
model: laying the stream's objects out contiguously needs
``ceil(total object bytes / line)`` lines per traversal instead of (up to)
one line per object, saving ``frequency x (objects - packed lines)`` misses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from .streams import HotStream

CACHE_LINE = 64


@dataclass(frozen=True)
class CoallocationSet:
    """A candidate group of allocation sites with its projected benefit."""

    sites: frozenset[int]
    benefit: float
    source_stream: HotStream

    @property
    def priority(self) -> float:
        """Greedy set-packing key: benefit scaled by 1/sqrt(|set|)."""
        return self.benefit / math.sqrt(len(self.sites))


def coallocation_set(
    stream: HotStream,
    object_site: Mapping[int, Optional[int]],
    object_sizes: Mapping[int, int],
    line_size: int = CACHE_LINE,
) -> Optional[CoallocationSet]:
    """Build the co-allocation set suggested by *stream* (None if useless)."""
    sites: set[int] = set()
    distinct_objects: set[int] = set()
    total_bytes = 0
    for oid in stream.elements:
        site = object_site.get(oid)
        if site is None:
            return None  # stream references an unattributable object
        sites.add(site)
        if oid not in distinct_objects:
            distinct_objects.add(oid)
            total_bytes += object_sizes.get(oid, line_size)
    # Scattered, each object costs ~a line per traversal; packed, the
    # stream needs total_bytes/line lines.  Fractional lines are kept:
    # savings amortise across the pool when many streams share a set.
    if len(sites) < 2:
        # Co-allocation is about bringing *different* contexts together; a
        # single-site set carries no placement information beyond what the
        # underlying allocator already does with that site's stream.  This
        # is the degenerate case behind the technique's failures on
        # operator-new / wrapper programs (omnetpp, leela, povray, xalanc):
        # every stream maps to the same lone call site.
        return None
    packed_lines = max(1.0, total_bytes / line_size)
    saved = len(distinct_objects) - packed_lines
    if saved <= 0:
        return None
    return CoallocationSet(
        sites=frozenset(sites),
        benefit=float(stream.frequency) * saved,
        source_stream=stream,
    )


def merge_identical_sets(
    candidates: Sequence[CoallocationSet],
) -> list[CoallocationSet]:
    """Aggregate candidates with identical site sets, summing benefits.

    Thousands of hot streams can suggest the same co-allocation set (e.g.
    one 2-element stream per list node); their projected savings add up at
    the one pool the set describes.
    """
    merged: dict[frozenset[int], CoallocationSet] = {}
    for candidate in candidates:
        existing = merged.get(candidate.sites)
        if existing is None or candidate.benefit > existing.benefit:
            representative = candidate.source_stream
        else:
            representative = existing.source_stream
        total = candidate.benefit + (existing.benefit if existing else 0.0)
        merged[candidate.sites] = CoallocationSet(
            sites=candidate.sites, benefit=total, source_stream=representative
        )
    return list(merged.values())


def pack_sets(
    candidates: Sequence[CoallocationSet],
    max_groups: Optional[int] = None,
) -> list[CoallocationSet]:
    """Greedy weighted set packing over the site universe."""
    chosen: list[CoallocationSet] = []
    used_sites: set[int] = set()
    ordered = sorted(
        candidates, key=lambda c: (-c.priority, -c.benefit, sorted(c.sites))
    )
    for candidate in ordered:
        if max_groups is not None and len(chosen) >= max_groups:
            break
        if candidate.sites & used_sites:
            continue
        chosen.append(candidate)
        used_sites |= candidate.sites
    return chosen


def site_assignment(chosen: Sequence[CoallocationSet]) -> dict[int, int]:
    """Map allocation site -> group id for the chosen packing."""
    assignment: dict[int, int] = {}
    for gid, group in enumerate(chosen):
        for site in group.sites:
            assignment[site] = gid
    return assignment
