"""Minimal hot data stream extraction (Chilimbi, PLDI'01; §5.1 replication).

A *data stream* is a repeated subsequence of the object-level reference
trace; its *heat* is ``frequency x length``.  Following the HALO paper's
replication setup, we "detect minimal hot data streams that contain between
2 and 20 elements, with the stream threshold set to account for 90 % of all
heap accesses":

* candidate streams are the expansions of SEQUITUR grammar rules (the
  grammar's hierarchy is exactly the repetition structure of the trace, as
  in Larus's whole-program-paths);
* rule frequency is the number of times the rule occurs in the full
  expansion of the start rule;
* candidates are ranked by heat, and selected hottest-first until the
  selected streams account for the target fraction of the trace; a
  candidate whose expansion contains an already-selected stream (as a
  descendant rule) is skipped, keeping the selected streams *minimal*;
* the number of streams needed to reach the target is the statistic the
  paper uses to show the representation blowing up on roms (">150,000
  streams" where HALO's graph needs 31 nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Sequence

from .sequitur import Rule, Sequitur


@dataclass(frozen=True)
class HotStream:
    """One selected hot data stream."""

    elements: tuple[Hashable, ...]
    frequency: int

    @property
    def heat(self) -> int:
        return self.frequency * len(self.elements)


@dataclass
class StreamAnalysis:
    """Result of hot-stream extraction over one trace."""

    streams: list[HotStream]
    trace_length: int
    grammar_rules: int
    candidate_count: int
    coverage_achieved: float

    @property
    def stream_count(self) -> int:
        return len(self.streams)


@dataclass(frozen=True)
class StreamParams:
    """Extraction parameters (paper Section 5.1 defaults)."""

    min_elements: int = 2
    max_elements: int = 20
    coverage: float = 0.90

    def __post_init__(self) -> None:
        if not 2 <= self.min_elements <= self.max_elements:
            raise ValueError(
                f"need 2 <= min <= max, got [{self.min_elements}, {self.max_elements}]"
            )
        if not 0.0 < self.coverage <= 1.0:
            raise ValueError(f"coverage must be in (0, 1], got {self.coverage}")


def rule_frequencies(grammar: Sequitur) -> dict[int, int]:
    """Occurrences of each rule in the start rule's full expansion."""
    rules = grammar.rules
    frequency: dict[int, int] = {grammar.start.rid: 1}
    # Containment multiset: how many times each owner's body references a child.
    children: dict[int, dict[int, int]] = {}
    for rule in rules:
        counts: dict[int, int] = {}
        for value in rule.body():
            if isinstance(value, Rule):
                counts[value.rid] = counts.get(value.rid, 0) + 1
        children[rule.rid] = counts

    # The containment graph is a DAG; propagate frequencies topologically.
    indegree: dict[int, int] = {rule.rid: 0 for rule in rules}
    for counts in children.values():
        for child in counts:
            indegree[child] += 1
    ready = [rid for rid, degree in indegree.items() if degree == 0]
    while ready:
        rid = ready.pop()
        for child, count in children[rid].items():
            frequency[child] = frequency.get(child, 0) + frequency.get(rid, 0) * count
            indegree[child] -= 1
            if indegree[child] == 0:
                ready.append(child)
    return frequency


def extract_hot_streams(
    trace: Sequence[Hashable],
    params: StreamParams | None = None,
    grammar: Optional[Sequitur] = None,
) -> StreamAnalysis:
    """Compress *trace* and select minimal hot data streams."""
    params = params or StreamParams()
    if grammar is None:
        grammar = Sequitur.from_sequence(trace)
    rules = grammar.rules
    frequency = rule_frequencies(grammar)

    # Expansion lengths, memoised over the DAG.
    lengths: dict[int, int] = {}

    def length_of(rule: Rule) -> int:
        cached = lengths.get(rule.rid)
        if cached is not None:
            return cached
        total = 0
        for value in rule.body():
            total += length_of(value) if isinstance(value, Rule) else 1
        lengths[rule.rid] = total
        return total

    # Candidates: whole rules within the length bounds; longer rules are
    # chopped into consecutive max-length windows.  The chopping reproduces
    # the truncation behaviour Section 5.2 discusses — long regular access
    # sequences become many bounded streams whose co-allocation sets are
    # fragments of the real pattern.
    candidates: list[tuple[int, Optional[Rule], tuple]] = []  # (heat, rule, window)
    for rule in rules:
        if rule is grammar.start:
            continue
        length = length_of(rule)
        freq = frequency.get(rule.rid, 0)
        if freq <= 0 or length < params.min_elements:
            continue
        if length <= params.max_elements:
            candidates.append((freq * length, rule, ()))
        else:
            expansion = grammar.expand(rule)
            for start in range(0, length, params.max_elements):
                window = tuple(expansion[start : start + params.max_elements])
                if len(window) >= params.min_elements:
                    candidates.append((freq * len(window), None, window))
    # Tie-break on (heat, rid) only: the window tuples hold arbitrary trace
    # symbols, which need not be mutually comparable (mixed ints and strings
    # raise TypeError).  Candidate construction order is deterministic and
    # the sort is stable, so equal-key windows keep their insertion order.
    candidates.sort(key=lambda item: (-item[0], item[1].rid if item[1] else -1))

    # Select hottest-first until the target coverage of the trace is
    # accounted for; enforce minimality against already-selected rules.
    target = params.coverage * len(trace)
    selected: list[HotStream] = []
    selected_rids: set[int] = set()
    seen_windows: set[tuple] = set()
    covered = 0.0
    for heat, rule, window in candidates:
        if covered >= target:
            break
        if rule is not None:
            if _contains_selected(rule, selected_rids):
                continue
            elements = tuple(grammar.expand(rule))
            freq = frequency.get(rule.rid, 0)
            selected_rids.add(rule.rid)
        else:
            if window in seen_windows:
                continue
            elements = window
            freq = heat // len(window)
            seen_windows.add(window)
        selected.append(HotStream(elements, freq))
        covered += heat

    coverage_achieved = covered / len(trace) if trace else 0.0
    return StreamAnalysis(
        streams=selected,
        trace_length=len(trace),
        grammar_rules=len(rules),
        candidate_count=len(candidates),
        coverage_achieved=min(coverage_achieved, 1.0),
    )


def _contains_selected(rule: Rule, selected: set[int]) -> bool:
    """Whether any (transitive) sub-rule of *rule* is already selected."""
    if not selected:
        return False
    stack = [rule]
    visited: set[int] = set()
    while stack:
        current = stack.pop()
        for value in current.body():
            if isinstance(value, Rule) and value.rid not in visited:
                if value.rid in selected:
                    return True
                visited.add(value.rid)
                stack.append(value)
    return False
