"""SEQUITUR grammar inference (Nevill-Manning & Witten, 1997).

The hot-data-streams comparison technique (Chilimbi & Shaham, PLDI'06 —
replicated in Section 5.1 of the HALO paper) compresses the profiling run's
data-reference trace with SEQUITUR and mines the resulting grammar for
frequently repeated subsequences.

This is a from-scratch implementation of the classic linear-time, online
algorithm maintaining its two invariants:

* **digram uniqueness** — no pair of adjacent symbols appears more than
  once in the grammar; a repeated digram is replaced by a (possibly new)
  rule;
* **rule utility** — every rule is used at least twice; a rule whose use
  count drops to one is inlined and removed.

Terminals are arbitrary hashable values (the trace uses object ids).
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Optional, Union

Terminal = Hashable


class _Symbol:
    """A doubly-linked grammar symbol: a terminal or a rule reference."""

    __slots__ = ("value", "prev", "next")

    def __init__(self, value: Union[Terminal, "Rule"]) -> None:
        self.value = value
        self.prev: Optional[_Symbol] = None
        self.next: Optional[_Symbol] = None

    @property
    def is_guard(self) -> bool:
        return isinstance(self.value, Rule) and self.value.guard is self

    @property
    def rule(self) -> Optional["Rule"]:
        """The rule this symbol references (None for terminals/guards)."""
        if isinstance(self.value, Rule) and not self.is_guard:
            return self.value
        return None


class Rule:
    """A grammar production.  The body is a circular list around a guard."""

    def __init__(self, rid: int) -> None:
        self.rid = rid
        self.refcount = 0
        #: Live referencing symbols (kept in sync so the single remaining
        #: use can be found in O(1) when rule utility forces an inline).
        self.uses: set[_Symbol] = set()
        self.guard = _Symbol(self)
        self.guard.prev = self.guard
        self.guard.next = self.guard

    # -- structural helpers -------------------------------------------------

    @property
    def first(self) -> _Symbol:
        return self.guard.next  # type: ignore[return-value]

    @property
    def last(self) -> _Symbol:
        return self.guard.prev  # type: ignore[return-value]

    def symbols(self) -> Iterator[_Symbol]:
        """Iterate the body symbols left to right."""
        symbol = self.guard.next
        while symbol is not self.guard:
            yield symbol  # type: ignore[misc]
            symbol = symbol.next  # type: ignore[union-attr]

    def body(self) -> list[Union[Terminal, "Rule"]]:
        """The body as a list of terminals and Rule references."""
        return [s.value for s in self.symbols()]

    def __len__(self) -> int:
        return sum(1 for _ in self.symbols())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [
            f"R{v.rid}" if isinstance(v, Rule) else repr(v) for v in self.body()
        ]
        return f"R{self.rid} -> {' '.join(parts)}"


Digram = tuple[object, object]


def _digram_key(a: _Symbol, b: _Symbol) -> Digram:
    ka = ("r", a.value.rid) if isinstance(a.value, Rule) else ("t", a.value)
    kb = ("r", b.value.rid) if isinstance(b.value, Rule) else ("t", b.value)
    return (ka, kb)


class Sequitur:
    """Online SEQUITUR compressor.

    Feed terminals with :meth:`push` (or build in one go with
    :meth:`from_sequence`); read the grammar through :attr:`start` and
    :attr:`rules`, or expand it back with :meth:`expand` to verify the
    losslessness invariant.
    """

    def __init__(self) -> None:
        self._next_rid = 0
        self.start = self._new_rule()
        self._index: dict[Digram, _Symbol] = {}

    # -- public API -------------------------------------------------------

    @classmethod
    def from_sequence(cls, values: Iterable[Terminal]) -> "Sequitur":
        grammar = cls()
        for value in values:
            grammar.push(value)
        return grammar

    def push(self, value: Terminal) -> None:
        """Append one terminal to the sequence."""
        if isinstance(value, Rule):
            raise TypeError("terminals may not be Rule objects")
        symbol = _Symbol(value)
        self._link(self.start.last, symbol)
        self._link(symbol, self.start.guard)
        if symbol.prev is not self.start.guard:
            self._check_digram(symbol.prev)  # type: ignore[arg-type]

    @property
    def rules(self) -> list[Rule]:
        """All live rules, start rule first (ids are not contiguous)."""
        found: dict[int, Rule] = {}

        def visit(rule: Rule) -> None:
            if rule.rid in found:
                return
            found[rule.rid] = rule
            for symbol in rule.symbols():
                child = symbol.rule
                if child is not None:
                    visit(child)

        visit(self.start)
        return list(found.values())

    def expand(self, rule: Optional[Rule] = None, limit: Optional[int] = None) -> list[Terminal]:
        """Expand *rule* (default: the whole sequence) back to terminals."""
        rule = rule or self.start
        out: list[Terminal] = []
        self._expand_into(rule, out, limit)
        return out

    def _expand_into(self, rule: Rule, out: list[Terminal], limit: Optional[int]) -> None:
        for symbol in rule.symbols():
            if limit is not None and len(out) >= limit:
                return
            child = symbol.rule
            if child is not None:
                self._expand_into(child, out, limit)
            else:
                out.append(symbol.value)

    def check_invariants(self) -> None:
        """Assert digram uniqueness and rule utility (for tests).

        Digrams of two identical symbols are exempt from the uniqueness
        check: the canonical algorithm deliberately skips overlapping
        occurrences in runs like ``aaa``, and deleting a neighbour can
        leave such a digram unindexed.  This mirrors the reference
        implementation's behaviour.
        """
        seen: dict[Digram, tuple[int, int]] = {}
        for position, rule in enumerate(self.rules):
            if rule is not self.start and rule.refcount < 2:
                raise AssertionError(f"rule utility violated for R{rule.rid}")
            symbols = list(rule.symbols())
            for i in range(len(symbols) - 1):
                key = _digram_key(symbols[i], symbols[i + 1])
                if key[0] == key[1]:
                    continue  # overlap quirk: see docstring
                if key in seen:
                    raise AssertionError(f"digram {key} repeated")
                seen[key] = (position, i)

    # -- internals -----------------------------------------------------------

    def _new_rule(self) -> Rule:
        rule = Rule(self._next_rid)
        self._next_rid += 1
        return rule

    @staticmethod
    def _link(left: _Symbol, right: _Symbol) -> None:
        left.next = right
        right.prev = left

    def _remove_digram(self, first: _Symbol) -> None:
        """Drop the digram starting at *first* from the index (if it owns it)."""
        second = first.next
        if second is None or second.is_guard or first.is_guard:
            return
        key = _digram_key(first, second)
        if self._index.get(key) is first:
            del self._index[key]

    def _check_digram(self, first: _Symbol) -> None:
        """Enforce digram uniqueness for the digram starting at *first*."""
        second = first.next
        if first.is_guard or second is None or second.is_guard:
            return
        key = _digram_key(first, second)
        match = self._index.get(key)
        if match is None:
            self._index[key] = first
            return
        if match is first or match.next is first:
            # Same digram object, or overlapping occurrence (aaa): ignore.
            return
        self._handle_match(first, match)

    def _handle_match(self, newer: _Symbol, older: _Symbol) -> None:
        older_rule = self._owning_full_rule(older)
        if older_rule is not None:
            # The matching digram is the entire body of an existing rule:
            # substitute the new occurrence with that rule.
            self._substitute(newer, older_rule)
        else:
            rule = self._new_rule()
            a_value, b_value = older.value, older.next.value  # type: ignore[union-attr]
            self._append_to_rule(rule, a_value)
            self._append_to_rule(rule, b_value)
            # Index the rule's own body digram *before* substituting: the
            # substitutions may trigger rule-utility inlining that rewrites
            # this rule's body, after which (first, last) would be stale.
            self._index[_digram_key(rule.first, rule.last)] = rule.first
            # Replace the older occurrence first, then the newer one.
            self._substitute(older, rule)
            self._substitute(newer, rule)

    @staticmethod
    def _owning_full_rule(first: _Symbol) -> Optional[Rule]:
        """If digram (first, first.next) is a complete rule body, return it."""
        second = first.next
        if (
            first.prev is not None
            and second is not None
            and second.next is not None
            and first.prev.is_guard
            and second.next.is_guard
        ):
            return first.prev.value  # type: ignore[return-value]
        return None

    def _append_to_rule(self, rule: Rule, value: Union[Terminal, Rule]) -> None:
        symbol = _Symbol(value)
        if isinstance(value, Rule):
            value.refcount += 1
            value.uses.add(symbol)
        self._link(rule.last, symbol)
        self._link(symbol, rule.guard)

    def _substitute(self, first: _Symbol, rule: Rule) -> None:
        """Replace digram (first, first.next) with a reference to *rule*."""
        second = first.next
        assert second is not None and not second.is_guard
        left = first.prev
        right = second.next
        assert left is not None and right is not None

        # Un-index digrams that are about to disappear.
        if not left.is_guard:
            self._remove_digram(left)
        if not right.is_guard:
            self._remove_digram(second)
        self._remove_digram(first)

        for symbol in (first, second):
            child = symbol.rule
            if child is not None:
                child.refcount -= 1
                child.uses.discard(symbol)

        replacement = _Symbol(rule)
        rule.refcount += 1
        rule.uses.add(replacement)
        self._link(left, replacement)
        self._link(replacement, right)

        # Rule utility: inline children that fell to a single use.
        for symbol in (first, second):
            child = symbol.rule
            if child is not None and child.refcount == 1:
                self._inline_only_use(child)

        # Restore digram uniqueness around the replacement.
        if not left.is_guard:
            self._check_digram(left)
        if not right.is_guard and replacement.next is right:
            self._check_digram(replacement)

    def _inline_only_use(self, rule: Rule) -> None:
        """Expand the single remaining use of *rule* in place."""
        use = self._find_use(rule)
        if use is None:  # pragma: no cover - defensive
            return
        left = use.prev
        right = use.next
        assert left is not None and right is not None
        if not left.is_guard:
            self._remove_digram(left)
        if not right.is_guard:
            self._remove_digram(use)

        first = rule.first
        last = rule.last
        if first is rule.guard:  # empty rule body; just drop the use
            self._link(left, right)
        else:
            self._link(left, first)
            self._link(last, right)
        rule.refcount -= 1
        rule.uses.discard(use)

        # Only the two seam digrams are new; index entries for digrams
        # inside the spliced body still point at the same (moved, not
        # copied) symbols and remain valid.  Touching only the seams keeps
        # inlining O(1), as in the reference implementation.
        for seam in (left, last if first is not rule.guard else None):
            if seam is None or seam.is_guard:
                continue
            follower = seam.next
            if follower is None or follower.is_guard:
                continue
            key = _digram_key(seam, follower)
            self._index.setdefault(key, seam)

    @staticmethod
    def _find_use(rule: Rule) -> Optional[_Symbol]:
        for symbol in rule.uses:
            return symbol
        return None
