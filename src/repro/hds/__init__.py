"""Hot-data-streams co-allocation: the paper's comparison technique (§5.1)."""

from .coalloc import CoallocationSet, coallocation_set, pack_sets, site_assignment
from .pipeline import (
    HdsArtifacts,
    HdsParams,
    HdsRuntime,
    ImmediateSiteMatcher,
    analyse_profile,
    make_runtime,
)
from .sequitur import Rule, Sequitur
from .streams import HotStream, StreamAnalysis, StreamParams, extract_hot_streams

__all__ = [
    "CoallocationSet",
    "HdsArtifacts",
    "HdsParams",
    "HdsRuntime",
    "HotStream",
    "ImmediateSiteMatcher",
    "Rule",
    "Sequitur",
    "StreamAnalysis",
    "StreamParams",
    "analyse_profile",
    "coallocation_set",
    "extract_hot_streams",
    "make_runtime",
    "pack_sets",
    "site_assignment",
]
