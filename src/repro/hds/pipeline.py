"""End-to-end hot-data-streams pipeline — the paper's comparison technique.

Section 5.1: "we utilise the same specialised allocator as HALO, but with
groups that are generated through hot-data-stream analysis and identified at
runtime using the immediate call site of the allocation procedure."

The offline half mines the profiling trace (SEQUITUR → minimal hot streams →
co-allocation sets → weighted set packing); the online half reuses
:class:`~repro.allocators.group.GroupAllocator` with a matcher keyed on the
raw innermost call site rather than HALO's state-vector selectors.  That
identification choice is precisely what the evaluation shows failing on
wrapper-heavy programs (povray, leela, omnetpp, xalanc).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..allocators.base import AddressSpace, PAGE_SIZE
from ..allocators.group import GroupAllocator
from ..allocators.size_class import SizeClassAllocator
from ..machine.machine import GroupStateVector, Machine
from ..machine.program import Program
from ..profiling.profiler import ProfileResult
from .coalloc import (
    CoallocationSet,
    coallocation_set,
    merge_identical_sets,
    pack_sets,
    site_assignment,
)
from .streams import StreamAnalysis, StreamParams, extract_hot_streams


@dataclass(frozen=True)
class HdsParams:
    """Knobs of the replication (paper Section 5.1 defaults)."""

    streams: StreamParams = field(default_factory=StreamParams)
    chunk_size: int = 1 << 20
    slab_size: int = 16 << 20
    max_spare_chunks: int = 1
    max_grouped_size: int = PAGE_SIZE
    always_reuse_chunks: bool = False
    max_groups: Optional[int] = None


@dataclass
class HdsArtifacts:
    """Offline results of hot-data-stream analysis."""

    program: Program
    profile: ProfileResult
    analysis: StreamAnalysis
    groups: list[CoallocationSet]
    group_of_site: dict[int, int]
    params: HdsParams

    @property
    def stream_count(self) -> int:
        """Streams selected to reach the coverage target (roms blows this up)."""
        return self.analysis.stream_count


class ImmediateSiteMatcher:
    """Group membership keyed on the allocation's immediate call site.

    Reads the *raw* top of the machine's call stack — no origin tracing, no
    full-context information.  ``attach`` must be called with the
    measurement machine before the first allocation.
    """

    def __init__(self, group_of_site: dict[int, int]) -> None:
        self._group_of_site = dict(group_of_site)
        self.machine: Optional[Machine] = None

    def attach(self, machine: Machine) -> None:
        """Bind the matcher to the machine whose stack it will read."""
        self.machine = machine

    def match(self, state: int) -> Optional[int]:
        """Group of the current innermost call site (state is ignored)."""
        machine = self.machine
        if machine is None or not machine.stack:
            return None
        return self._group_of_site.get(machine.stack[-1].addr)


@dataclass
class HdsRuntime:
    """Online half: the shared group allocator + site matcher."""

    allocator: GroupAllocator
    matcher: ImmediateSiteMatcher
    state_vector: GroupStateVector

    def attach(self, machine: Machine) -> None:
        """Wire the matcher to the measurement machine."""
        self.matcher.attach(machine)


def analyse_profile(profile: ProfileResult, params: HdsParams | None = None) -> HdsArtifacts:
    """Offline analysis: trace → streams → packed co-allocation groups."""
    params = params or HdsParams()
    if profile.trace is None:
        raise ValueError(
            "hot-data-stream analysis needs a profile recorded with "
            "record_trace=True"
        )
    analysis = extract_hot_streams(profile.trace, params.streams)
    candidates = []
    for stream in analysis.streams:
        candidate = coallocation_set(stream, profile.object_site, profile.object_sizes)
        if candidate is not None:
            candidates.append(candidate)
    groups = pack_sets(merge_identical_sets(candidates), params.max_groups)
    return HdsArtifacts(
        program=profile.program,
        profile=profile,
        analysis=analysis,
        groups=groups,
        group_of_site=site_assignment(groups),
        params=params,
    )


def make_runtime(artifacts: HdsArtifacts, space: AddressSpace) -> HdsRuntime:
    """Instantiate the specialised allocator for an HDS measurement run."""
    params = artifacts.params
    state_vector = GroupStateVector()
    matcher = ImmediateSiteMatcher(artifacts.group_of_site)
    fallback = SizeClassAllocator(space)
    allocator = GroupAllocator(
        space,
        fallback,
        matcher,
        state_vector,
        chunk_size=params.chunk_size,
        slab_size=params.slab_size,
        max_spare_chunks=params.max_spare_chunks,
        max_grouped_size=params.max_grouped_size,
        always_reuse_chunks=params.always_reuse_chunks,
    )
    return HdsRuntime(allocator=allocator, matcher=matcher, state_vector=state_vector)
