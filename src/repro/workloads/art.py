"""art — SPEC CPU2000's adaptive-resonance-theory neural network.

The real program trains an ART neural network for image recognition,
sweeping small F1-layer neuron records and their weight vectors every
simulated scan.  Neurons are tiny, so placement matters a great deal: the
paper's Figure 13 bars for art are among the taller ones for both
techniques, with close HDS/HALO results (direct allocation sites again).

Synthetic structure: neuron records (24 B) each with one weight cell
(48 B), interleaved with image scan-line buffers from the loader (same size
classes — pollution), plus a handful of reset-layer neurons allocated via
the same helpers on an init path (small site-shared cold fraction).
"""

from __future__ import annotations

import random

from ..machine.machine import Machine
from ..machine.program import Program, ProgramBuilder
from .base import Workload, register
from ._kernel import (
    ChaseSpec,
    StructureSpec,
    allocate_structures,
    chase_structures,
    release_structures,
)

NEURON_SIZE = 32
WEIGHT_CELL_SIZE = 48
SCANLINE_SIZE = 48


@register
class ArtWorkload(Workload):
    """SPEC CPU2000 art: neural-network training sweeps."""

    name = "art"
    suite = "SPEC CPU2000"
    description = "adaptive resonance theory network, neuron/weight sweeps"
    work_per_access = 0.35

    BASE_NEURONS = 20000
    BASE_RESETS = 1800
    BASE_SCANLINES = 24000
    PASSES = 8
    TABLE_SIZE = 384 * 1024

    def _build_program(self) -> Program:
        b = ProgramBuilder("art")
        b.function("malloc", in_main_binary=False)
        self.s_main_load = b.call_site("main", "load_image")
        self.s_scan_malloc = b.call_site("load_image", "malloc", label="scanline")
        self.s_main_train = b.call_site("main", "train")
        self.s_train_neuron = b.call_site("train", "new_neuron")
        self.s_neuron_malloc = b.call_site("new_neuron", "malloc", label="neuron")
        self.s_train_weight = b.call_site("train", "new_weights")
        self.s_weight_malloc = b.call_site("new_weights", "malloc", label="weights")
        self.s_main_reset = b.call_site("main", "init_reset_layer")
        self.s_reset_neuron = b.call_site("init_reset_layer", "new_neuron")
        self.s_reset_weight = b.call_site("init_reset_layer", "new_weights")
        self.s_main_table = b.call_site("main", "malloc", label="match table")
        return b.build()

    def _execute(self, machine: Machine, rng: random.Random, factor: float) -> None:
        with machine.call(self.s_main_table):
            table = machine.malloc(self.TABLE_SIZE)
        specs = [
            StructureSpec(
                "neuron",
                self.scaled(self.BASE_NEURONS, factor),
                NEURON_SIZE,
                [self.s_main_train, self.s_train_neuron, self.s_neuron_malloc],
                cells=1,
                cell_size=WEIGHT_CELL_SIZE,
                cell_chain=[self.s_main_train, self.s_train_weight, self.s_weight_malloc],
            ),
            StructureSpec(
                "reset",
                self.scaled(self.BASE_RESETS, factor),
                NEURON_SIZE,
                [self.s_main_reset, self.s_reset_neuron, self.s_neuron_malloc],
                cells=1,
                cell_size=WEIGHT_CELL_SIZE,
                cell_chain=[self.s_main_reset, self.s_reset_weight, self.s_weight_malloc],
            ),
            StructureSpec(
                "scanline",
                self.scaled(self.BASE_SCANLINES, factor),
                SCANLINE_SIZE,
                [self.s_main_load, self.s_scan_malloc],
            ),
        ]
        groups = allocate_structures(machine, rng, specs)
        chase_structures(
            machine,
            groups["neuron"],
            ChaseSpec("neuron", passes=self.PASSES, node_loads=1),
            self.work_per_access,
            rng,
            table=table,
        )
        chase_structures(
            machine,
            groups["reset"],
            ChaseSpec("reset", passes=1, node_loads=1),
            self.work_per_access,
            rng,
            table=table,
        )
        release_structures(machine, groups)
        machine.free(table)
