"""Workload framework: synthetic stand-ins for the paper's 11 benchmarks.

Python cannot run SPEC binaries under Pin, so each benchmark is replaced by
a synthetic program that reproduces the *allocation and access structure*
the paper attributes to it — wrapper functions for povray, a single
``operator new`` funnel for leela, deep call chains for xalanc, direct
domain-specific ``malloc`` calls for the six prior-work benchmarks, and the
stream-fragmenting regular sweeps of roms.  HALO's inputs are entirely
determined by that structure, so reproducing it reproduces the optimisation
problem.

Every workload:

* declares a static :class:`~repro.machine.program.Program` once (functions,
  call sites, linkage) in ``_build_program``;
* implements ``_execute(machine, rng, scale_factor)`` — deterministic given
  the RNG seed, so baseline/HDS/HALO runs see the *same* allocation and
  access sequence and differ only in placement;
* exposes ``work_per_access``, the compute-intensity knob that decides
  whether reduced misses translate into time (povray and leela are
  compute-bound in the paper: many compute cycles per heap access);
* may declare ``halo_overrides``/``hds_overrides`` reproducing the artefact
  appendix's per-benchmark flags.

Scales mirror the paper's methodology: profile on ``test``, measure on
``ref`` ("workloads are profiled on small test inputs and measured using
larger ref inputs").
"""

from __future__ import annotations

import difflib
import random
from abc import ABC, abstractmethod
from typing import Optional, Type

from ..machine.machine import Machine
from ..machine.program import Program

#: Input-scale multipliers, mirroring SPEC's test/train/ref inputs.
SCALES = {"test": 0.25, "train": 0.5, "ref": 1.0}

#: Workload-name prefixes resolved on demand by the scenario generator
#: (``scn-<seed>`` single scenarios, ``mix-<seed>x<n>`` tenant mixes).
#: The names are self-describing — the full spec is reconstructed from the
#: name alone — so parallel workers and the serving daemon resolve them in
#: fresh processes without any side-channel state.
GENERATED_PREFIXES = ("scn-", "mix-")


class WorkloadError(Exception):
    """Raised for unknown workloads or scales."""


def resolve_scale(scale: str) -> float:
    """Return the scale multiplier for *scale*, or raise :class:`WorkloadError`.

    The single place scale strings are validated; the CLI calls this up
    front so typos fail fast with the valid keys instead of surfacing
    somewhere deep in the pipeline.
    """
    try:
        return SCALES[scale]
    except KeyError:
        raise WorkloadError(
            f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
        ) from None


class Workload(ABC):
    """Base class for the synthetic benchmarks."""

    #: Benchmark name (matches the paper's Figures 13-15 x-axis).
    name: str = ""
    #: Originating suite, for reports ("Olden", "SPEC CPU2017", ...).
    suite: str = ""
    #: One-line description of what the real benchmark does.
    description: str = ""
    #: Compute cycles charged per heap access (memory- vs compute-bound knob).
    work_per_access: float = 1.0
    #: HALO parameter overrides from the artefact appendix (Section A.8).
    halo_overrides: dict = {}
    #: HDS parameter overrides.
    hds_overrides: dict = {}

    def __init__(self) -> None:
        self._program = self._build_program()

    @property
    def program(self) -> Program:
        """The workload's static program model."""
        return self._program

    @abstractmethod
    def _build_program(self) -> Program:
        """Construct the program and stash call-site handles on ``self``."""

    @abstractmethod
    def _execute(self, machine: Machine, rng: random.Random, factor: float) -> None:
        """Run the workload body at the given scale factor."""

    def run(self, machine: Machine, scale: str = "ref") -> None:
        """Execute the workload on *machine* at *scale*.

        The RNG is seeded from (name, scale) only, so different allocator
        configurations observe identical program behaviour.
        """
        factor = resolve_scale(scale)
        rng = random.Random(f"{self.name}:{scale}")
        self._execute(machine, rng, factor)
        machine.finish()

    # -- helpers shared by workload bodies -----------------------------------

    @staticmethod
    def scaled(base: int, factor: float, minimum: int = 1) -> int:
        """Scale an iteration/object count, keeping it at least *minimum*."""
        return max(minimum, int(base * factor))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<workload {self.name} ({self.suite})>"


_REGISTRY: dict[str, Type[Workload]] = {}


def register(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the global registry."""
    if not cls.name:
        raise WorkloadError(f"{cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def lookup(name: str) -> Optional[Type[Workload]]:
    """Return the registered class for *name*, or None (no resolution)."""
    return _REGISTRY.get(name)


def get_workload(name: str) -> Workload:
    """Instantiate the workload called *name*.

    Names with a generated prefix (:data:`GENERATED_PREFIXES`) that are
    not registered yet are resolved by the scenario generator: the spec
    is re-sampled from the name and compiled into a registered class on
    the spot, so generated scenarios work in any process — parallel
    measure workers, the serving daemon, trace replay — with no setup.
    Unknown names raise :class:`WorkloadError` listing the registered
    names and the closest match.
    """
    cls = _REGISTRY.get(name)
    if cls is None and name.startswith(GENERATED_PREFIXES):
        from ..scenario import resolve_scenario

        try:
            return resolve_scenario(name)()
        except WorkloadError:
            raise
        except Exception as exc:
            raise WorkloadError(
                f"cannot build generated scenario {name!r}: {exc}"
            ) from exc
    if cls is None:
        known = sorted(_REGISTRY)
        message = f"unknown workload {name!r}; known: {', '.join(known)}"
        closest = difflib.get_close_matches(name, known, n=1)
        if closest:
            message += f" (closest match: {closest[0]!r})"
        raise WorkloadError(message)
    return cls()

def workload_names() -> list[str]:
    """Registered names in the paper's presentation order where possible."""
    paper_order = [
        "health", "ft", "analyzer", "ammp", "art", "equake",
        "povray", "omnetpp", "xalanc", "leela", "roms",
    ]
    ordered = [name for name in paper_order if name in _REGISTRY]
    extras = sorted(set(_REGISTRY) - set(ordered))
    return ordered + extras
