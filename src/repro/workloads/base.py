"""Workload framework: synthetic stand-ins for the paper's 11 benchmarks.

Python cannot run SPEC binaries under Pin, so each benchmark is replaced by
a synthetic program that reproduces the *allocation and access structure*
the paper attributes to it — wrapper functions for povray, a single
``operator new`` funnel for leela, deep call chains for xalanc, direct
domain-specific ``malloc`` calls for the six prior-work benchmarks, and the
stream-fragmenting regular sweeps of roms.  HALO's inputs are entirely
determined by that structure, so reproducing it reproduces the optimisation
problem.

Every workload:

* declares a static :class:`~repro.machine.program.Program` once (functions,
  call sites, linkage) in ``_build_program``;
* implements ``_execute(machine, rng, scale_factor)`` — deterministic given
  the RNG seed, so baseline/HDS/HALO runs see the *same* allocation and
  access sequence and differ only in placement;
* exposes ``work_per_access``, the compute-intensity knob that decides
  whether reduced misses translate into time (povray and leela are
  compute-bound in the paper: many compute cycles per heap access);
* may declare ``halo_overrides``/``hds_overrides`` reproducing the artefact
  appendix's per-benchmark flags.

Scales mirror the paper's methodology: profile on ``test``, measure on
``ref`` ("workloads are profiled on small test inputs and measured using
larger ref inputs").
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Type

from ..machine.machine import Machine
from ..machine.program import Program

#: Input-scale multipliers, mirroring SPEC's test/train/ref inputs.
SCALES = {"test": 0.25, "train": 0.5, "ref": 1.0}


class WorkloadError(Exception):
    """Raised for unknown workloads or scales."""


class Workload(ABC):
    """Base class for the synthetic benchmarks."""

    #: Benchmark name (matches the paper's Figures 13-15 x-axis).
    name: str = ""
    #: Originating suite, for reports ("Olden", "SPEC CPU2017", ...).
    suite: str = ""
    #: One-line description of what the real benchmark does.
    description: str = ""
    #: Compute cycles charged per heap access (memory- vs compute-bound knob).
    work_per_access: float = 1.0
    #: HALO parameter overrides from the artefact appendix (Section A.8).
    halo_overrides: dict = {}
    #: HDS parameter overrides.
    hds_overrides: dict = {}

    def __init__(self) -> None:
        self._program = self._build_program()

    @property
    def program(self) -> Program:
        """The workload's static program model."""
        return self._program

    @abstractmethod
    def _build_program(self) -> Program:
        """Construct the program and stash call-site handles on ``self``."""

    @abstractmethod
    def _execute(self, machine: Machine, rng: random.Random, factor: float) -> None:
        """Run the workload body at the given scale factor."""

    def run(self, machine: Machine, scale: str = "ref") -> None:
        """Execute the workload on *machine* at *scale*.

        The RNG is seeded from (name, scale) only, so different allocator
        configurations observe identical program behaviour.
        """
        try:
            factor = SCALES[scale]
        except KeyError:
            raise WorkloadError(
                f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
            ) from None
        rng = random.Random(f"{self.name}:{scale}")
        self._execute(machine, rng, factor)
        machine.finish()

    # -- helpers shared by workload bodies -----------------------------------

    @staticmethod
    def scaled(base: int, factor: float, minimum: int = 1) -> int:
        """Scale an iteration/object count, keeping it at least *minimum*."""
        return max(minimum, int(base * factor))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<workload {self.name} ({self.suite})>"


_REGISTRY: dict[str, Type[Workload]] = {}


def register(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding a workload to the global registry."""
    if not cls.name:
        raise WorkloadError(f"{cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_workload(name: str) -> Workload:
    """Instantiate the registered workload called *name*."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None
    return cls()

def workload_names() -> list[str]:
    """Registered names in the paper's presentation order where possible."""
    paper_order = [
        "health", "ft", "analyzer", "ammp", "art", "equake",
        "povray", "omnetpp", "xalanc", "leela", "roms",
    ]
    ordered = [name for name in paper_order if name in _REGISTRY]
    extras = sorted(set(_REGISTRY) - set(ordered))
    return ordered + extras
