"""ft — Ptrdist's minimum-spanning-tree kernel (Fibonacci heaps).

The real program builds a graph and repeatedly performs ``decrease-key``
operations on a Fibonacci heap while growing a spanning tree — vertex
records and heap nodes are chased together, hard.  It allocates directly
from distinct, domain-specific call sites with no wrappers, which is why
the paper finds both the hot-data-streams technique and HALO effective here
(Figures 13/14 show them within a couple of points of each other).

Synthetic structure: vertex records (hot) each carrying two heap-link
cells, allocated interleaved with edge-weight records (own call site, same
size class — pollution both techniques remove), plus a small number of
sentinel vertices from a setup path (the only site-shared cold data, kept
small to match the benchmark's easy-target nature).
"""

from __future__ import annotations

import random

from ..machine.machine import Machine
from ..machine.program import Program, ProgramBuilder
from .base import Workload, register
from ._kernel import (
    ChaseSpec,
    StructureSpec,
    allocate_structures,
    chase_structures,
    release_structures,
)

VERTEX_SIZE = 48
HEAP_CELL_SIZE = 16
EDGE_RECORD_SIZE = 48


@register
class FtWorkload(Workload):
    """Ptrdist ft: Fibonacci-heap MST, direct allocation sites."""

    name = "ft"
    suite = "Ptrdist"
    description = "minimum spanning tree over Fibonacci heaps"
    work_per_access = 13.0

    BASE_VERTICES = 11000
    BASE_SENTINELS = 1000
    BASE_EDGES = 12000
    PASSES = 9
    TABLE_SIZE = 384 * 1024

    def _build_program(self) -> Program:
        b = ProgramBuilder("ft")
        b.function("malloc", in_main_binary=False)
        self.s_main_read = b.call_site("main", "read_graph")
        self.s_edge_malloc = b.call_site("read_graph", "malloc", label="edge record")
        self.s_main_mst = b.call_site("main", "mst")
        self.s_mst_vertex = b.call_site("mst", "new_vertex")
        self.s_vertex_malloc = b.call_site("new_vertex", "malloc", label="vertex")
        self.s_mst_link = b.call_site("mst", "heap_link")
        self.s_link_malloc = b.call_site("heap_link", "malloc", label="heap cell")
        self.s_main_init = b.call_site("main", "init_sentinels")
        self.s_init_vertex = b.call_site("init_sentinels", "new_vertex")
        self.s_init_link = b.call_site("init_sentinels", "heap_link")
        self.s_main_table = b.call_site("main", "malloc", label="adjacency table")
        return b.build()

    def _execute(self, machine: Machine, rng: random.Random, factor: float) -> None:
        with machine.call(self.s_main_table):
            table = machine.malloc(self.TABLE_SIZE)
        specs = [
            StructureSpec(
                "vertex",
                self.scaled(self.BASE_VERTICES, factor),
                VERTEX_SIZE,
                [self.s_main_mst, self.s_mst_vertex, self.s_vertex_malloc],
                cells=2,
                cell_size=HEAP_CELL_SIZE,
                cell_chain=[self.s_main_mst, self.s_mst_link, self.s_link_malloc],
            ),
            StructureSpec(
                "sentinel",
                self.scaled(self.BASE_SENTINELS, factor),
                VERTEX_SIZE,
                [self.s_main_init, self.s_init_vertex, self.s_vertex_malloc],
                cells=2,
                cell_size=HEAP_CELL_SIZE,
                cell_chain=[self.s_main_init, self.s_init_link, self.s_link_malloc],
            ),
            StructureSpec(
                "edge",
                self.scaled(self.BASE_EDGES, factor),
                EDGE_RECORD_SIZE,
                [self.s_main_read, self.s_edge_malloc],
            ),
        ]
        groups = allocate_structures(machine, rng, specs)
        chase_structures(
            machine,
            groups["vertex"],
            ChaseSpec("vertex", passes=self.PASSES),
            self.work_per_access,
            rng,
            table=table,
        )
        chase_structures(
            machine,
            groups["sentinel"],
            ChaseSpec("sentinel", passes=1),
            self.work_per_access,
            rng,
            table=table,
        )
        release_structures(machine, groups)
        machine.free(table)
