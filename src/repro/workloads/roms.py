"""roms — SPEC CPU2017's regional ocean modelling system.

roms calls ``malloc`` directly, so site-keyed identification is *not* the
problem here; instead the paper uses roms to expose a representational
weakness of hot data streams: "while HALO's affinity graph can represent
over 90% of all salient accesses in this program using only 31 nodes, the
hot-data-stream-based approach requires over 150,000 streams", and the
truncated co-allocation sets produced under the deflated threshold
"separate data that would otherwise naturally be co-located by a
size-segregated allocator" — HDS actually *increases* L1D misses, while
HALO has essentially no effect.

Two mechanisms are reproduced structurally:

* **stream blow-up** — the tracer-array sweep visits the same arrays every
  time step, but in per-step block-permuted order (adaptive sub-domain
  scheduling); every step fragments the repeats differently, so SEQUITUR
  accumulates thousands of moderately hot rules, all mapping to the same
  single-site set;
* **truncated sets** — boundary cells come in (c, d, e) triples, allocated
  contiguously and naturally co-located by the baseline's size classes,
  but every visit consults a large grid array between the d and e
  accesses.  Large widely-accessed objects terminate hot data streams
  (Section 5.2), so the streams capture only (c, d): the packed set pulls
  c and d into a pool and strands e — two lines per visit where the
  baseline needed ~1.5.

Artefact appendix quirk: ``--max-groups 4``.
"""

from __future__ import annotations

import random

from ..machine.machine import Machine
from ..machine.program import Program, ProgramBuilder
from .base import Workload, register
from .patterns import free_all

TRACER_SIZE = 128
BOUNDARY_CELL_SIZE = 16  # c, d and e all share the 16-byte class
GRID_SIZE = 768 * 1024


@register
class RomsWorkload(Workload):
    """SPEC CPU2017 roms: regular sweeps that fragment hot data streams."""

    name = "roms"
    suite = "SPEC CPU2017"
    description = "ocean model time stepping over tracer and boundary arrays"
    work_per_access = 2.2
    halo_overrides = {"max_groups": 4}
    hds_overrides = {"max_groups": 4}

    BASE_TRACERS = 2400
    BASE_TRIPLES = 6000
    SWEEP_STEPS = 10
    BOUNDARY_STEPS = 8
    BLOCK = 16

    def _build_program(self) -> Program:
        b = ProgramBuilder("roms")
        b.function("malloc", in_main_binary=False)
        self.s_main_grid = b.call_site("main", "malloc", label="grid array")
        self.s_main_setup = b.call_site("main", "allocate_fields")
        self.s_tracer_malloc = b.call_site("allocate_fields", "malloc", label="tracer")
        self.s_main_bounds = b.call_site("main", "allocate_boundary")
        self.s_c_malloc = b.call_site("allocate_boundary", "malloc", label="cell c")
        self.s_d_malloc = b.call_site("allocate_boundary", "malloc", label="cell d")
        self.s_e_malloc = b.call_site("allocate_boundary", "malloc", label="cell e")
        return b.build()

    def _execute(self, machine: Machine, rng: random.Random, factor: float) -> None:
        n_tracers = self.scaled(self.BASE_TRACERS, factor)
        n_triples = self.scaled(self.BASE_TRIPLES, factor)

        with machine.call(self.s_main_grid):
            grid = machine.malloc(GRID_SIZE)
        grid_lines = GRID_SIZE // 64

        # Tracer fields, allocated in order.
        tracers = []
        with machine.call(self.s_main_setup):
            for _ in range(n_tracers):
                with machine.call(self.s_tracer_malloc):
                    tracer = machine.malloc(TRACER_SIZE)
                machine.store(tracer, 0, 8)
                tracers.append(tracer)

        # Boundary-cell triples, contiguous in allocation order: the
        # baseline's 16-byte class keeps each (c, d, e) together.
        triples = []
        with machine.call(self.s_main_bounds):
            for _ in range(n_triples):
                cells = []
                for site in (self.s_c_malloc, self.s_d_malloc, self.s_e_malloc):
                    with machine.call(site):
                        cell = machine.malloc(BOUNDARY_CELL_SIZE)
                    machine.store(cell, 0, 8)
                    cells.append(cell)
                triples.append(tuple(cells))

        # Time stepping.
        block = self.BLOCK
        for step in range(self.SWEEP_STEPS):
            # Tracer sweep in per-step block-permuted order: the repetition
            # structure fragments differently every step (stream blow-up).
            boundaries = list(range(0, n_tracers, block))
            rng.shuffle(boundaries)
            for start in boundaries:
                for index in range(start, min(start + block, n_tracers)):
                    tracer = tracers[index]
                    machine.load(tracer, 0, 8)
                    machine.load(tracer, 64, 8)
                    machine.work(self.work_per_access * 2)

        order = list(range(n_triples))
        for step in range(self.BOUNDARY_STEPS):
            # Boundary relaxation in active-cell (shuffled) order; the grid
            # lookup between d and e terminates hot data streams.
            rng.shuffle(order)
            for index in order:
                c, d, e = triples[index]
                machine.load(c, 0, 8)
                machine.load(d, 0, 8)
                machine.load(grid, rng.randrange(grid_lines) * 64, 8)
                machine.load(e, 0, 8)
                machine.work(self.work_per_access * 4)

        # End of run: boundary data and most tracer fields are released
        # (only the climatology tracers stay live), then checkpoint output
        # buffers push total memory to its peak — Table 1 therefore sees
        # nearly-empty group chunks.
        for c, d, e in triples:
            free_all(machine, (c, d, e))
        keep = max(1, len(tracers) // 14)
        free_all(machine, tracers[keep:])
        checkpoints = []
        with machine.call(self.s_main_grid):
            for _ in range(24):
                checkpoints.append(machine.malloc(64 * 1024))
        for tracer in tracers[:keep]:
            machine.load(tracer, 0, 8)
        free_all(machine, tracers[:keep])
        free_all(machine, checkpoints)
        machine.free(grid)
