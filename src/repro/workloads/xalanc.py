"""xalanc — SPEC CPU2017's XSLT processor.

The paper singles xalanc out for "significant indirection in its call
chains, requiring the traversal of tens of stack frames to properly
appreciate the context in which allocations have been made", and for using
custom allocator plumbing (``XMemory``/vector allocators) that funnels
everything through the same few low-level sites.  Site-keyed HDS
identification fails; HALO's full-context selectors deliver the paper's
second-largest speedup (~16 %, with ~13 % of L1D misses removed).

Synthetic structure: DOM nodes and their attribute entries are allocated
through a deep ``build_dom → append_child → vector_push → xmemory_allocate
→ malloc`` chain; result-tree nodes come through an equally deep transform
chain; parser string buffers flow through the same ``xmemory_allocate``
funnel (so the baseline interleaves everything, and immediate-site
identification sees one context).  The transform phase repeatedly walks
the DOM with its attributes — the hot traversal.
"""

from __future__ import annotations

import random

from ..machine.machine import Machine
from ..machine.program import Program, ProgramBuilder
from .base import Workload, register
from .patterns import call_chain, free_all, partial_shuffle

NODE_SIZE = 48  # exactly its baseline size class
ATTR_SIZE = 16  # exactly its baseline size class
STRING_SIZE = 48  # shares the DOM node class
RESULT_SIZE = 16  # shares the attribute class
ARENA_SIZE = 64 * 1024  # XalanDOMString arena blocks (never grouped)


@register
class XalancWorkload(Workload):
    """SPEC CPU2017 xalanc: deep call chains through custom allocator plumbing."""

    name = "xalanc"
    suite = "SPEC CPU2017"
    description = "XSLT transformation with deeply indirected allocation"
    work_per_access = 1.1  # memory-bound: tree walking dominates
    halo_overrides = {"max_spare_chunks": 0, "always_reuse_chunks": True}
    hds_overrides = {"max_spare_chunks": 0, "always_reuse_chunks": True}

    BASE_NODES = 10000
    BASE_STRINGS = 8000
    BASE_RESULTS = 8000
    TRANSFORM_PASSES = 8
    SHUFFLE = 0.06

    def _build_program(self) -> Program:
        b = ProgramBuilder("xalanc")
        b.function("malloc", in_main_binary=False)
        # Deep DOM-building chain.
        self.s_main_parse = b.call_site("main", "parse_source")
        self.s_parse_dom = b.call_site("parse_source", "build_dom")
        self.s_dom_child = b.call_site("build_dom", "append_child")
        self.s_child_vec = b.call_site("append_child", "vector_push")
        self.s_dom_attr = b.call_site("build_dom", "set_attribute")
        self.s_attr_vec = b.call_site("set_attribute", "vector_push")
        # Parser strings through the same plumbing.
        self.s_parse_read = b.call_site("parse_source", "read_source")
        self.s_read_vec = b.call_site("read_source", "vector_push")
        # Deep transform chain.
        self.s_main_tf = b.call_site("main", "transform")
        self.s_tf_apply = b.call_site("transform", "apply_templates")
        self.s_apply_emit = b.call_site("apply_templates", "emit_result")
        self.s_emit_vec = b.call_site("emit_result", "vector_push")
        # The shared low-level funnel: one malloc site for everything, and
        # deep enough (vector_push -> ensure_capacity -> grow_buffer ->
        # xmemory_allocate -> malloc) that fixed-window identification
        # schemes see an identical stack suffix for every allocation type
        # ("requiring the traversal of tens of stack frames").
        self.s_vec_ensure = b.call_site("vector_push", "ensure_capacity")
        self.s_ensure_grow = b.call_site("ensure_capacity", "grow_buffer")
        self.s_grow_xmem = b.call_site("grow_buffer", "xmemory_allocate")
        self.s_xmem_malloc = b.call_site("xmemory_allocate", "malloc", label="XMemory")
        self.s_main_arena = b.call_site("main", "malloc", label="string arena")
        return b.build()

    def _alloc(self, machine: Machine, path_sites, size: int):
        """Allocate through the deep vector_push → ... → malloc funnel."""
        chain = list(path_sites) + [
            self.s_vec_ensure,
            self.s_ensure_grow,
            self.s_grow_xmem,
            self.s_xmem_malloc,
        ]
        with call_chain(machine, chain):
            obj = machine.malloc(size)
        machine.store(obj, 0, 8)
        return obj

    def _execute(self, machine: Machine, rng: random.Random, factor: float) -> None:
        n_nodes = self.scaled(self.BASE_NODES, factor)
        n_strings = self.scaled(self.BASE_STRINGS, factor)
        n_results = self.scaled(self.BASE_RESULTS, factor)

        with machine.call(self.s_main_arena):
            arena = machine.malloc(ARENA_SIZE)
        arena_lines = ARENA_SIZE // 64

        # Parse: each element allocates its DOM node, usually some text
        # content (a string buffer), then its attribute entry — so even in
        # one shared pool the node/attribute pair is split by strings, and
        # all of it flows through the same low-level funnel.
        dom: list = []
        strings: list = []
        per_node = n_strings / n_nodes
        for _ in range(n_nodes):
            node = self._alloc(
                machine,
                [self.s_main_parse, self.s_parse_dom, self.s_dom_child, self.s_child_vec],
                NODE_SIZE,
            )
            budget = per_node + rng.random()
            while budget >= 1.0 and len(strings) < n_strings:
                strings.append(
                    self._alloc(
                        machine,
                        [self.s_main_parse, self.s_parse_read, self.s_read_vec],
                        STRING_SIZE,
                    )
                )
                budget -= 1.0
            attr = self._alloc(
                machine,
                [self.s_main_parse, self.s_parse_dom, self.s_dom_attr, self.s_attr_vec],
                ATTR_SIZE,
            )
            dom.append((node, attr))

        # Transform: walk the DOM repeatedly, emitting result nodes on the
        # first pass (they share the attribute size class).
        results: list = []
        order = partial_shuffle(dom, self.SHUFFLE, rng)
        for tf_pass in range(self.TRANSFORM_PASSES):
            for index, (node, attr) in enumerate(order):
                machine.load(node, 0, 8)  # node type + first child
                machine.load(node, 16, 8)  # template match key
                machine.load(attr, 0, 8)  # attribute value
                if tf_pass == 0 and len(results) < n_results:
                    results.append(
                        self._alloc(
                            machine,
                            [self.s_main_tf, self.s_tf_apply, self.s_apply_emit, self.s_emit_vec],
                            RESULT_SIZE,
                        )
                    )
                if index % 8 == 0:
                    machine.load(arena, rng.randrange(arena_lines) * 64, 8)
                machine.work(self.work_per_access * 4)

        # Serialise the result tree once.
        for result in results:
            machine.load(result, 0, 8)
            machine.work(self.work_per_access)

        free_all(machine, [obj for pair in dom for obj in pair])
        free_all(machine, strings + results)
        machine.free(arena)
