"""Synthetic benchmark suite mirroring the paper's 11 evaluation programs."""

from .base import SCALES, Workload, WorkloadError, get_workload, register, workload_names

# Import workload modules for their registration side effects.
from . import (  # noqa: F401
    ammp,
    deepsjeng,
    analyzer,
    art,
    equake,
    ft,
    health,
    leela,
    omnetpp,
    povray,
    roms,
    xalanc,
)

__all__ = [
    "SCALES",
    "Workload",
    "WorkloadError",
    "get_workload",
    "register",
    "workload_names",
]
