"""povray — SPEC CPU2017's ray tracer (the paper's motivating example).

Section 3 of the paper builds its motivation on povray: the parser allocates
geometry objects of several types through a *wrapper function*,
``pov::pov_malloc``, and the render loop then traverses some types (planes,
CSG composites) while leaving others (textures) aside.  Because almost all
heap data flows through the wrapper, techniques that characterise
allocations by the immediate call site of ``malloc`` see a single context
and can do nothing — exactly the failure the paper shows for hot-data
streams.  HALO's full-context identification distinguishes
``create_plane → pov_malloc`` from ``create_texture → pov_malloc`` and
separates the hot geometry from the cold textures.

The paper also notes povray is largely compute-bound: HALO removes 5–15 %
of its L1D misses while execution time barely moves (Figures 13/14) —
reproduced here with a high ``work_per_access``.

Table 1's 26 % grouped-data fragmentation comes from the parser's token
buffers: they are hot during parsing (so HALO groups them), but the whole
pool is dead by the time the program's memory usage peaks during media
construction — chunks resident, nothing live.
"""

from __future__ import annotations

import random

from ..machine.machine import Machine
from ..machine.program import Program, ProgramBuilder
from .base import Workload, register
from .patterns import burst_plan, call_chain, free_all, partial_shuffle

PLANE_SIZE = 64  # exactly its baseline size class
CSG_SIZE = 48  # exactly its baseline size class
TEXTURE_SIZE = 48  # baseline size class 48 (shares the CSG class)
TOKEN_SIZE = 64  # parser token buffers (shares the plane class)
MEDIA_SIZE = 4096  # media density maps: at the grouping size limit


@register
class PovrayWorkload(Workload):
    """SPEC CPU2017 povray: wrapper-function allocation, compute-bound."""

    name = "povray"
    suite = "SPEC CPU2017"
    description = "ray tracer allocating geometry through pov_malloc"
    work_per_access = 60.0  # compute-bound: shading dominates

    BASE_PLANES = 6000
    BASE_CSG = 6000
    BASE_TEXTURES = 9000
    BASE_TOKENS = 7000
    RENDER_PASSES = 8
    SHUFFLE = 0.05

    def _build_program(self) -> Program:
        b = ProgramBuilder("povray")
        b.function("malloc", in_main_binary=False)
        # Parse loop: every object type goes through pov_malloc.
        self.s_main_parse = b.call_site("main", "parse_scene")
        self.s_parse_plane = b.call_site("parse_scene", "create_plane")
        self.s_parse_csg = b.call_site("parse_scene", "create_csg")
        self.s_parse_texture = b.call_site("parse_scene", "create_texture")
        self.s_parse_token = b.call_site("parse_scene", "get_token")
        self.s_plane_pov = b.call_site("create_plane", "pov_malloc")
        self.s_csg_pov = b.call_site("create_csg", "pov_malloc")
        self.s_texture_pov = b.call_site("create_texture", "pov_malloc")
        self.s_token_pov = b.call_site("get_token", "pov_malloc")
        # The single call site HDS identification can see.
        self.s_pov_malloc = b.call_site("pov_malloc", "malloc", label="pov_malloc body")
        self.s_parse_media = b.call_site("parse_scene", "create_media")
        self.s_media_pov = b.call_site("create_media", "pov_malloc")
        return b.build()

    def _alloc(self, machine: Machine, create_site, size: int):
        """Allocate through the pov_malloc wrapper."""
        pov_site = {
            self.s_parse_plane.addr: self.s_plane_pov,
            self.s_parse_csg.addr: self.s_csg_pov,
            self.s_parse_texture.addr: self.s_texture_pov,
            self.s_parse_token.addr: self.s_token_pov,
            self.s_parse_media.addr: self.s_media_pov,
        }[create_site.addr]
        with call_chain(machine, [create_site, pov_site, self.s_pov_malloc]):
            obj = machine.malloc(size)
        machine.store(obj, 0, 8)
        return obj

    def _execute(self, machine: Machine, rng: random.Random, factor: float) -> None:
        n_planes = self.scaled(self.BASE_PLANES, factor)
        n_csg = self.scaled(self.BASE_CSG, factor)
        n_textures = self.scaled(self.BASE_TEXTURES, factor)
        n_tokens = self.scaled(self.BASE_TOKENS, factor)

        planes: list = []
        csgs: list = []
        textures: list = []
        tokens: list = []
        geometry: list = []  # planes + CSG in allocation order (the hot list)

        plan = burst_plan(
            rng,
            [
                ("plane", n_planes, 1),
                ("csg", n_csg, 1),
                ("texture", n_textures, 1),
                ("token", n_tokens, 1),
            ],
        )
        with machine.call(self.s_main_parse):
            for kind in plan:
                if kind == "plane":
                    obj = self._alloc(machine, self.s_parse_plane, PLANE_SIZE)
                    planes.append(obj)
                    geometry.append(obj)
                elif kind == "csg":
                    obj = self._alloc(machine, self.s_parse_csg, CSG_SIZE)
                    csgs.append(obj)
                    geometry.append(obj)
                elif kind == "texture":
                    obj = self._alloc(machine, self.s_parse_texture, TEXTURE_SIZE)
                    textures.append(obj)
                else:
                    # Token buffers are chased hard while parsing (the
                    # scanner re-reads recent tokens), then all die at once.
                    obj = self._alloc(machine, self.s_parse_token, TOKEN_SIZE)
                    tokens.append(obj)
                    for back in range(2, min(3, len(tokens)) + 1):
                        machine.load(tokens[-back], 0, 8)
                    machine.work(self.work_per_access * 2)

        # End of parse: the token pool dies in one sweep.  Media density
        # maps are then built, pushing peak memory usage past the frees —
        # Table 1's snapshot sees the dead token chunks.
        free_all(machine, tokens)
        media = []
        with machine.call(self.s_main_parse):
            for _ in range(max(4, len(plan) // 160)):
                media.append(self._alloc(machine, self.s_parse_media, MEDIA_SIZE))

        # Render: repeatedly intersect rays with the geometry list; textures
        # are consulted rarely, media occasionally (stream terminators).
        order = partial_shuffle(geometry, self.SHUFFLE, rng)
        for _ in range(self.RENDER_PASSES):
            for index, obj in enumerate(order):
                machine.load(obj, 0, 8)  # bounding slab
                machine.load(obj, 32, 8)  # surface equation
                if index % 16 == 0:
                    m = media[(index // 16) % len(media)]
                    machine.load(m, rng.randrange(m.size // 64) * 64, 8)
                machine.work(self.work_per_access * 3)
        for texture in textures:
            machine.load(texture, 0, 8)
            machine.work(self.work_per_access)

        free_all(machine, csgs + planes + textures + media)
