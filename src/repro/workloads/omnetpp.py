"""omnetpp — SPEC CPU2017's discrete-event network simulator.

Every message, event and payload in the real program is allocated through
C++'s ``operator new``: the immediate call site of ``malloc`` is the one
inside the runtime's ``operator new`` for *all* allocations, which is why
the paper's hot-data-streams replication achieves nothing here, while
HALO's full-context identification still sees the distinct call paths and
earns a ~4 % speedup (~10 % of L1D misses).

Heap behaviour is churn: the simulator keeps a large future-event set of
(event, message, payload) triples with randomised lifetimes.  Module
activity allocates bookkeeping records *between* the members of each
triple, so a single shared pool — what HDS's one-site group amounts to —
interleaves them just like the baseline's scattered free-slot reuse does;
only a dedicated triple pool (HALO's group) keeps them contiguous.

This is also the workload of the paper's Figure 12 affinity-distance sweep:
the event-set heap array is probed between the event and message accesses,
so very small affinity distances cannot see the triple relationship, and
very large ones start absorbing the statistics records into the group.

Artefact appendix quirks: ``--chunk-size 131072 --max-spare-chunks 0`` with
chunks always reused.
"""

from __future__ import annotations

import heapq
import random

from ..machine.machine import Machine
from ..machine.program import Program, ProgramBuilder
from .base import Workload, register
from .patterns import call_chain, free_all

EVENT_SIZE = 32
MESSAGE_SIZE = 64
PAYLOAD_SIZE = 48
STATS_SIZE = 48
FES_HEAP_SIZE = 256 * 1024  # the future-event-set binary heap array


@register
class OmnetppWorkload(Workload):
    """SPEC CPU2017 omnetpp: message churn through operator new."""

    name = "omnetpp"
    suite = "SPEC CPU2017"
    description = "discrete-event simulation, all allocation via operator new"
    work_per_access = 3.0
    halo_overrides = {
        "chunk_size": 131072,
        "max_spare_chunks": 0,
        "always_reuse_chunks": True,
    }
    hds_overrides = {
        "chunk_size": 131072,
        "max_spare_chunks": 0,
        "always_reuse_chunks": True,
    }

    BASE_STEPS = 24000
    WINDOW = 6000  # mean number of in-flight triples
    STATS_EVERY = 3
    PEEKS = 8  # in-flight messages inspected per step

    def _build_program(self) -> Program:
        b = ProgramBuilder("omnetpp")
        b.function("operator new", in_main_binary=False, traceable=True)
        b.function("malloc", in_main_binary=False)
        self.s_main_loop = b.call_site("main", "sim_loop")
        # Scheduling path: events enter the future event set.
        self.s_loop_sched = b.call_site("sim_loop", "schedule_event")
        self.s_sched_new = b.call_site("schedule_event", "operator new")
        # Messaging path: modules send messages with payloads.
        self.s_loop_app = b.call_site("sim_loop", "app_handle_message")
        self.s_app_send = b.call_site("app_handle_message", "send_message")
        self.s_send_new = b.call_site("send_message", "operator new")
        self.s_app_payload = b.call_site("app_handle_message", "encapsulate")
        self.s_payload_new = b.call_site("encapsulate", "operator new")
        # Statistics path: long-lived records, rarely revisited.
        self.s_loop_stats = b.call_site("sim_loop", "record_statistics")
        self.s_stats_new = b.call_site("record_statistics", "operator new")
        # The single malloc call inside the runtime's operator new: the only
        # site HDS identification can key on.
        self.s_new_malloc = b.call_site("operator new", "malloc", label="new body")
        self.s_main_fes = b.call_site("main", "malloc", label="FES heap array")
        return b.build()

    def _new(self, machine: Machine, path_sites, size: int):
        """Allocate through ``operator new`` (single internal malloc site)."""
        with call_chain(machine, list(path_sites) + [self.s_new_malloc]):
            obj = machine.malloc(size)
        machine.store(obj, 0, 8)
        return obj

    def _execute(self, machine: Machine, rng: random.Random, factor: float) -> None:
        steps = self.scaled(self.BASE_STEPS, factor)
        window = self.scaled(self.WINDOW, factor)
        with machine.call(self.s_main_fes):
            fes = machine.malloc(FES_HEAP_SIZE)
        fes_lines = FES_HEAP_SIZE // 64

        stats_records: list = []
        in_flight: list = []  # min-heap of (expiry step, seq, event, message, payload)
        seq = 0

        with machine.call(self.s_main_loop):
            for step in range(steps):
                # Deliver every triple whose timer expired.
                while in_flight and in_flight[0][0] <= step:
                    _, _, event, message, payload = heapq.heappop(in_flight)
                    machine.load(event, 0, 8)
                    machine.load(event, 16, 8)
                    machine.load(fes, rng.randrange(fes_lines) * 64, 8)  # sift-down
                    machine.load(message, 0, 8)
                    machine.load(message, 32, 8)
                    machine.load(payload, 0, 8)
                    machine.work(self.work_per_access * 6)
                    machine.free(event)
                    machine.free(message)
                    machine.free(payload)

                # Schedule a new triple, with module bookkeeping allocated
                # in between its members (the interleaving that defeats a
                # single shared pool).
                event = self._new(machine, [self.s_loop_sched, self.s_sched_new], EVENT_SIZE)
                machine.load(fes, rng.randrange(fes_lines) * 64, 8)  # FES insert
                if step % self.STATS_EVERY == 0:
                    stats_records.append(
                        self._new(machine, [self.s_loop_stats, self.s_stats_new], STATS_SIZE)
                    )
                message = self._new(machine, [self.s_loop_app, self.s_app_send, self.s_send_new], MESSAGE_SIZE)
                if step % self.STATS_EVERY == 1:
                    stats_records.append(
                        self._new(machine, [self.s_loop_stats, self.s_stats_new], STATS_SIZE)
                    )
                payload = self._new(
                    machine, [self.s_loop_app, self.s_app_payload, self.s_payload_new], PAYLOAD_SIZE
                )
                machine.load(fes, rng.randrange(fes_lines) * 64, 8)  # sift-up
                expiry = step + window + rng.randrange(-window // 8, window // 8)
                heapq.heappush(in_flight, (expiry, seq, event, message, payload))
                seq += 1
                # Module activity: queued messages are inspected several
                # times during their life (timeout scans, priority checks,
                # module queue walks) — each inspection reads the control
                # event and its message together.
                for _ in range(self.PEEKS):
                    peek = in_flight[rng.randrange(len(in_flight))]
                    machine.load(peek[2], 0, 8)  # control event
                    machine.load(peek[3], 0, 8)  # the message itself
                machine.work(self.work_per_access * (2 + 2 * self.PEEKS))

        # Finalisation: drain the FES and scan the statistics once.
        for _, _, event, message, payload in in_flight:
            machine.free(event)
            machine.free(message)
            machine.free(payload)
        for record in stats_records:
            machine.load(record, 0, 8)
            machine.work(self.work_per_access)
        free_all(machine, stats_records)
        machine.free(fes)
