"""leela — SPEC CPU2017's Go engine.

The paper notes "leela allocates memory exclusively through C++'s new
operator": every UCT tree node, board clone and history record reaches
``malloc`` through the same call inside ``operator new``, so immediate-site
identification has a single undifferentiated context.  HALO still separates
the allocation paths via the full call stack; the benchmark is strongly
compute-bound (move evaluation dominates), so — as in Figures 13/14 — the
L1D miss reduction barely moves execution time.

leela is also Table 1's worst fragmentation case (99.99 %, 2.05 MiB): each
game's Monte-Carlo search churns a couple of MiB of UCT nodes through the
group chunks and frees all of them when the game ends; peak memory usage
comes later, during final scoring, when the grouped chunks are resident but
essentially empty.
"""

from __future__ import annotations

import random

from ..machine.machine import Machine
from ..machine.program import Program, ProgramBuilder
from .base import Workload, register
from .patterns import call_chain, free_all, partial_shuffle

UCT_NODE_SIZE = 48
BOARD_SIZE = 64
HISTORY_SIZE = 48  # shares the UCT node class


@register
class LeelaWorkload(Workload):
    """SPEC CPU2017 leela: Go tree search through operator new."""

    name = "leela"
    suite = "SPEC CPU2017"
    description = "Monte-Carlo Go engine, all allocation via operator new"
    work_per_access = 600.0  # compute-bound: move evaluation dwarfs heap traffic

    GAMES = 3
    BASE_NODES_PER_GAME = 9000
    DESCENT_PASSES = 4
    BASE_HISTORY = 4000
    SHUFFLE = 0.15  # tree descents are far from allocation order
    BASE_SCORE_BUFFERS = 40

    def _build_program(self) -> Program:
        b = ProgramBuilder("leela")
        b.function("operator new", in_main_binary=False, traceable=True)
        b.function("malloc", in_main_binary=False)
        self.s_main_game = b.call_site("main", "play_game")
        # UCT search path.
        self.s_game_search = b.call_site("play_game", "uct_search")
        self.s_search_expand = b.call_site("uct_search", "expand_node")
        self.s_expand_new = b.call_site("expand_node", "operator new")
        self.s_search_clone = b.call_site("uct_search", "clone_board")
        self.s_clone_new = b.call_site("clone_board", "operator new")
        # Game history path.
        self.s_game_history = b.call_site("play_game", "record_move")
        self.s_history_new = b.call_site("record_move", "operator new")
        # Final scoring.
        self.s_main_score = b.call_site("main", "score_games")
        self.s_score_new = b.call_site("score_games", "operator new")
        # The single malloc site inside operator new.
        self.s_new_malloc = b.call_site("operator new", "malloc", label="new body")
        return b.build()

    def _new(self, machine: Machine, path_sites, size: int):
        with call_chain(machine, list(path_sites) + [self.s_new_malloc]):
            obj = machine.malloc(size)
        machine.store(obj, 0, 8)
        return obj

    def _execute(self, machine: Machine, rng: random.Random, factor: float) -> None:
        nodes_per_game = self.scaled(self.BASE_NODES_PER_GAME, factor)
        history_per_game = self.scaled(self.BASE_HISTORY, factor)
        history: list = []
        roots: list = []

        for _ in range(self.GAMES):
            # Monte-Carlo search: grow the UCT tree (nodes + board clones),
            # recording moves into the long-lived history as the game goes.
            tree: list = []
            with machine.call(self.s_main_game):
                for index in range(nodes_per_game):
                    node = self._new(
                        machine, [self.s_game_search, self.s_search_expand, self.s_expand_new], UCT_NODE_SIZE
                    )
                    board = self._new(
                        machine, [self.s_game_search, self.s_search_clone, self.s_clone_new], BOARD_SIZE
                    )
                    tree.append((node, board))
                    if index % (nodes_per_game // history_per_game + 1) == 0:
                        history.append(
                            self._new(
                                machine, [self.s_game_history, self.s_history_new], HISTORY_SIZE
                            )
                        )

                # Tree descents: visit nodes in an order far from allocation
                # order (UCT follows win-rate statistics, not creation time).
                order = partial_shuffle(tree, self.SHUFFLE, rng)
                for _ in range(self.DESCENT_PASSES):
                    for node, board in order:
                        machine.load(node, 0, 8)  # visit count / win rate
                        machine.load(node, 40, 8)  # child pointer
                        machine.load(board, 0, 8)  # board hash
                        machine.work(self.work_per_access * 3)

            # Game over: the search tree is released, except the root
            # node, which survives for post-game analysis — the sliver of
            # live grouped data behind Table 1's 99.99 %.
            roots.append(tree[0][0])
            machine.free(tree[0][1])
            for node, board in tree[1:]:
                machine.free(node)
                machine.free(board)

        # Final scoring: history is replayed while fresh scoring buffers
        # drive total memory usage to its peak — with the group chunks
        # resident but almost empty (Table 1's 99.99 %).
        buffers = []
        with machine.call(self.s_main_score):
            for _ in range(self.scaled(self.BASE_SCORE_BUFFERS, factor)):
                buffers.append(self._new(machine, [self.s_score_new], 64 * 1024))
        for record in history:
            machine.load(record, 0, 8)
            machine.load(record, 24, 8)
            machine.work(self.work_per_access * 2)
        free_all(machine, history + buffers + roots)
