"""Reusable allocation/access building blocks for the synthetic benchmarks.

Every pattern here corresponds to a heap-behaviour idiom the paper calls
out: interleaved allocation of hot and cold objects that a size-segregated
allocator co-locates by accident (Figure 1), linked traversals whose
locality depends on placement (Figure 2), and paired-structure sweeps.
"""

from __future__ import annotations

import random
from contextlib import ExitStack, contextmanager
from typing import Iterator, Sequence

from ..machine.heap import HeapObject
from ..machine.machine import Machine
from ..machine.program import CallSite


@contextmanager
def call_chain(machine: Machine, sites: Sequence[CallSite]) -> Iterator[None]:
    """Enter a nested chain of call sites (outermost first)."""
    with ExitStack() as stack:
        for site in sites:
            stack.enter_context(machine.call(site))
        yield


def alloc_through(machine: Machine, sites: Sequence[CallSite], size: int) -> HeapObject:
    """Allocate *size* bytes with the call stack threaded through *sites*."""
    with call_chain(machine, sites):
        return machine.malloc(size)


def chase_list(
    machine: Machine,
    objects: Sequence[HeapObject],
    loads_per_object: int = 2,
    work: float = 1.0,
    store_every: int = 0,
) -> None:
    """Pointer-chase over *objects* in order (the Figure 2 access loop).

    Each visit loads ``loads_per_object`` fields (8-byte words at distinct
    offsets) and charges ``work`` compute cycles per access.  When
    ``store_every`` is positive, every n-th object also receives a store.
    """
    for index, obj in enumerate(objects):
        span = max(1, obj.size // 8)
        for field in range(loads_per_object):
            machine.load(obj, (field % span) * 8, 8)
        if store_every and index % store_every == 0:
            machine.store(obj, 0, 8)
        machine.work(work * (loads_per_object + (1 if store_every and index % store_every == 0 else 0)))


def chase_pairs(
    machine: Machine,
    pairs: Sequence[tuple[HeapObject, HeapObject]],
    work: float = 1.0,
) -> None:
    """Alternate accesses over (left, right) pairs — cell→payload chasing."""
    for left, right in pairs:
        machine.load(left, 0, 8)
        machine.load(right, 0, 8)
        right_span = max(1, right.size // 8)
        machine.load(right, (right_span - 1) * 8, 8)
        machine.work(work * 3)


def sweep_arrays(
    machine: Machine,
    arrays: Sequence[HeapObject],
    element_size: int = 8,
    work: float = 1.0,
) -> None:
    """Stream sequentially through each array in turn (roms-style sweeps)."""
    for array in arrays:
        for offset in range(0, array.size, element_size):
            machine.load(array, offset, element_size)
        machine.work(work * (array.size // element_size))


def free_all(machine: Machine, objects: Sequence[HeapObject]) -> None:
    """Free every live object in *objects*."""
    for obj in objects:
        if obj.alive:
            machine.free(obj)


def partial_shuffle(items: list, fraction: float, rng: random.Random) -> list:
    """Return a copy of *items* with ``fraction * len`` random transpositions.

    Models data structures whose traversal order is *mostly* allocation
    order with some churn (list reordering, priority changes) — the regime
    where a size-segregated allocator's incidental locality is good but
    imperfect.  ``fraction=0`` is allocation order; large fractions approach
    a full shuffle.
    """
    if not 0.0 <= fraction:
        raise ValueError(f"fraction must be >= 0, got {fraction}")
    out = list(items)
    swaps = int(len(out) * fraction)
    for _ in range(swaps):
        i = rng.randrange(len(out))
        j = rng.randrange(len(out))
        out[i], out[j] = out[j], out[i]
    return out


def burst_plan(
    rng: random.Random, spec: Sequence[tuple[str, int, int]]
) -> list[str]:
    """Build an allocation plan of labels interleaved in bursts.

    *spec* entries are ``(label, total, burst)``: the label appears *total*
    times overall, in contiguous bursts of *burst* (programs allocate
    related objects in runs — per-phase loops — not one at a time).  Bursts
    from different labels are interleaved with :func:`interleave`.
    """
    chunk_lists = []
    for label, total, burst in spec:
        if burst <= 0:
            raise ValueError(f"burst must be positive, got {burst} for {label!r}")
        chunks = []
        remaining = total
        while remaining > 0:
            take = min(burst, remaining)
            chunks.append([label] * take)
            remaining -= take
        chunk_lists.append(chunks)
    plan: list[str] = []
    for chunk in interleave(rng, *chunk_lists):
        plan.extend(chunk)
    return plan


def interleave(rng: random.Random, *sequences: Sequence) -> list:
    """Deterministically interleave several sequences into one allocation order.

    Preserves each sequence's internal order but shuffles between sequences,
    weighting by remaining length — the adversarial "related data scattered
    by allocation order" setting of the paper's Figure 1/3(a).
    """
    iters = [list(seq) for seq in sequences]
    positions = [0] * len(iters)
    out = []
    remaining = sum(len(seq) for seq in iters)
    while remaining:
        weights = [len(seq) - pos for seq, pos in zip(iters, positions)]
        choice = rng.choices(range(len(iters)), weights=weights)[0]
        out.append(iters[choice][positions[choice]])
        positions[choice] += 1
        remaining -= 1
    return out
