"""analyzer — FreeBench's logic-circuit timing analyser.

The real program parses a gate-level netlist into heap records and then
propagates arrival times across the circuit, chasing gate records and their
fan-out lists over and over.  Like the other prior-work programs it
allocates from direct, distinct call sites, so both co-allocation
techniques identify its hot data easily; the paper shows solid wins for
both, with HALO slightly ahead.

Synthetic structure: gate records with one fan-out cell each (hot),
interleaved with netlist source strings from the parser's own site (same
size classes — pollution) and a few probe gates allocated through the same
helper on a setup path (site-shared cold, HALO-only separable).
"""

from __future__ import annotations

import random

from ..machine.machine import Machine
from ..machine.program import Program, ProgramBuilder
from .base import Workload, register
from ._kernel import (
    ChaseSpec,
    StructureSpec,
    allocate_structures,
    chase_structures,
    release_structures,
)

GATE_SIZE = 32
FANOUT_CELL_SIZE = 32
STRING_SIZE = 32


@register
class AnalyzerWorkload(Workload):
    """FreeBench analyzer: static timing analysis over gate records."""

    name = "analyzer"
    suite = "FreeBench"
    description = "gate-level timing analysis with fan-out chasing"
    work_per_access = 34.0

    BASE_GATES = 12000
    BASE_PROBES = 1500
    BASE_STRINGS = 14000
    PASSES = 8
    TABLE_SIZE = 256 * 1024

    def _build_program(self) -> Program:
        b = ProgramBuilder("analyzer")
        b.function("malloc", in_main_binary=False)
        self.s_main_parse = b.call_site("main", "parse_netlist")
        self.s_string_malloc = b.call_site("parse_netlist", "malloc", label="source string")
        self.s_main_analyse = b.call_site("main", "analyse")
        self.s_analyse_gate = b.call_site("analyse", "new_gate")
        self.s_gate_malloc = b.call_site("new_gate", "malloc", label="gate")
        self.s_analyse_fan = b.call_site("analyse", "add_fanout")
        self.s_fan_malloc = b.call_site("add_fanout", "malloc", label="fanout cell")
        self.s_main_probe = b.call_site("main", "place_probes")
        self.s_probe_gate = b.call_site("place_probes", "new_gate")
        self.s_probe_fan = b.call_site("place_probes", "add_fanout")
        self.s_main_table = b.call_site("main", "malloc", label="delay table")
        return b.build()

    def _execute(self, machine: Machine, rng: random.Random, factor: float) -> None:
        with machine.call(self.s_main_table):
            table = machine.malloc(self.TABLE_SIZE)
        specs = [
            StructureSpec(
                "gate",
                self.scaled(self.BASE_GATES, factor),
                GATE_SIZE,
                [self.s_main_analyse, self.s_analyse_gate, self.s_gate_malloc],
                cells=1,
                cell_size=FANOUT_CELL_SIZE,
                cell_chain=[self.s_main_analyse, self.s_analyse_fan, self.s_fan_malloc],
            ),
            StructureSpec(
                "probe",
                self.scaled(self.BASE_PROBES, factor),
                GATE_SIZE,
                [self.s_main_probe, self.s_probe_gate, self.s_gate_malloc],
                cells=1,
                cell_size=FANOUT_CELL_SIZE,
                cell_chain=[self.s_main_probe, self.s_probe_fan, self.s_fan_malloc],
            ),
            StructureSpec(
                "string",
                self.scaled(self.BASE_STRINGS, factor),
                STRING_SIZE,
                [self.s_main_parse, self.s_string_malloc],
            ),
        ]
        groups = allocate_structures(machine, rng, specs)
        chase_structures(
            machine,
            groups["gate"],
            ChaseSpec("gate", passes=self.PASSES),
            self.work_per_access,
            rng,
            table=table,
        )
        chase_structures(
            machine,
            groups["probe"],
            ChaseSpec("probe", passes=1),
            self.work_per_access,
            rng,
            table=table,
        )
        release_structures(machine, groups)
        machine.free(table)
