"""Shared allocate/chase kernel for the direct-allocation benchmarks.

The six programs the paper takes from prior work (health, ft, analyzer,
ammp, art, equake) share a heap-behaviour skeleton: a hot linked structure
(nodes plus satellite cells) allocated interleaved with colder data of the
same size classes, then chased repeatedly.  This module factors that
skeleton so each workload file only declares its program shape (call-site
chains) and its knobs (sizes, counts, pollution fraction, compute
intensity).

The knobs map onto the locality mechanisms the paper describes:

* ``pollution`` objects share size classes with the hot structure but come
  from their own call sites — the baseline co-locates them with hot data by
  allocation order; both HDS and HALO exclude them;
* ``shared_cold`` items are allocated through the *same* sites as hot items
  but on a colder call path — only HALO's full-context identification can
  separate these (small for the prior-work programs, which is exactly why
  hot-data streams performed well on them);
* satellite ``cells`` live in a different size class than their node, so
  pooling fuses a traversal that otherwise touches two runs;
* a large shared ``table`` adds placement-independent traffic and acts as a
  stream terminator for the HDS trace abstraction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

from ..machine.heap import HeapObject
from ..machine.machine import Machine
from ..machine.program import CallSite
from .patterns import burst_plan, call_chain, free_all, partial_shuffle


@dataclass
class StructureSpec:
    """One allocation kind: a node plus its satellite cells."""

    label: str
    count: int
    node_size: int
    node_chain: Sequence[CallSite]
    cells: int = 0
    cell_size: int = 0
    cell_chain: Sequence[CallSite] = ()
    burst: int = 1


@dataclass
class ChaseSpec:
    """How one kind is traversed."""

    label: str
    passes: int
    node_loads: int = 2
    shuffle: float = 0.05
    table_every: int = 4


Item = tuple[HeapObject, list[HeapObject]]


def allocate_structures(
    machine: Machine, rng: random.Random, specs: Sequence[StructureSpec]
) -> dict[str, list[Item]]:
    """Allocate all kinds in a burst-interleaved order; returns per-label items."""
    plan = burst_plan(rng, [(s.label, s.count, s.burst) for s in specs])
    by_label = {s.label: s for s in specs}
    out: dict[str, list[Item]] = {s.label: [] for s in specs}
    for label in plan:
        spec = by_label[label]
        with call_chain(machine, spec.node_chain):
            node = machine.malloc(spec.node_size)
        machine.store(node, 0, 8)
        cells: list[HeapObject] = []
        for _ in range(spec.cells):
            with call_chain(machine, spec.cell_chain):
                cell = machine.malloc(spec.cell_size)
            machine.store(cell, 0, 8)
            cells.append(cell)
        out[label].append((node, cells))
    return out


def chase_structures(
    machine: Machine,
    items: Sequence[Item],
    chase: ChaseSpec,
    work_per_access: float,
    rng: random.Random,
    table: Optional[HeapObject] = None,
) -> None:
    """Chase *items* for ``chase.passes`` passes in a mostly-ordered walk."""
    order = partial_shuffle(list(items), chase.shuffle, rng)
    table_lines = table.size // 64 if table is not None else 0
    for _ in range(chase.passes):
        for index, (node, cells) in enumerate(order):
            # Cell and node accesses alternate (follow the link, read the
            # payload, next link...) — the access shape that makes the
            # cross-context affinity dominate the self-loop weights.
            span = max(1, node.size // 8)
            for slot, cell in enumerate(cells):
                machine.load(cell, 0, 8)
                machine.load(node, (slot * 3 % span) * 8, 8)
            for load in range(len(cells), chase.node_loads):
                machine.load(node, (load * 3 % span) * 8, 8)
            if table is not None and index % chase.table_every == 0:
                machine.load(table, rng.randrange(table_lines) * 64, 8)
            machine.work(
                work_per_access * (len(cells) + max(len(cells), chase.node_loads) + 1)
            )


def release_structures(machine: Machine, groups: dict[str, list[Item]]) -> None:
    """Free every node and cell."""
    for items in groups.values():
        for node, cells in items:
            free_all(machine, [node] + cells)
