"""equake — SPEC CPU2000's earthquake ground-motion simulation.

The real program performs sparse-matrix–vector products over an
unstructured finite-element mesh; the sparse rows are many small
heap-allocated arrays chased each time step.  Most of its data is already
laid out well by allocation order (rows are built and consumed in the same
order), leaving modest headroom — the paper shows equake with some of the
smaller positive bars for both techniques.

Synthetic structure: row headers (32 B) each with three coefficient cells
(16 B), only lightly polluted by mesh-metadata records from the reader, so
the baseline is already decent and gains are small but real.
"""

from __future__ import annotations

import random

from ..machine.machine import Machine
from ..machine.program import Program, ProgramBuilder
from .base import Workload, register
from ._kernel import (
    ChaseSpec,
    StructureSpec,
    allocate_structures,
    chase_structures,
    release_structures,
)

ROW_SIZE = 32
COEF_CELL_SIZE = 16
META_SIZE = 32


@register
class EquakeWorkload(Workload):
    """SPEC CPU2000 equake: sparse FEM kernels."""

    name = "equake"
    suite = "SPEC CPU2000"
    description = "sparse matrix-vector products over an unstructured mesh"
    work_per_access = 1.6

    BASE_ROWS = 9000
    BASE_GHOSTS = 600
    BASE_META = 2000
    PASSES = 8
    TABLE_SIZE = 256 * 1024

    def _build_program(self) -> Program:
        b = ProgramBuilder("equake")
        b.function("malloc", in_main_binary=False)
        self.s_main_mesh = b.call_site("main", "read_mesh")
        self.s_meta_malloc = b.call_site("read_mesh", "malloc", label="mesh metadata")
        self.s_main_smvp = b.call_site("main", "smvp_setup")
        self.s_smvp_row = b.call_site("smvp_setup", "new_row")
        self.s_row_malloc = b.call_site("new_row", "malloc", label="row header")
        self.s_smvp_coef = b.call_site("smvp_setup", "push_coef")
        self.s_coef_malloc = b.call_site("push_coef", "malloc", label="coefficient")
        self.s_main_ghost = b.call_site("main", "add_ghost_rows")
        self.s_ghost_row = b.call_site("add_ghost_rows", "new_row")
        self.s_ghost_coef = b.call_site("add_ghost_rows", "push_coef")
        self.s_main_table = b.call_site("main", "malloc", label="displacement vector")
        return b.build()

    def _execute(self, machine: Machine, rng: random.Random, factor: float) -> None:
        with machine.call(self.s_main_table):
            table = machine.malloc(self.TABLE_SIZE)
        specs = [
            StructureSpec(
                "row",
                self.scaled(self.BASE_ROWS, factor),
                ROW_SIZE,
                [self.s_main_smvp, self.s_smvp_row, self.s_row_malloc],
                cells=3,
                cell_size=COEF_CELL_SIZE,
                cell_chain=[self.s_main_smvp, self.s_smvp_coef, self.s_coef_malloc],
            ),
            StructureSpec(
                "ghost",
                self.scaled(self.BASE_GHOSTS, factor),
                ROW_SIZE,
                [self.s_main_ghost, self.s_ghost_row, self.s_row_malloc],
                cells=3,
                cell_size=COEF_CELL_SIZE,
                cell_chain=[self.s_main_ghost, self.s_ghost_coef, self.s_coef_malloc],
            ),
            StructureSpec(
                "meta",
                self.scaled(self.BASE_META, factor),
                META_SIZE,
                [self.s_main_mesh, self.s_meta_malloc],
            ),
        ]
        groups = allocate_structures(machine, rng, specs)
        chase_structures(
            machine,
            groups["row"],
            ChaseSpec("row", passes=self.PASSES, node_loads=1, shuffle=0.02),
            self.work_per_access,
            rng,
            table=table,
        )
        chase_structures(
            machine,
            groups["ghost"],
            ChaseSpec("ghost", passes=1, node_loads=1, shuffle=0.02),
            self.work_per_access,
            rng,
            table=table,
        )
        release_structures(machine, groups)
        machine.free(table)
