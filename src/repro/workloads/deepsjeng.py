"""deepsjeng — a placement-insensitive control benchmark.

Section 5.2: "for almost all of the SPEC CPU2017 benchmarks we examined
outside of those shown in Figure 13, we find that HALO has essentially no
effect.  Critically, however, its optimisations do not degrade performance
in these cases, but rather simply fail at improving it."  The paper
excludes those benchmarks from its figures for space; this module provides
one such control so that the non-degradation claim is testable.

Modelled on deepsjeng (chess search): the heap is a handful of large,
long-lived tables (transposition table, evaluation caches) that dominate
all memory traffic, plus a trickle of small allocations that are barely
accessed.  Small-object placement is irrelevant, so neither HALO nor the
random 4-pool allocator should move the needle.
"""

from __future__ import annotations

import random

from ..machine.machine import Machine
from ..machine.program import Program, ProgramBuilder
from .base import Workload, register
from .patterns import free_all

TT_SIZE = 2 * 1024 * 1024  # transposition table
PAWN_CACHE_SIZE = 256 * 1024
MOVE_LIST_SIZE = 64


@register
class DeepsjengWorkload(Workload):
    """A CPU2017-style control: big tables, negligible small-object traffic."""

    name = "deepsjeng"
    suite = "SPEC CPU2017 (control)"
    description = "chess search dominated by large hash tables"
    work_per_access = 6.0

    BASE_NODES = 60000
    BASE_MOVE_LISTS = 1500

    def _build_program(self) -> Program:
        b = ProgramBuilder("deepsjeng")
        b.function("malloc", in_main_binary=False)
        self.s_main_tt = b.call_site("main", "malloc", label="transposition table")
        self.s_main_pawn = b.call_site("main", "malloc", label="pawn cache")
        self.s_main_search = b.call_site("main", "search")
        self.s_search_moves = b.call_site("search", "new_move_list")
        self.s_moves_malloc = b.call_site("new_move_list", "malloc", label="move list")
        return b.build()

    def _execute(self, machine: Machine, rng: random.Random, factor: float) -> None:
        with machine.call(self.s_main_tt):
            tt = machine.malloc(TT_SIZE)
        with machine.call(self.s_main_pawn):
            pawn = machine.malloc(PAWN_CACHE_SIZE)
        tt_lines = TT_SIZE // 64
        pawn_lines = PAWN_CACHE_SIZE // 64

        nodes = self.scaled(self.BASE_NODES, factor)
        move_every = max(1, nodes // self.scaled(self.BASE_MOVE_LISTS, factor))
        move_lists: list = []
        with machine.call(self.s_main_search):
            for node in range(nodes):
                # Search node: probe the TT, occasionally the pawn cache.
                machine.load(tt, rng.randrange(tt_lines) * 64, 8)
                if node % 3 == 0:
                    machine.load(pawn, rng.randrange(pawn_lines) * 64, 8)
                machine.work(self.work_per_access * 2)
                # A move list is allocated rarely, touched once, freed soon.
                if node % move_every == 0:
                    with machine.call(self.s_search_moves):
                        with machine.call(self.s_moves_malloc):
                            moves = machine.malloc(MOVE_LIST_SIZE)
                    machine.store(moves, 0, 8)
                    move_lists.append(moves)
                    if len(move_lists) > 8:
                        machine.free(move_lists.pop(0))

        free_all(machine, move_lists)
        machine.free(tt)
        machine.free(pawn)
