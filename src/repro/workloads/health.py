"""health — Olden's hierarchical health-care simulation.

The real benchmark simulates a 4-way tree of villages, each maintaining
linked lists of patients that are chased continually.  The paper reports the
largest wins here: ~21 % speedup for hot-data-streams co-allocation and
~28 % for HALO (Figures 13/14) — HALO's edge coming from full-context
information: patients generated on different simulation paths have very
different access intensity, but share the same ``malloc`` call site inside
``generate_patient``.

Synthetic structure:

* a recursively built village tree (exercises the shadow stack's recursion
  reduction);
* *emergency* patients + their list cells: allocated interleaved with
  everything else, then chased heavily in severity order — a fixed
  permutation of allocation order, as the real benchmark's list reshuffling
  produces (hot);
* *routine* patients + cells from the same allocation functions but a
  different call path: chased rarely (cold);
* both patient kinds share ``generate_patient``'s malloc site and both cell
  kinds share ``list_insert``'s — so site-keyed identification (HDS) can
  pool patients-with-cells but cannot separate hot from cold, while HALO's
  full-context selectors can;
* every visit also consults a large shared treatment table (a single big
  allocation): placement-independent traffic that no layout optimisation
  can remove, and a stream terminator for the HDS trace abstraction.
"""

from __future__ import annotations

import random

from ..machine.machine import Machine
from ..machine.program import Program, ProgramBuilder
from .base import Workload, register
from .patterns import alloc_through, burst_plan, free_all, partial_shuffle

PATIENT_SIZE = 32  # exactly its baseline size class
CELL_SIZE = 16  # exactly its baseline size class
VILLAGE_SIZE = 96
TABLE_SIZE = 512 * 1024  # shared treatment table (never grouped)


@register
class HealthWorkload(Workload):
    """Olden health: linked-list chasing over a village hierarchy."""

    name = "health"
    suite = "Olden"
    description = "hierarchical health-care simulation, pointer-chasing heavy"
    work_per_access = 0.4  # strongly memory-bound

    BASE_HOT = 9000  # emergency admissions at ref scale
    BASE_COLD = 3500  # routine admissions at ref scale (share the hot sites)
    BASE_VISITS = 14000  # administrative visit records (own site, never chased)
    HOT_PASSES = 10
    COLD_PASSES = 1
    SHUFFLE_FRACTION = 0.05  # list-churn: fraction of traversal transpositions
    ALLOC_BURST = 1  # consecutive same-kind admissions per burst
    CELLS_PER_PATIENT = 3  # waiting / assessment / inside lists
    TABLE_EVERY = 4  # treatment-table lookup frequency (1 per N visits)

    def _build_program(self) -> Program:
        b = ProgramBuilder("health")
        b.function("malloc", in_main_binary=False)
        # Village tree construction (recursive).
        self.s_main_build = b.call_site("main", "build_tree", label="build villages")
        self.s_build_rec = b.call_site("build_tree", "build_tree", label="recurse")
        self.s_build_malloc = b.call_site("build_tree", "malloc", label="village")
        # The shared treatment table.
        self.s_main_table = b.call_site("main", "malloc", label="treatment table")
        # Simulation paths.
        self.s_main_sim = b.call_site("main", "sim_step", label="simulation loop")
        self.s_sim_emerg = b.call_site("sim_step", "emergency_arrivals")
        self.s_sim_routine = b.call_site("sim_step", "routine_checkups")
        # Shared allocation helpers (the full-context crux).
        self.s_emerg_patient = b.call_site("emergency_arrivals", "generate_patient")
        self.s_routine_patient = b.call_site("routine_checkups", "generate_patient")
        self.s_patient_malloc = b.call_site("generate_patient", "malloc", label="patient")
        self.s_emerg_insert = b.call_site("emergency_arrivals", "list_insert")
        self.s_routine_insert = b.call_site("routine_checkups", "list_insert")
        self.s_insert_malloc = b.call_site("list_insert", "malloc", label="list cell")
        # Administrative visit records: own allocation sites, never chased.
        self.s_sim_visit = b.call_site("sim_step", "record_visit")
        self.s_visit_malloc = b.call_site("record_visit", "malloc", label="visit record")
        self.s_visit_note = b.call_site("record_visit", "malloc", label="visit note")
        return b.build()

    def _execute(self, machine: Machine, rng: random.Random, factor: float) -> None:
        villages = self._build_villages(machine, depth=3)
        with machine.call(self.s_main_table):
            table = machine.malloc(TABLE_SIZE)

        n_hot = self.scaled(self.BASE_HOT, factor)
        n_cold = self.scaled(self.BASE_COLD, factor)
        n_visits = self.scaled(self.BASE_VISITS, factor)
        hot_pairs, cold_pairs, visits = self._simulate(machine, rng, n_hot, n_cold, n_visits)

        # Patients are treated mostly in admission order, with some churn
        # from severity-driven list reordering (the real benchmark moves
        # patients between waiting/assessment/inside lists).
        severity_order = partial_shuffle(hot_pairs, self.SHUFFLE_FRACTION, rng)
        audit_order = partial_shuffle(cold_pairs, self.SHUFFLE_FRACTION, rng)

        for _ in range(self.HOT_PASSES):
            self._treat(machine, severity_order, table, rng)
        for _ in range(self.COLD_PASSES):
            self._treat(machine, audit_order, table, rng)

        for patient, cells in hot_pairs + cold_pairs:
            free_all(machine, [patient] + cells)
        for record, note in visits:
            machine.free(record)
            machine.free(note)
        free_all(machine, villages)
        machine.free(table)

    # -- construction -----------------------------------------------------

    def _build_villages(self, machine: Machine, depth: int) -> list:
        """Recursive 4-way village construction (reduced-context stress)."""
        villages: list = []
        with machine.call(self.s_main_build):
            self._build_subtree(machine, depth, villages)
        return villages

    def _build_subtree(self, machine: Machine, depth: int, villages: list) -> None:
        with machine.call(self.s_build_malloc):
            village = machine.malloc(VILLAGE_SIZE)
        machine.store(village, 0, 8)
        villages.append(village)
        if depth > 0:
            for _ in range(4):
                with machine.call(self.s_build_rec):
                    self._build_subtree(machine, depth - 1, villages)

    # -- simulation --------------------------------------------------------

    def _simulate(
        self, machine: Machine, rng: random.Random, n_hot: int, n_cold: int, n_visits: int
    ):
        """Allocate patients+cells along both paths in interleaved order.

        Visit records share the patient/cell size classes but come from
        their own sites — pollution both HDS and HALO can exclude, but the
        baseline co-locates with patients by allocation order.
        """
        hot_pairs: list = []
        cold_pairs: list = []
        visits: list = []
        burst = self.ALLOC_BURST
        plan = burst_plan(
            rng,
            [("hot", n_hot, burst), ("cold", n_cold, burst), ("visit", n_visits, burst)],
        )
        with machine.call(self.s_main_sim):
            for kind in plan:
                if kind == "hot":
                    pair = self._admit(
                        machine, self.s_sim_emerg, self.s_emerg_patient, self.s_emerg_insert
                    )
                    hot_pairs.append(pair)
                elif kind == "cold":
                    pair = self._admit(
                        machine, self.s_sim_routine, self.s_routine_patient, self.s_routine_insert
                    )
                    cold_pairs.append(pair)
                else:
                    with machine.call(self.s_sim_visit):
                        record = alloc_through(
                            machine, [self.s_visit_malloc], PATIENT_SIZE
                        )
                        machine.store(record, 0, 8)
                        note = alloc_through(machine, [self.s_visit_note], CELL_SIZE)
                        machine.store(note, 0, 8)
                    visits.append((record, note))
        return hot_pairs, cold_pairs, visits

    def _admit(self, machine: Machine, path_site, patient_site, insert_site):
        """One admission: the patient record plus its three list cells.

        Patients sit in the village's waiting, assessment and inside lists
        simultaneously, so each admission allocates one cell per list.
        """
        with machine.call(path_site):
            patient = alloc_through(
                machine, [patient_site, self.s_patient_malloc], PATIENT_SIZE
            )
            machine.store(patient, 0, 8)  # initialise vitals
            cells = []
            for _ in range(self.CELLS_PER_PATIENT):
                cell = alloc_through(
                    machine, [insert_site, self.s_insert_malloc], CELL_SIZE
                )
                machine.store(cell, 0, 8)  # link into list
                cells.append(cell)
        return (patient, cells)

    # -- treatment ----------------------------------------------------------

    def _treat(self, machine: Machine, order, table, rng: random.Random) -> None:
        """One pass over a patient list: cells → patient → treatment lookup."""
        table_lines = TABLE_SIZE // 64
        for index, (patient, cells) in enumerate(order):
            for cell in cells:
                machine.load(cell, 0, 8)  # walk the list links
            machine.load(patient, 0, 8)  # vitals
            machine.load(patient, 24, 8)  # condition
            if index % self.TABLE_EVERY == 0:
                machine.load(table, rng.randrange(table_lines) * 64, 8)
            machine.work(self.work_per_access * (len(cells) + 3))
