"""ammp — SPEC CPU2000's molecular-dynamics simulation.

The real program integrates molecular mechanics over atom records linked by
non-bonded neighbour lists; the inner force loop chases atoms and their
neighbour nodes.  Objects are larger than in the pointer-chasing
benchmarks (an ``ATOM`` is hundreds of bytes in the original), which
moderates how much any placement technique can win per line — the paper's
Figure 13/14 bars for ammp are mid-pack, with HDS and HALO close together.

Synthetic structure: atom records (96 B) with two neighbour cells each,
interleaved with residue-label records from the input reader (same size
class — pollution), plus a few solvent atoms from a setup path (the small
site-shared cold fraction).
"""

from __future__ import annotations

import random

from ..machine.machine import Machine
from ..machine.program import Program, ProgramBuilder
from .base import Workload, register
from ._kernel import (
    ChaseSpec,
    StructureSpec,
    allocate_structures,
    chase_structures,
    release_structures,
)

ATOM_SIZE = 96
NEIGHBOUR_CELL_SIZE = 32
RESIDUE_SIZE = 96


@register
class AmmpWorkload(Workload):
    """SPEC CPU2000 ammp: molecular dynamics with neighbour lists."""

    name = "ammp"
    suite = "SPEC CPU2000"
    description = "molecular dynamics force loops over atom/neighbour records"
    work_per_access = 1.4

    BASE_ATOMS = 6500
    BASE_SOLVENT = 700
    BASE_RESIDUES = 5000
    BASE_BONDS = 7000
    PASSES = 8
    TABLE_SIZE = 256 * 1024

    def _build_program(self) -> Program:
        b = ProgramBuilder("ammp")
        b.function("malloc", in_main_binary=False)
        self.s_main_read = b.call_site("main", "read_molecule")
        self.s_residue_malloc = b.call_site("read_molecule", "malloc", label="residue")
        self.s_bond_malloc = b.call_site("read_molecule", "malloc", label="bond record")
        self.s_main_md = b.call_site("main", "md_loop")
        self.s_md_atom = b.call_site("md_loop", "atom_alloc")
        self.s_atom_malloc = b.call_site("atom_alloc", "malloc", label="atom")
        self.s_md_nonbond = b.call_site("md_loop", "nonbond_link")
        self.s_nonbond_malloc = b.call_site("nonbond_link", "malloc", label="neighbour")
        self.s_main_solvent = b.call_site("main", "add_solvent")
        self.s_solvent_atom = b.call_site("add_solvent", "atom_alloc")
        self.s_solvent_nonbond = b.call_site("add_solvent", "nonbond_link")
        self.s_main_table = b.call_site("main", "malloc", label="force table")
        return b.build()

    def _execute(self, machine: Machine, rng: random.Random, factor: float) -> None:
        with machine.call(self.s_main_table):
            table = machine.malloc(self.TABLE_SIZE)
        specs = [
            StructureSpec(
                "atom",
                self.scaled(self.BASE_ATOMS, factor),
                ATOM_SIZE,
                [self.s_main_md, self.s_md_atom, self.s_atom_malloc],
                cells=2,
                cell_size=NEIGHBOUR_CELL_SIZE,
                cell_chain=[self.s_main_md, self.s_md_nonbond, self.s_nonbond_malloc],
            ),
            StructureSpec(
                "solvent",
                self.scaled(self.BASE_SOLVENT, factor),
                ATOM_SIZE,
                [self.s_main_solvent, self.s_solvent_atom, self.s_atom_malloc],
                cells=2,
                cell_size=NEIGHBOUR_CELL_SIZE,
                cell_chain=[self.s_main_solvent, self.s_solvent_nonbond, self.s_nonbond_malloc],
            ),
            StructureSpec(
                "residue",
                self.scaled(self.BASE_RESIDUES, factor),
                RESIDUE_SIZE,
                [self.s_main_read, self.s_residue_malloc],
            ),
            StructureSpec(
                "bond",
                self.scaled(self.BASE_BONDS, factor),
                NEIGHBOUR_CELL_SIZE,
                [self.s_main_read, self.s_bond_malloc],
            ),
        ]
        groups = allocate_structures(machine, rng, specs)
        chase_structures(
            machine,
            groups["atom"],
            ChaseSpec("atom", passes=self.PASSES, node_loads=3),
            self.work_per_access,
            rng,
            table=table,
        )
        chase_structures(
            machine,
            groups["solvent"],
            ChaseSpec("solvent", passes=1, node_loads=3),
            self.work_per_access,
            rng,
            table=table,
        )
        release_structures(machine, groups)
        machine.free(table)
