"""Profiling substrate: shadow-stack contexts, affinity queue/graph (Pin stand-in)."""

from .affinity import AffinityParams, AffinityRecorder
from .graph import AffinityGraph, edge_key
from .profiler import ContextStats, PIN_SLOWDOWN_ESTIMATE, Profiler, ProfileResult
from .serialize import (
    ProfileFormatError,
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)
from .shadow import Chain, ContextTable, reduce_frames, reduced_context, shadow_frames

__all__ = [
    "AffinityGraph",
    "AffinityParams",
    "AffinityRecorder",
    "Chain",
    "ContextStats",
    "ContextTable",
    "PIN_SLOWDOWN_ESTIMATE",
    "ProfileFormatError",
    "ProfileResult",
    "Profiler",
    "edge_key",
    "load_profile",
    "profile_from_dict",
    "profile_to_dict",
    "save_profile",
    "reduce_frames",
    "reduced_context",
    "shadow_frames",
]
