"""Shadow-stack context formation (paper Section 4.1).

The Pin tool "maintains a shadow stack that differs from the true call stack
by design":

* an entry is added only if the call target is statically linked into the
  main binary, or is one of a handful of externally traceable routines like
  ``malloc`` or ``free``;
* recorded call sites are traced back to their nearest point of origin in
  the main executable (so linker stubs and library code never appear);
* stacks containing recursive calls are reduced to a canonical form in which
  only the most recent of any (function, call site) pair is retained.

A *context* is the tuple of recorded call-site addresses, outermost first.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..machine.program import CallSite, Program

Chain = tuple[int, ...]


def shadow_frames(program: Program, stack: Sequence[CallSite]) -> list[tuple[str, int]]:
    """Compute shadow-stack frames for the true call *stack*.

    Returns (callee function name, recorded call-site address) pairs,
    outermost first, after applying the linkage filter and the
    origin-tracing rule (but before recursion reduction).
    """
    frames: list[tuple[str, int]] = []
    functions = program.functions
    for index, site in enumerate(stack):
        callee = functions[site.callee]
        if not (callee.in_main_binary or callee.traceable):
            continue
        if functions[site.caller].in_main_binary:
            recorded = site.addr
        else:
            recorded = _nearest_main_origin(program, stack, index)
            if recorded is None:
                # No main-executable ancestor at all (e.g. a library thread
                # root): fall back to the raw site so the frame is not lost.
                recorded = site.addr
        frames.append((site.callee, recorded))
    return frames


def _nearest_main_origin(
    program: Program, stack: Sequence[CallSite], index: int
) -> Optional[int]:
    """Walk outward from *index* to the closest call made from main-binary code."""
    functions = program.functions
    for outer in range(index - 1, -1, -1):
        site = stack[outer]
        if functions[site.caller].in_main_binary:
            return site.addr
    return None


def reduce_frames(frames: Sequence[tuple[str, int]]) -> list[tuple[str, int]]:
    """Canonical 'reduced' form: keep only the most recent of each pair.

    This collapses recursion "to avoid overfitting without imposing any
    fixed size constraints" — a stack A→B→A→B keeps one A frame and one B
    frame, the most recent of each.
    """
    seen: set[tuple[str, int]] = set()
    kept_reversed: list[tuple[str, int]] = []
    for frame in reversed(frames):
        if frame in seen:
            continue
        seen.add(frame)
        kept_reversed.append(frame)
    kept_reversed.reverse()
    return kept_reversed


def reduced_context(program: Program, stack: Sequence[CallSite]) -> Chain:
    """The allocation context for the current true call *stack*."""
    frames = reduce_frames(shadow_frames(program, stack))
    return tuple(addr for _, addr in frames)


class ContextTable:
    """Interns context chains to dense integer ids.

    Dense ids keep the affinity graph and grouping structures compact and
    give contexts a stable, deterministic ordering.
    """

    def __init__(self) -> None:
        self._ids: dict[Chain, int] = {}
        self._chains: list[Chain] = []

    def intern(self, chain: Chain) -> int:
        """Return the id for *chain*, assigning one if new."""
        cid = self._ids.get(chain)
        if cid is None:
            cid = len(self._chains)
            self._ids[chain] = cid
            self._chains.append(chain)
        return cid

    def chain(self, cid: int) -> Chain:
        """The call-site chain for context *cid* (outermost first)."""
        return self._chains[cid]

    def lookup(self, chain: Chain) -> Optional[int]:
        """The id of *chain* if it has been interned."""
        return self._ids.get(chain)

    def describe(self, cid: int, program: Program) -> str:
        """Human-readable rendering of a context."""
        parts = [program.describe_site(addr) for addr in self._chains[cid]]
        return " > ".join(parts) if parts else "<empty>"

    def __len__(self) -> int:
        return len(self._chains)

    def __iter__(self):
        return iter(range(len(self._chains)))
