"""The affinity queue and graph recorder (paper Section 4.1, Figure 5).

The queue holds the most recently accessed heap objects, implicitly sized by
the *affinity distance* A: two accesses are affinitive when the sizes of the
queue entries between them sum to less than A bytes.  Every recorded access
traverses the queue and increments affinity-graph edges, subject to the four
constraints spelled out in the paper:

Deduplication
    consecutive machine-level accesses to one object form a single
    macro-level access and do not re-trigger traversal;
No self-affinity
    an object is never affinitive with itself;
No double counting
    each unique object is affinitive with the new access at most once per
    traversal;
Co-allocatability
    no allocation chronologically between the two objects may originate
    from either of their contexts — otherwise a shared pool could not have
    placed the pair contiguously at runtime.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from .graph import AffinityGraph


@dataclass(frozen=True)
class AffinityParams:
    """Profiling parameters.

    Attributes:
        distance: The affinity distance A in bytes (paper default 128,
            selected via the Figure 12 sweep).
        max_object_size: Objects at or above this size are tracked in the
            queue (they consume window space and access counts) but never
            form edges — the specialised allocator will not group them
            (evaluation uses a maximum grouped-object size of 4 KiB).
        node_coverage: Fraction of accesses the kept graph nodes must cover
            (Section 4.1 uses 90 %).
        enforce_co_allocatability: Ablation switch for the fourth queue
            constraint.  Disabling it admits edges between objects that a
            shared pool could never have placed contiguously — useful for
            quantifying how much the constraint contributes.
    """

    distance: int = 128
    max_object_size: int = 4096
    node_coverage: float = 0.90
    enforce_co_allocatability: bool = True

    def __post_init__(self) -> None:
        if self.distance <= 0:
            raise ValueError(f"affinity distance must be positive, got {self.distance}")
        if self.max_object_size <= 0:
            raise ValueError(
                f"max object size must be positive, got {self.max_object_size}"
            )
        if not 0.0 < self.node_coverage <= 1.0:
            raise ValueError(f"node coverage must be in (0, 1], got {self.node_coverage}")


class AffinityRecorder:
    """Builds an :class:`AffinityGraph` from an object-level access stream.

    Implementation note: the queue of Figure 5 is represented as an ordered
    map from object id to its *most recent* access, plus a cumulative byte
    counter.  The two representations are equivalent — an object is
    affinitive with the new access iff the access bytes after its most
    recent occurrence sum to less than A, and the no-double-counting rule
    considers each object once per traversal anyway — but the uniqued form
    makes traversal cost proportional to *distinct* objects in the window,
    which keeps large affinity distances (the Figure 12 sweep reaches 2^17)
    tractable.
    """

    def __init__(self, params: AffinityParams | None = None) -> None:
        self.params = params or AffinityParams()
        # Hot-loop constants, hoisted out of record_access (params is frozen).
        self._distance = self.params.distance
        self._enforce_coalloc = self.params.enforce_co_allocatability
        self.graph = AffinityGraph()
        # Most-recent access per object: oid -> (cid, alloc seq,
        # cumulative bytes *after* the access, groupable).  Insertion order
        # is access recency (oldest first).
        self._window: dict[int, tuple[int, int, int, bool]] = {}
        self._total_bytes = 0
        self._last_oid: int | None = None
        # Object metadata: oid -> (cid, alloc seq, groupable).
        self._objects: dict[int, tuple[int, int, bool]] = {}
        # Ascending allocation sequence numbers per context (append-only).
        self._alloc_seqs: dict[int, list[int]] = {}

    # -- allocation bookkeeping -------------------------------------------

    def on_alloc(self, oid: int, cid: int, size: int, alloc_seq: int) -> None:
        """Register a new heap object allocated from context *cid*."""
        groupable = size < self.params.max_object_size
        self._objects[oid] = (cid, alloc_seq, groupable)
        self._alloc_seqs.setdefault(cid, []).append(alloc_seq)

    # -- access recording ---------------------------------------------------

    def record_access(self, oid: int, nbytes: int) -> None:
        """Feed one machine-level heap access through the affinity queue.

        The hottest profiling function: every heap access of every profiled
        workload passes through here.  Attribute loads are hoisted to
        locals and the window trim is inlined.
        """
        if oid == self._last_oid:
            return  # deduplication: same macro-level access
        self._last_oid = oid
        info = self._objects.get(oid)
        if info is None:
            return  # object allocated before profiling attached; ignore
        cid, alloc_seq, groupable = info
        graph = self.graph
        node_accesses = graph.node_accesses
        node_accesses[cid] = node_accesses.get(cid, 0) + 1
        graph.total_accesses += 1
        distance = self._distance
        edges = graph.edges
        window = self._window
        now = self._total_bytes
        co_allocatable = self._co_allocatable
        for v_oid in reversed(window):
            v_cid, v_seq, v_after, v_groupable = window[v_oid]
            if now - v_after >= distance:
                break  # everything older is out of the window too
            if v_oid == oid:
                continue  # no self-affinity
            if (
                groupable
                and v_groupable
                and co_allocatable(cid, alloc_seq, v_cid, v_seq)
            ):
                key = (cid, v_cid) if cid <= v_cid else (v_cid, cid)
                edges[key] = edges.get(key, 0.0) + 1.0
        # Record (or refresh) this object's position in the window.
        window.pop(oid, None)
        now += nbytes
        self._total_bytes = now
        window[oid] = (cid, alloc_seq, now, groupable)
        # Trim entries that can never be affinitive again (inlined _trim).
        while window:
            oldest = next(iter(window))
            if now - window[oldest][2] >= distance:
                del window[oldest]
            else:
                break

    def _trim(self) -> None:
        """Drop window entries that can never be affinitive again."""
        distance = self._distance
        window = self._window
        now = self._total_bytes
        while window:
            oldest = next(iter(window))
            if now - window[oldest][2] >= distance:
                del window[oldest]
            else:
                break

    def _co_allocatable(self, ctx_a: int, seq_a: int, ctx_b: int, seq_b: int) -> bool:
        """Could a shared pool have placed the two objects contiguously?

        True iff no allocation strictly between the two (chronologically)
        originated from either context.
        """
        if not self._enforce_coalloc:
            return True
        lo, hi = (seq_a, seq_b) if seq_a <= seq_b else (seq_b, seq_a)
        for ctx in (ctx_a, ctx_b) if ctx_a != ctx_b else (ctx_a,):
            seqs = self._alloc_seqs.get(ctx)
            if not seqs:
                continue
            index = bisect_right(seqs, lo)
            if index < len(seqs) and seqs[index] < hi:
                return False
        return True

    # -- results -------------------------------------------------------------

    def filtered_graph(self) -> AffinityGraph:
        """The affinity graph after the 90 % node-coverage filter."""
        return self.graph.filtered_by_coverage(self.params.node_coverage)

    @property
    def queue_length(self) -> int:
        """Distinct objects currently in the affinity window."""
        return len(self._window)

    @property
    def total_access_bytes(self) -> int:
        """Cumulative bytes of all recorded macro accesses."""
        return self._total_bytes
