"""The pairwise affinity graph (paper Section 4.1).

Nodes are reduced allocation contexts; edge weights count contemporaneous
accesses to objects allocated from the two contexts within the affinity
window, subject to the recorder's constraints.  Self-loop edges (two
distinct objects from the same context) are first-class: the grouping score
function (paper Figure 7) treats loops specially.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

EdgeKey = tuple[int, int]


def edge_key(a: int, b: int) -> EdgeKey:
    """Canonical unordered key for the edge between contexts *a* and *b*."""
    return (a, b) if a <= b else (b, a)


@dataclass
class AffinityGraph:
    """Weighted undirected multigraph-free affinity graph.

    Attributes:
        node_accesses: macro-access count per context id.
        edges: canonicalised (lo, hi) context pair -> affinity weight.
        total_accesses: all macro accesses observed during profiling,
            including those of later-filtered nodes.  Paper Figure 6 uses
            this ("graph.accesses") to threshold group weight.
    """

    node_accesses: dict[int, int] = field(default_factory=dict)
    edges: dict[EdgeKey, float] = field(default_factory=dict)
    total_accesses: int = 0

    # -- basic queries ----------------------------------------------------

    @property
    def nodes(self) -> set[int]:
        return set(self.node_accesses)

    def weight(self, a: int, b: int) -> float:
        """Edge weight between *a* and *b* (0 when absent)."""
        return self.edges.get(edge_key(a, b), 0.0)

    def accesses_of(self, node: int) -> int:
        """Macro-access count recorded for *node*."""
        return self.node_accesses.get(node, 0)

    def add_access(self, node: int, count: int = 1) -> None:
        """Record *count* macro accesses attributed to *node*."""
        self.node_accesses[node] = self.node_accesses.get(node, 0) + count
        self.total_accesses += count

    def add_edge_weight(self, a: int, b: int, weight: float = 1.0) -> None:
        """Add *weight* to the (a, b) edge, creating it if needed."""
        key = edge_key(a, b)
        self.edges[key] = self.edges.get(key, 0.0) + weight

    def edges_of(self, node: int) -> Iterator[tuple[EdgeKey, float]]:
        """All edges incident to *node* (including its self-loop)."""
        for key, weight in self.edges.items():
            if node in key:
                yield key, weight

    # -- transformations ---------------------------------------------------

    def filtered_by_coverage(self, coverage: float = 0.90) -> "AffinityGraph":
        """Drop cold nodes per Section 4.1.

        Nodes are visited from most- to least-accessed; once *coverage* of
        all observed accesses is accounted for, the remaining nodes are
        discarded ("this helps to reduce noise by eliminating extraneous
        contexts").  ``total_accesses`` is preserved from the full graph.
        """
        if not 0.0 < coverage <= 1.0:
            raise ValueError(f"coverage must be in (0, 1], got {coverage}")
        ordered = sorted(self.node_accesses.items(), key=lambda kv: (-kv[1], kv[0]))
        kept: set[int] = set()
        running = 0
        threshold = coverage * self.total_accesses
        for node, accesses in ordered:
            if running >= threshold:
                break
            kept.add(node)
            running += accesses
        return self.induced(kept, total_accesses=self.total_accesses)

    def filtered_by_min_weight(self, min_weight: float) -> "AffinityGraph":
        """Drop edges lighter than *min_weight* (Figure 6's first step)."""
        graph = AffinityGraph(
            node_accesses=dict(self.node_accesses),
            edges={k: w for k, w in self.edges.items() if w >= min_weight},
            total_accesses=self.total_accesses,
        )
        return graph

    def induced(self, nodes: Iterable[int], total_accesses: int | None = None) -> "AffinityGraph":
        """Subgraph induced on *nodes*."""
        keep = set(nodes)
        return AffinityGraph(
            node_accesses={n: a for n, a in self.node_accesses.items() if n in keep},
            edges={
                (a, b): w for (a, b), w in self.edges.items() if a in keep and b in keep
            },
            total_accesses=self.total_accesses if total_accesses is None else total_accesses,
        )

    def to_networkx(self):
        """Export as a ``networkx.Graph`` (loops included) for clustering/plots."""
        import networkx as nx

        graph = nx.Graph()
        for node, accesses in self.node_accesses.items():
            graph.add_node(node, accesses=accesses)
        for (a, b), weight in self.edges.items():
            graph.add_edge(a, b, weight=weight)
        return graph

    def __len__(self) -> int:
        return len(self.node_accesses)
