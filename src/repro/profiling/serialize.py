"""Profile serialisation: persist a profiling run, optimise later.

The real HALO pipeline is split across processes — the Pin tool writes its
model to disk and the offline analysis reads it back.  This module provides
that boundary: :func:`profile_to_dict` captures everything the grouping and
identification stages need (affinity graph, context chains, per-context
statistics), and :func:`profile_from_dict` reconstitutes a
:class:`~repro.profiling.profiler.ProfileResult` against the target
program.

Object-level data (the reference trace and per-object maps consumed by the
hot-data-streams baseline) is included only when present and requested —
it dominates the file size.
"""

from __future__ import annotations

import json

from ..machine.program import Program
from .affinity import AffinityParams
from .graph import AffinityGraph
from .profiler import ContextStats, ProfileResult
from .shadow import ContextTable

FORMAT_VERSION = 1


class ProfileFormatError(Exception):
    """Raised when deserialising a malformed or mismatched profile."""


def profile_to_dict(profile: ProfileResult, include_trace: bool = False) -> dict:
    """Serialise *profile* to a JSON-compatible dict."""
    data = {
        "version": FORMAT_VERSION,
        "program": profile.program.name,
        "params": {
            "distance": profile.params.distance,
            "max_object_size": profile.params.max_object_size,
            "node_coverage": profile.params.node_coverage,
            "enforce_co_allocatability": profile.params.enforce_co_allocatability,
        },
        "contexts": [list(profile.contexts.chain(cid)) for cid in profile.contexts],
        "graph": _graph_to_dict(profile.graph),
        "full_graph": _graph_to_dict(profile.full_graph),
        "context_stats": {
            str(cid): [s.allocs, s.bytes_allocated, s.max_object_size, s.frees]
            for cid, s in profile.context_stats.items()
        },
        "total_accesses": profile.total_accesses,
        "machine_accesses": profile.machine_accesses,
    }
    if include_trace and profile.trace is not None:
        data["trace"] = list(profile.trace)
        data["object_context"] = {str(k): v for k, v in profile.object_context.items()}
        data["object_site"] = {str(k): v for k, v in profile.object_site.items()}
        data["object_sizes"] = {str(k): v for k, v in profile.object_sizes.items()}
    return data


def _graph_to_dict(graph: AffinityGraph) -> dict:
    return {
        "nodes": {str(cid): count for cid, count in graph.node_accesses.items()},
        "edges": [[a, b, w] for (a, b), w in graph.edges.items()],
        "total_accesses": graph.total_accesses,
    }


def _graph_from_dict(data: dict) -> AffinityGraph:
    return AffinityGraph(
        node_accesses={int(cid): count for cid, count in data["nodes"].items()},
        edges={(a, b): w for a, b, w in data["edges"]},
        total_accesses=data["total_accesses"],
    )


def profile_from_dict(data: dict, program: Program) -> ProfileResult:
    """Rebuild a :class:`ProfileResult` from :func:`profile_to_dict` output.

    *program* must be the same program the profile was recorded against
    (matched by name); the chains reference its call-site addresses.
    """
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise ProfileFormatError(f"unsupported profile version {version!r}")
    if data.get("program") != program.name:
        raise ProfileFormatError(
            f"profile was recorded for {data.get('program')!r}, not {program.name!r}"
        )

    contexts = ContextTable()
    for chain in data["contexts"]:
        contexts.intern(tuple(chain))

    params = AffinityParams(**data["params"])
    stats = {
        int(cid): ContextStats(allocs=a, bytes_allocated=b, max_object_size=m, frees=f)
        for cid, (a, b, m, f) in data["context_stats"].items()
    }
    return ProfileResult(
        program=program,
        params=params,
        graph=_graph_from_dict(data["graph"]),
        full_graph=_graph_from_dict(data["full_graph"]),
        contexts=contexts,
        context_stats=stats,
        object_context={int(k): v for k, v in data.get("object_context", {}).items()},
        object_site={int(k): v for k, v in data.get("object_site", {}).items()},
        object_sizes={int(k): v for k, v in data.get("object_sizes", {}).items()},
        trace=list(data["trace"]) if "trace" in data else None,
        total_accesses=data["total_accesses"],
        machine_accesses=data["machine_accesses"],
    )


def save_profile(profile: ProfileResult, path, include_trace: bool = False) -> None:
    """Write *profile* to *path* as JSON."""
    with open(path, "w") as handle:
        json.dump(profile_to_dict(profile, include_trace), handle)


def load_profile(path, program: Program) -> ProfileResult:
    """Read a profile written by :func:`save_profile`."""
    with open(path) as handle:
        return profile_from_dict(json.load(handle), program)
