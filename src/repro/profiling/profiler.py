"""The profiling listener: this reproduction's stand-in for the Pin tool.

Attach a :class:`Profiler` to a :class:`~repro.machine.machine.Machine` and
run a workload; it reconstructs allocation contexts from the live call stack
(shadow-stack rules of Section 4.1), feeds every heap access through the
affinity queue, and optionally records the object-level reference trace that
the hot-data-streams comparison technique needs.

The paper reports profiling slowdowns of "up to 500×" with no sampling; the
profiler reports an analogous estimated overhead factor for its run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..machine.events import Listener
from ..machine.heap import HeapObject
from ..machine.machine import Machine
from ..machine.program import Program
from .. import obs
from .affinity import AffinityParams, AffinityRecorder
from .graph import AffinityGraph
from .shadow import ContextTable, reduced_context


@dataclass
class ContextStats:
    """Per-context allocation statistics gathered during profiling."""

    allocs: int = 0
    bytes_allocated: int = 0
    max_object_size: int = 0
    frees: int = 0


@dataclass
class ProfileResult:
    """Everything downstream stages consume.

    Attributes:
        program: The profiled program.
        params: Profiling parameters used.
        graph: The noise-filtered affinity graph (90 % coverage).
        full_graph: The unfiltered graph (for diagnostics/ablations).
        contexts: Context-id interning table.
        context_stats: Per-context allocation statistics.
        object_context: oid -> context id, for every profiled allocation.
        object_site: oid -> immediate allocation call site — the *raw*
            innermost call site on the true stack, with no origin tracing.
            This is the identification key of the HDS baseline, and the
            reason it cannot see through wrapper functions (Section 5.2).
        object_sizes: oid -> size in bytes.
        trace: Object-level reference trace (macro accesses), present only
            when trace recording was requested.
        total_accesses: Macro-level heap accesses observed.
        machine_accesses: Machine-level heap accesses observed.
    """

    program: Program
    params: AffinityParams
    graph: AffinityGraph
    full_graph: AffinityGraph
    contexts: ContextTable
    context_stats: dict[int, ContextStats]
    object_context: dict[int, int]
    object_site: dict[int, Optional[int]]
    object_sizes: dict[int, int]
    trace: Optional[list[int]]
    total_accesses: int
    machine_accesses: int

    def describe_context(self, cid: int) -> str:
        """Render context *cid* using the profiled program's symbols."""
        return self.contexts.describe(cid, self.program)

    def immediate_site_of_context(self, cid: int) -> Optional[int]:
        """Innermost recorded call site of a context (HDS identification key)."""
        chain = self.contexts.chain(cid)
        return chain[-1] if chain else None


#: Rough slowdown of the paper's unoptimised Pin instrumentation.
PIN_SLOWDOWN_ESTIMATE = 500.0


class Profiler(Listener):
    """Machine listener that builds a :class:`ProfileResult`."""

    def __init__(
        self,
        program: Program,
        params: AffinityParams | None = None,
        record_trace: bool = False,
    ) -> None:
        self.program = program
        self.params = params or AffinityParams()
        self.contexts = ContextTable()
        self.recorder = AffinityRecorder(self.params)
        self.context_stats: dict[int, ContextStats] = {}
        self.object_context: dict[int, int] = {}
        self.object_site: dict[int, Optional[int]] = {}
        self.object_sizes: dict[int, int] = {}
        self.trace: Optional[list[int]] = [] if record_trace else None
        self._last_trace_oid: Optional[int] = None
        self._next_breaker = -1
        self.machine_accesses = 0
        #: Deepest shadow call stack seen at an allocation (observability).
        self.max_stack_depth = 0

    # -- listener hooks -----------------------------------------------------

    def on_alloc(self, machine: Machine, obj: HeapObject) -> None:
        if len(machine.stack) > self.max_stack_depth:
            self.max_stack_depth = len(machine.stack)
        chain = reduced_context(self.program, machine.stack)
        cid = self.contexts.intern(chain)
        self.object_context[obj.oid] = cid
        self.object_site[obj.oid] = machine.stack[-1].addr if machine.stack else None
        self.object_sizes[obj.oid] = obj.size
        stats = self.context_stats.get(cid)
        if stats is None:
            stats = self.context_stats[cid] = ContextStats()
        stats.allocs += 1
        stats.bytes_allocated += obj.size
        if obj.size > stats.max_object_size:
            stats.max_object_size = obj.size
        self.recorder.on_alloc(obj.oid, cid, obj.size, obj.alloc_seq)

    def on_free(self, machine: Machine, obj: HeapObject) -> None:
        cid = self.object_context.get(obj.oid)
        if cid is not None:
            self.context_stats[cid].frees += 1

    def on_access(
        self, machine: Machine, obj: HeapObject, offset: int, size: int, is_store: bool
    ) -> None:
        self.machine_accesses += 1
        if self.trace is not None and obj.oid != self._last_trace_oid:
            # The HDS trace is macro-level too (Section 5.1 replicates the
            # original paper, whose trace abstraction collapses consecutive
            # references to one object).  Accesses to large objects act as
            # *stream terminators* — Section 5.2: "large, widely accessed
            # objects ... cause almost any access pattern in which they are
            # present ... to immediately terminate" — modelled as unique
            # sentinel symbols no grammar rule can span.
            if obj.size >= self.params.max_object_size:
                self.trace.append(self._next_breaker)
                self._next_breaker -= 1
            else:
                self.trace.append(obj.oid)
            self._last_trace_oid = obj.oid
        self.recorder.record_access(obj.oid, size)

    # -- results --------------------------------------------------------------

    def result(self) -> ProfileResult:
        """Finalise profiling and return the collected profile.

        Also the ``profile.*`` observability harvest point: everything is
        folded from stats this listener already gathered, so the per-event
        hooks stay uninstrumented.
        """
        full_graph = self.recorder.graph
        if obs.active_registry() is not None:
            graph = self.recorder.filtered_graph()
            labels = {"program": self.program.name}
            obs.inc("profile.runs", 1, **labels)
            obs.inc("profile.contexts", len(self.contexts), **labels)
            obs.inc("profile.graph_nodes", len(graph), **labels)
            obs.inc("profile.graph_edges", len(graph.edges), **labels)
            obs.inc("profile.machine_accesses", self.machine_accesses, **labels)
            obs.inc("profile.access_bytes", self.recorder.total_access_bytes, **labels)
            obs.gauge_max("profile.affinity_queue_len", self.recorder.queue_length, **labels)
            obs.gauge_max("profile.shadow_stack_depth_max", self.max_stack_depth, **labels)
        return ProfileResult(
            program=self.program,
            params=self.params,
            graph=self.recorder.filtered_graph(),
            full_graph=full_graph,
            contexts=self.contexts,
            context_stats=self.context_stats,
            object_context=self.object_context,
            object_site=self.object_site,
            object_sizes=self.object_sizes,
            trace=self.trace,
            total_accesses=full_graph.total_accesses,
            machine_accesses=self.machine_accesses,
        )

    @property
    def estimated_overhead_factor(self) -> float:
        """Estimated profiling slowdown versus native execution (paper: ≤500×)."""
        return PIN_SLOWDOWN_ESTIMATE
