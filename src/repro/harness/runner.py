"""Single-run measurement harness.

Runs one workload under one allocator configuration with the full cache
hierarchy attached, and collects everything the evaluation needs: cycle
count (via the cost model), per-level miss counts, allocator statistics and
the fragmentation snapshot taken at peak memory usage (paper Table 1
measures "fragmentation behaviour of grouped objects at peak memory
usage").
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Optional

from ..allocators import make_family_allocator
from ..allocators.base import AddressSpace, Allocator
from ..allocators.group import FragmentationSnapshot, GroupAllocator
from ..allocators.random_group import RandomPoolAllocator
from ..allocators.size_class import SizeClassAllocator
from ..cache.hierarchy import CacheHierarchy, HierarchyConfig, HierarchyStats
from ..cache.sharing import FalseSharingTracker
from ..cache.timing import CostModel
from ..core.pipeline import HaloArtifacts, make_runtime as make_halo_runtime
from ..hds.pipeline import HdsArtifacts, make_runtime as make_hds_runtime
from ..machine.events import Listener
from ..machine.machine import Machine, MachineMetrics
from ..sanitize.invariants import active_sanitizer
from ..sanitize.shadow import SanitizerListener
from ..trace.format import EventTrace
from ..workloads.base import Workload
from .. import obs

logger = logging.getLogger(__name__)

#: Engines ``run_measurement`` accepts for trace-driven runs.
ENGINES = ("auto", "columnar", "event")


@dataclass
class Measurement:
    """Results of one measured run."""

    workload: str
    config: str
    scale: str
    seed: int
    cycles: float
    cache: HierarchyStats
    accesses: int
    allocs: int
    frees: int
    instrumentation_toggles: int
    peak_live_bytes: int
    frag_at_peak: Optional[FragmentationSnapshot]
    grouped_allocs: int = 0
    forwarded_allocs: int = 0
    #: Grouped requests the allocator degraded to its fallback (pool
    #: exhaustion); zero in healthy runs.
    degraded_allocs: int = 0


def total_live_bytes(allocator: Allocator) -> int:
    """Live bytes across an allocator and (if present) its fallback."""
    live = allocator.stats.live_bytes
    fallback = getattr(allocator, "fallback", None)
    if fallback is not None:
        live += fallback.stats.live_bytes
    return live


class PeakTracker(Listener):
    """Listener capturing the fragmentation snapshot at peak memory usage."""

    def __init__(self, allocator: Allocator) -> None:
        self.allocator = allocator
        self.peak_live = 0
        self.frag_at_peak: Optional[FragmentationSnapshot] = None

    def on_alloc(self, machine: Machine, obj) -> None:
        """Update the peak and capture the fragmentation snapshot at it."""
        live = total_live_bytes(self.allocator)
        if live > self.peak_live:
            self.peak_live = live
            if isinstance(self.allocator, GroupAllocator):
                self.frag_at_peak = self.allocator.fragmentation()


def resolve_engine(engine: str, trace: Optional[EventTrace]) -> str:
    """The measurement engine one run will actually use.

    ``auto`` picks the columnar backend for trace-driven runs unless a
    sanitizer is active (the shadow-heap oracle observes per-event
    machine traffic, which only the event path generates); an explicit
    ``columnar`` request degrades to ``event`` under the same condition
    rather than silently skipping the sanitizer.  Direct (non-trace)
    runs always report ``direct``.
    """
    if trace is None:
        return "direct"
    if engine not in ENGINES:
        raise ValueError(f"unknown measurement engine {engine!r} (expected one of {ENGINES})")
    if engine == "event":
        return "event"
    if active_sanitizer() is not None:
        if engine == "columnar":
            logger.info(
                "sanitizer active: columnar engine falls back to per-event replay"
            )
        return "event"
    return "columnar"


def _publish_engine_metrics(
    workload: str, config: str, engine: str, events: int, elapsed: float
) -> None:
    """Per-engine throughput harvest (``engine.measure.*``).

    Labelled by engine so exported snapshots distinguish columnar from
    event (and direct) runs; the deterministic ``measure.*`` family keeps
    its existing label set, so cross-engine totals stay comparable.
    """
    if obs.active_registry() is None:
        return
    labels = {"engine": engine, "workload": workload, "config": config}
    obs.inc("engine.measure.runs", 1, **labels)
    obs.inc("engine.measure.events", events, **labels)
    obs.inc("engine.measure.seconds", elapsed, **labels)


def run_measurement(
    workload: Workload,
    make_allocator: Callable[[AddressSpace], Allocator],
    config: str,
    scale: str = "ref",
    seed: int = 0,
    cost_model: CostModel | None = None,
    hierarchy_config: HierarchyConfig | None = None,
    instrumentation: Optional[dict[int, int]] = None,
    state_vector=None,
    attach: Optional[Callable[[Machine], None]] = None,
    driver: Optional[Callable[[Machine], None]] = None,
    trace: Optional[EventTrace] = None,
    engine: str = "auto",
) -> Measurement:
    """Run *workload* once under the given allocator factory and measure it.

    When *trace* is given the run is trace-driven: *engine* selects the
    measurement backend — ``columnar`` for the batched simulation core,
    ``event`` for full-fidelity per-event replay, or ``auto`` (the
    default) which picks columnar whenever it applies.  Both engines
    produce bit-identical measurements to executing the workload at the
    recorded scale (pass the matching *scale* so the result is labelled
    correctly).

    When *driver* is given it replaces the workload body: it receives the
    fully configured machine and is responsible for driving it to
    ``finish`` — e.g. ``TraceReplayer(trace, workload.program).drive``.
    *driver* and *trace* are mutually exclusive.
    """
    cost_model = cost_model or CostModel()
    resolved = resolve_engine(engine, trace)
    if trace is not None:
        if driver is not None:
            raise ValueError("pass either trace= or driver=, not both")
        if resolved == "columnar":
            from ..columnar.engine import measure_columnar

            started = perf_counter()
            measurement = measure_columnar(
                workload,
                make_allocator,
                config,
                trace,
                scale=scale,
                seed=seed,
                cost_model=cost_model,
                hierarchy_config=hierarchy_config,
                instrumentation=instrumentation,
                state_vector=state_vector,
                attach=attach,
            )
            _publish_engine_metrics(
                workload.name, config, "columnar",
                trace.header.events, perf_counter() - started,
            )
            return measurement
        from ..trace.replay import TraceReplayer

        driver = TraceReplayer(trace, workload.program).drive
    space = AddressSpace(seed)
    allocator = make_allocator(space)
    memory = CacheHierarchy(hierarchy_config)
    tracker = PeakTracker(allocator)
    listeners: list = [tracker]
    sharing: Optional[FalseSharingTracker] = None
    if resolved == "direct" and driver is None:
        # Only a directly executed workload can switch simulated threads
        # (trace replays run entirely on thread 0), so the line-ownership
        # tracker attaches only where it can observe anything.
        sharing = FalseSharingTracker()
        listeners.append(sharing)
    sanitizer = None
    sanitizer_config = active_sanitizer()
    if sanitizer_config is not None:
        sanitizer = SanitizerListener(sanitizer_config)
        listeners.append(sanitizer)
    machine = Machine(
        workload.program,
        allocator,
        memory=memory,
        listeners=listeners,
        instrumentation=instrumentation,
        state_vector=state_vector,
    )
    if attach is not None:
        attach(machine)
    started = perf_counter()
    if driver is not None:
        driver(machine)
    else:
        workload.run(machine, scale)
    elapsed = perf_counter() - started
    if sanitizer is not None:
        # ``run_measurement`` does not call ``machine.finish()``, so the
        # phase-boundary check must run explicitly.
        sanitizer.final_check(machine)
    cache = memory.snapshot()
    metrics = machine.metrics
    _publish_measurement_metrics(
        workload.name, config, metrics, cache, allocator, tracker.peak_live,
        sharing=sharing,
    )
    _publish_engine_metrics(
        workload.name, config, resolved,
        trace.header.events if trace is not None else metrics.accesses,
        elapsed,
    )
    return Measurement(
        workload=workload.name,
        config=config,
        scale=scale,
        seed=seed,
        cycles=cost_model.cycles(metrics, cache),
        cache=cache,
        accesses=metrics.accesses,
        allocs=metrics.allocs,
        frees=metrics.frees,
        instrumentation_toggles=metrics.instrumentation_toggles,
        peak_live_bytes=tracker.peak_live,
        frag_at_peak=tracker.frag_at_peak,
        grouped_allocs=getattr(allocator, "grouped_allocs", 0),
        forwarded_allocs=getattr(allocator, "forwarded_allocs", 0),
        degraded_allocs=getattr(allocator, "degraded_allocs", 0),
    )


def _publish_measurement_metrics(
    workload: str,
    config: str,
    metrics: MachineMetrics,
    cache: HierarchyStats,
    allocator: Allocator,
    peak_live: int,
    sharing: Optional[FalseSharingTracker] = None,
) -> None:
    """Harvest one finished run into the active metrics registry.

    This is the single publish point for the deterministic ``measure.*``
    counter family: everything comes from stats the run already
    collected, so the hot paths are untouched and the counters are
    integer totals that merge identically in any order (serial vs
    ``--jobs N`` runs agree bit-for-bit).  A no-op when observability is
    off.
    """
    if obs.active_registry() is None:
        return
    labels = {"workload": workload, "config": config}
    obs.inc("measure.runs", 1, **labels)
    obs.inc("measure.peak_live_bytes", peak_live, **labels)
    for name, value in metrics.as_counters().items():
        obs.inc(f"measure.machine.{name}", value, **labels)
    for name, value in cache.as_counters().items():
        obs.inc(f"measure.cache.{name}", value, **labels)
    if sharing is not None:
        for name, value in sharing.as_counters().items():
            obs.inc(f"measure.cache.{name}", value, **labels)
    for name, value in allocator.observable_stats().items():
        obs.inc(f"measure.alloc.{name}", value, **labels)


def measure_baseline(
    workload: Workload, scale: str = "ref", seed: int = 0, **kwargs
) -> Measurement:
    """Measure the unmodified workload under the jemalloc-like baseline."""
    return run_measurement(
        workload, SizeClassAllocator, config="baseline", scale=scale, seed=seed, **kwargs
    )


def measure_halo(
    workload: Workload,
    artifacts: HaloArtifacts,
    scale: str = "ref",
    seed: int = 0,
    **kwargs,
) -> Measurement:
    """Measure the HALO-optimised configuration."""
    holder: dict = {}

    def factory(space: AddressSpace) -> Allocator:
        runtime = make_halo_runtime(artifacts, space)
        holder["runtime"] = runtime
        return runtime.allocator

    def attach(machine: Machine) -> None:
        runtime = holder["runtime"]
        machine.instrumentation = dict(runtime.instrumentation)
        machine.state_vector = runtime.state_vector

    return run_measurement(
        workload, factory, config="halo", scale=scale, seed=seed, attach=attach, **kwargs
    )


def measure_hds(
    workload: Workload,
    artifacts: HdsArtifacts,
    scale: str = "ref",
    seed: int = 0,
    **kwargs,
) -> Measurement:
    """Measure the hot-data-streams configuration."""
    holder: dict = {}

    def factory(space: AddressSpace) -> Allocator:
        runtime = make_hds_runtime(artifacts, space)
        holder["runtime"] = runtime
        return runtime.allocator

    def attach(machine: Machine) -> None:
        holder["runtime"].attach(machine)

    return run_measurement(
        workload, factory, config="hds", scale=scale, seed=seed, attach=attach, **kwargs
    )


def measure_calder(
    workload: Workload,
    artifacts,
    scale: str = "ref",
    seed: int = 0,
    **kwargs,
) -> Measurement:
    """Measure the Calder et al. name-based configuration."""
    from ..calder.pipeline import make_runtime as make_calder_runtime

    holder: dict = {}

    def factory(space: AddressSpace) -> Allocator:
        runtime = make_calder_runtime(artifacts, space)
        holder["runtime"] = runtime
        return runtime.allocator

    def attach(machine: Machine) -> None:
        holder["runtime"].attach(machine)

    return run_measurement(
        workload, factory, config="calder", scale=scale, seed=seed, attach=attach, **kwargs
    )


def measure_random_pools(
    workload: Workload,
    scale: str = "ref",
    seed: int = 0,
    pools: int = 4,
    **kwargs,
) -> Measurement:
    """Measure the Figure-15 random-pool allocator configuration."""

    def factory(space: AddressSpace) -> Allocator:
        fallback = SizeClassAllocator(space)
        return RandomPoolAllocator(space, fallback, pools=pools, seed=seed)

    return run_measurement(
        workload, factory, config="random-pools", scale=scale, seed=seed, **kwargs
    )


def measure_family(
    workload: Workload,
    family: str,
    scale: str = "ref",
    seed: int = 0,
    **kwargs,
) -> Measurement:
    """Measure a registered standalone allocator family (freelist, arena...).

    Families come from :data:`repro.allocators.ALLOCATOR_FAMILIES`; the
    measurement's ``config`` label is the family name, so the counters of
    e.g. ``freelist-bf`` and ``arena`` land alongside the paper
    configurations in the observability harvest.
    """

    def factory(space: AddressSpace) -> Allocator:
        return make_family_allocator(family, space)

    return run_measurement(
        workload, factory, config=family, scale=scale, seed=seed, **kwargs
    )
