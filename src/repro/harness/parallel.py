"""Parallel evaluation engine.

The paper's evaluation is embarrassingly parallel: 11 benchmarks × 4
configurations × N trials, every run independent of every other.  This
module fans the matrix out over a :class:`concurrent.futures.ProcessPoolExecutor`
with *deterministic seed assignment* — each worker task is one
``(benchmark, configuration, seed)`` measurement, seeds are enumerated
exactly as the serial :func:`~repro.harness.experiment.run_trials` does,
and results are folded through the same
:func:`~repro.harness.experiment.aggregate_trials` — so a parallel run
produces results *identical* to the serial path, just faster.

Artifact handling: the expensive offline phase (profile + analyse) runs
once per benchmark.  A first wave of prepare tasks populates a shared
on-disk :class:`~repro.core.artifact_cache.ArtifactCache` (a run-private
temporary directory when the caller disabled caching), and each worker
process then loads the pickled artifacts at most once, memoised in
process-global state.
"""

from __future__ import annotations

import tempfile
import time
from concurrent.futures import Future, ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

from ..core.artifact_cache import ArtifactCache, artifact_key
from ..core.pipeline import HaloParams, optimise_profile
from ..core.selectors import monitored_sites
from ..hds.pipeline import HdsParams
from ..trace.format import EventTrace
from ..trace.replay import replay_profile
from .experiment import TrialResult, aggregate_trials, trial_seeds
from .prepare import (
    PROFILE_SCALE,
    PhaseTimes,
    PreparedArtifacts,
    WorkloadEvaluation,
    get_or_record_trace,
    halo_params_for,
    hds_params_for,
    prepare_workload,
    trace_key_for,
)
from .runner import (
    Measurement,
    measure_baseline,
    measure_halo,
    measure_hds,
    measure_random_pools,
)
from ..workloads.base import get_workload

#: Configurations the evaluation matrix measures, in serial-path order.
CONFIGS = ("baseline", "halo", "hds", "random-pools")


@dataclass(frozen=True)
class MeasureTask:
    """One unit of parallel work: a single measured run."""

    workload: str
    config: str
    scale: str
    seed: int
    cache_dir: Optional[str] = None
    halo_params: Optional[HaloParams] = None
    hds_params: Optional[HdsParams] = None


@dataclass
class PreparedSummary:
    """What a prepare task reports back to the coordinating process.

    The artifacts themselves stay in the cache / worker memo; only the
    figure metadata and phase timings travel back over the pipe.
    """

    workload: str
    key: str
    halo_groups: int
    hds_groups: int
    hds_streams: int
    graph_nodes: int
    from_cache: bool
    times: PhaseTimes


# -- worker-process state -----------------------------------------------------

#: Per-process memo of prepared artifacts, keyed by the artifact-cache key.
_PREPARED: dict[str, PreparedArtifacts] = {}

#: Per-process memo of decoded event traces, keyed by the trace cache key.
#: Decoding is the expensive part of a warm replay, so each worker decodes
#: a given workload's trace at most once regardless of how many sweep
#: points it processes.
_TRACES: dict[str, EventTrace] = {}


def _trace_for(name: str, cache_dir: Optional[str]) -> tuple[EventTrace, PhaseTimes]:
    """Fetch (or record) the event trace for *name* in this process.

    Mirrors :func:`_prepared_for`: the returned :class:`PhaseTimes` covers
    only work this call actually performed (zero on a memo hit).
    """
    key = trace_key_for(name)
    memo = _TRACES.get(key)
    if memo is not None:
        return memo, PhaseTimes()
    times = PhaseTimes()
    cache = ArtifactCache(cache_dir) if cache_dir else None
    trace = get_or_record_trace(name, cache=cache, times=times)
    _TRACES[key] = trace
    return trace, times


def _record_trace_task(name: str, cache_dir: Optional[str]) -> tuple[str, int, PhaseTimes]:
    """Worker entry point ensuring *name*'s trace exists in the shared cache."""
    trace, times = _trace_for(name, cache_dir)
    return name, trace.header.events, times


def _prepared_for(
    name: str,
    cache_dir: Optional[str],
    halo_params: Optional[HaloParams],
    hds_params: Optional[HdsParams],
    include_hds: bool = True,
) -> tuple[PreparedArtifacts, PhaseTimes]:
    """Fetch (or build) the prepared artifacts for *name* in this process.

    Returns the artifacts plus the phase time *this call* actually spent —
    zero on a process-memo hit, so repeated tasks in one worker never
    re-account the original profile/analyse cost.
    """
    workload = get_workload(name)
    key = artifact_key(
        workload=name,
        profile_scale=PROFILE_SCALE,
        halo_params=halo_params or halo_params_for(workload),
        hds_params=hds_params or hds_params_for(workload),
    )
    memo = _PREPARED.get(key)
    if memo is not None and (memo.hds is not None or not include_hds):
        return memo, PhaseTimes()
    cache = ArtifactCache(cache_dir) if cache_dir else None
    prepared = prepare_workload(
        name,
        halo_params=halo_params,
        hds_params=hds_params,
        include_hds=include_hds,
        cache=cache,
        workload=workload,
    )
    _PREPARED[key] = prepared
    return prepared, prepared.times


def _prepare_task(
    name: str,
    cache_dir: Optional[str],
    halo_params: Optional[HaloParams],
    hds_params: Optional[HdsParams],
    include_hds: bool = True,
) -> PreparedSummary:
    """Worker entry point for the prepare wave."""
    prepared, times = _prepared_for(name, cache_dir, halo_params, hds_params, include_hds)
    return PreparedSummary(
        workload=name,
        key=prepared.key,
        halo_groups=len(prepared.halo.groups),
        hds_groups=len(prepared.hds.groups) if prepared.hds is not None else 0,
        hds_streams=prepared.hds.stream_count if prepared.hds is not None else 0,
        graph_nodes=len(prepared.profile.graph),
        from_cache=prepared.from_cache,
        times=times,
    )


def _measure_task(task: MeasureTask) -> tuple[Measurement, PhaseTimes]:
    """Worker entry point for one measurement run."""
    times = PhaseTimes()
    workload = get_workload(task.workload)
    if task.config == "baseline":
        start = time.perf_counter()
        measurement = measure_baseline(workload, scale=task.scale, seed=task.seed)
    elif task.config == "random-pools":
        start = time.perf_counter()
        measurement = measure_random_pools(workload, scale=task.scale, seed=task.seed)
    elif task.config in ("halo", "hds"):
        prepared, prep_times = _prepared_for(
            task.workload,
            task.cache_dir,
            task.halo_params,
            task.hds_params,
            include_hds=task.config == "hds",
        )
        times.add(prep_times)
        start = time.perf_counter()
        if task.config == "halo":
            measurement = measure_halo(
                workload, prepared.halo, scale=task.scale, seed=task.seed
            )
        else:
            assert prepared.hds is not None
            measurement = measure_hds(
                workload, prepared.hds, scale=task.scale, seed=task.seed
            )
    else:
        raise ValueError(f"unknown configuration {task.config!r}")
    times.measure += time.perf_counter() - start
    return measurement, times


def _table1_task(
    name: str,
    scale: str,
    cache_dir: Optional[str],
) -> tuple[str, float, int, PhaseTimes]:
    """Worker entry point for one Table 1 row."""
    times = PhaseTimes()
    workload = get_workload(name)
    prepared, prep_times = _prepared_for(name, cache_dir, None, None, include_hds=False)
    times.add(prep_times)
    start = time.perf_counter()
    measurement = measure_halo(workload, prepared.halo, scale=scale, seed=1)
    times.measure += time.perf_counter() - start
    frag = measurement.frag_at_peak
    if frag is None:
        return name, 0.0, 0, times
    return name, frag.fraction, frag.wasted_bytes, times


# -- coordinator side ---------------------------------------------------------


@contextmanager
def _effective_cache_dir(cache: Optional[ArtifactCache]) -> Iterator[str]:
    """The cache directory shared with workers for one parallel run.

    When the caller runs without a persistent cache, a run-private
    temporary directory stands in so each benchmark is still profiled
    exactly once rather than once per worker process.
    """
    if cache is not None:
        cache.root.mkdir(parents=True, exist_ok=True)
        yield str(cache.root)
        return
    with tempfile.TemporaryDirectory(prefix="halo-artifacts-") as tmp:
        yield tmp


def run_trials_parallel(
    name: str,
    config: str = "baseline",
    trials: int = 3,
    scale: str = "ref",
    jobs: int = 2,
    discard_first: bool = True,
    cache: Optional[ArtifactCache] = None,
    halo_params: Optional[HaloParams] = None,
    hds_params: Optional[HdsParams] = None,
    phase_times: Optional[PhaseTimes] = None,
) -> TrialResult:
    """Parallel counterpart of :func:`~repro.harness.experiment.run_trials`.

    Runs the same seed sequence as the serial path for one
    ``(benchmark, configuration)`` pair and aggregates identically, so the
    resulting :class:`TrialResult` matches the serial one exactly.
    """
    seeds = trial_seeds(trials, discard_first)
    with _effective_cache_dir(cache) as cache_dir:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            if config in ("halo", "hds"):
                # One prepare task so measurement workers only load the cache.
                pool.submit(
                    _prepare_task, name, cache_dir, halo_params, hds_params,
                    config == "hds",
                ).result()
            futures = [
                pool.submit(
                    _measure_task,
                    MeasureTask(
                        workload=name,
                        config=config,
                        scale=scale,
                        seed=seed,
                        cache_dir=cache_dir,
                        halo_params=halo_params,
                        hds_params=hds_params,
                    ),
                )
                for seed in seeds
            ]
            results = [future.result() for future in futures]
    if phase_times is not None:
        for _, times in results:
            phase_times.add(times)
    return aggregate_trials([m for m, _ in results], discard_first)


def evaluate_all_parallel(
    benchmarks: Sequence[str],
    trials: int = 3,
    scale: str = "ref",
    include_random: bool = True,
    jobs: int = 2,
    cache: Optional[ArtifactCache] = None,
    phase_times: Optional[PhaseTimes] = None,
) -> dict[str, WorkloadEvaluation]:
    """Parallel counterpart of :func:`~repro.harness.reproduce.evaluate_all`.

    Fans the full matrix — every ``(benchmark, configuration, seed)`` — out
    over *jobs* worker processes.  Deterministic: results are numerically
    identical to the serial evaluation.
    """
    if jobs < 1:
        raise ValueError(f"need at least one job, got {jobs}")
    total = PhaseTimes()
    seeds = trial_seeds(trials, discard_first=True)
    configs = [c for c in CONFIGS if include_random or c != "random-pools"]

    with _effective_cache_dir(cache) as cache_dir:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            # Wave 1: profile + analyse each benchmark once, into the cache.
            prepare_futures = {
                name: pool.submit(_prepare_task, name, cache_dir, None, None, True)
                for name in benchmarks
            }
            summaries = {name: f.result() for name, f in prepare_futures.items()}
            for summary in summaries.values():
                total.add(summary.times)

            # Wave 2: every measurement, one task per (benchmark, config, seed).
            futures: dict[tuple[str, str], list[Future]] = {}
            for name in benchmarks:
                for config in configs:
                    futures[(name, config)] = [
                        pool.submit(
                            _measure_task,
                            MeasureTask(
                                workload=name,
                                config=config,
                                scale=scale,
                                seed=seed,
                                cache_dir=cache_dir,
                            ),
                        )
                        for seed in seeds
                    ]

            evaluations: dict[str, WorkloadEvaluation] = {}
            for name in benchmarks:
                trials_by_config: dict[str, TrialResult] = {}
                for config in configs:
                    results = [future.result() for future in futures[(name, config)]]
                    for _, times in results:
                        total.add(times)
                    trials_by_config[config] = aggregate_trials(
                        [m for m, _ in results], discard_first=True
                    )
                summary = summaries[name]
                evaluations[name] = WorkloadEvaluation(
                    name=name,
                    baseline=trials_by_config["baseline"],
                    halo=trials_by_config["halo"],
                    hds=trials_by_config["hds"],
                    random_pools=trials_by_config.get("random-pools"),
                    halo_groups=summary.halo_groups,
                    hds_groups=summary.hds_groups,
                    hds_streams=summary.hds_streams,
                    graph_nodes=summary.graph_nodes,
                )

    if phase_times is not None:
        phase_times.add(total)
    return evaluations


def table1_rows_parallel(
    benchmarks: Sequence[str],
    scale: str = "ref",
    jobs: int = 2,
    cache: Optional[ArtifactCache] = None,
    phase_times: Optional[PhaseTimes] = None,
) -> list[tuple[str, float, int]]:
    """Parallel Table 1: ``(benchmark, fraction, wasted_bytes)`` rows.

    Row order follows *benchmarks* regardless of completion order.
    """
    with _effective_cache_dir(cache) as cache_dir:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                name: pool.submit(_table1_task, name, scale, cache_dir)
                for name in benchmarks
            }
            results = {name: future.result() for name, future in futures.items()}
    rows = []
    for name in benchmarks:
        row_name, fraction, wasted, times = results[name]
        if phase_times is not None:
            phase_times.add(times)
        rows.append((row_name, fraction, wasted))
    return rows


# -- trace-driven parameter sweeps --------------------------------------------


@dataclass
class SweepPoint:
    """Offline-pipeline summary for one parameter configuration.

    What a sweep wants to see per config: how the affinity graph and the
    resulting grouping/instrumentation respond to the knobs.  All fields
    derive from a trace replay — no workload execution is involved.
    """

    workload: str
    affinity_distance: int
    merge_tolerance: float
    max_groups: Optional[int]
    groups: int
    grouped_contexts: int
    graph_nodes: int
    monitored_sites: int
    times: PhaseTimes = field(default_factory=PhaseTimes)


def _sweep_task(
    name: str, halo_params: HaloParams, cache_dir: Optional[str]
) -> SweepPoint:
    """Worker entry point: one pipeline run from trace for one config."""
    times = PhaseTimes()
    trace, trace_times = _trace_for(name, cache_dir)
    times.add(trace_times)
    workload = get_workload(name)
    start = time.perf_counter()
    profile = replay_profile(trace, workload.program, halo_params)
    times.profile += time.perf_counter() - start
    times.trace_replays += 1
    start = time.perf_counter()
    artifacts = optimise_profile(profile, halo_params)
    times.analyse += time.perf_counter() - start
    return SweepPoint(
        workload=name,
        affinity_distance=halo_params.affinity.distance,
        merge_tolerance=halo_params.grouping.merge_tolerance,
        max_groups=halo_params.max_groups,
        groups=len(artifacts.groups),
        grouped_contexts=sum(len(g.members) for g in artifacts.groups),
        graph_nodes=len(profile.graph),
        monitored_sites=len(monitored_sites(artifacts.identification.selectors)),
        times=times,
    )


def run_sweep_parallel(
    name: str,
    configs: Sequence[HaloParams],
    jobs: int = 2,
    cache: Optional[ArtifactCache] = None,
    phase_times: Optional[PhaseTimes] = None,
) -> list[SweepPoint]:
    """Fan a trace-driven parameter sweep out over worker processes.

    The workload is recorded at most once (a first wave populates the
    shared trace cache); every configuration then replays the recording.
    Point order follows *configs*.
    """
    if jobs < 1:
        raise ValueError(f"need at least one job, got {jobs}")
    total = PhaseTimes()
    with _effective_cache_dir(cache) as cache_dir:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            _, _, record_times = pool.submit(
                _record_trace_task, name, cache_dir
            ).result()
            total.add(record_times)
            futures = [
                pool.submit(_sweep_task, name, config, cache_dir)
                for config in configs
            ]
            points = [future.result() for future in futures]
    for point in points:
        total.add(point.times)
    if phase_times is not None:
        phase_times.add(total)
    return points
