"""Resilient parallel evaluation engine.

The paper's evaluation is embarrassingly parallel: 11 benchmarks × 4
configurations × N trials, every run independent of every other.  This
module fans the matrix out over a :class:`concurrent.futures.ProcessPoolExecutor`
with *deterministic seed assignment* — each worker task is one
``(benchmark, configuration, seed)`` measurement, seeds are enumerated
exactly as the serial :func:`~repro.harness.experiment.run_trials` does,
and results are folded through the same
:func:`~repro.harness.experiment.aggregate_trials` — so a parallel run
produces results *identical* to the serial path, just faster.

Resilience: the engine fails per *cell*, never per *matrix*.  Each task
runs under a bounded retry policy with exponential backoff and an
optional per-task timeout; a worker that dies (OOM-kill, segfault,
injected fault) breaks only its pool, which is rebuilt and the in-flight
cells resubmitted; a cell that exhausts its retries becomes a
:class:`FailedMeasurement` in the caller's failure list instead of an
exception that discards every other result.  With a
:class:`~repro.harness.checkpoint.CheckpointJournal` attached, every
completed cell is journalled as it lands, so an interrupted run resumes
from completed work — and, because cells are deterministic, a resumed run
is bit-identical to an uninterrupted one.  ``KeyboardInterrupt`` cancels
pending work and terminates in-flight workers instead of hanging on them.

Artifact handling: the expensive offline phase (profile + analyse) runs
once per benchmark.  A first wave of prepare tasks populates a shared
on-disk :class:`~repro.core.artifact_cache.ArtifactCache` (a run-private
temporary directory when the caller disabled caching), and each worker
process then loads the pickled artifacts at most once, memoised in
process-global state.
"""

from __future__ import annotations

import hashlib
import logging
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Optional, Sequence, Union

from ..core.artifact_cache import ArtifactCache, artifact_key
from ..core.pipeline import HaloParams, optimise_profile
from ..core.selectors import monitored_sites
from ..faults.plan import FaultPlan, clear_fault_plan, install_fault_plan
from ..hds.pipeline import HdsParams
from ..sanitize.invariants import (
    SanitizerConfig,
    active_sanitizer,
    clear_sanitizer,
    install_sanitizer,
)
from ..obs import metrics as obs_metrics
from ..allocators import ALLOCATOR_FAMILIES
from ..obs.spans import phase_span
from ..trace.format import EventTrace
from ..trace.replay import replay_profile
from .checkpoint import CheckpointJournal
from .experiment import TrialResult, aggregate_trials, trial_seeds
from .prepare import (
    PROFILE_SCALE,
    PhaseTimes,
    PreparedArtifacts,
    WorkloadEvaluation,
    get_or_record_trace,
    halo_params_for,
    hds_params_for,
    prepare_workload,
    trace_key_for,
)
from .runner import (
    Measurement,
    measure_baseline,
    measure_family,
    measure_halo,
    measure_hds,
    measure_random_pools,
)
from ..workloads.base import get_workload

logger = logging.getLogger(__name__)

#: Configurations the evaluation matrix measures, in serial-path order.
CONFIGS = ("baseline", "halo", "hds", "random-pools")


@dataclass(frozen=True)
class MeasureTask:
    """One unit of parallel work: a single measured run."""

    workload: str
    config: str
    scale: str
    seed: int
    cache_dir: Optional[str] = None
    halo_params: Optional[HaloParams] = None
    hds_params: Optional[HdsParams] = None
    #: Measurement backend: ``direct`` executes the workload; ``auto``/
    #: ``columnar``/``event`` measure from the shared event trace.
    engine: str = "direct"


@dataclass
class PreparedSummary:
    """What a prepare task reports back to the coordinating process.

    The artifacts themselves stay in the cache / worker memo; only the
    figure metadata and phase timings travel back over the pipe.
    """

    workload: str
    key: str
    halo_groups: int
    hds_groups: int
    hds_streams: int
    graph_nodes: int
    from_cache: bool
    times: PhaseTimes


@dataclass(frozen=True)
class FailedMeasurement:
    """A matrix cell that exhausted its retries.

    Carries enough identity to re-run the cell by hand; stands in the
    caller's failure list so one bad cell no longer poisons the matrix.
    """

    workload: str
    config: str
    scale: str
    seed: Optional[int]
    error: str
    attempts: int
    kind: str = "measure"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f"{self.workload}/{self.config}" if self.config else self.workload
        seed = f" seed={self.seed}" if self.seed is not None else ""
        return (
            f"{self.kind} {where}{seed} failed after "
            f"{self.attempts} attempt(s): {self.error}"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Retry/timeout envelope for one resilient run.

    Args:
        task_timeout: Seconds one task may run before its workers are
            terminated and the task is retried (None: no timeout).
        max_retries: Retries per task after its first attempt.
        backoff: Base delay before a retry; doubles per attempt, with
            deterministic per-task jitter (see :meth:`retry_delay`).
    """

    task_timeout: Optional[float] = None
    max_retries: int = 2
    backoff: float = 0.25

    def retry_delay(self, key: str, attempt: int) -> float:
        """Backoff before retrying *attempt* of the task named *key*.

        Exponential with deterministic jitter in ``[0.5, 1.0)`` of the
        full step, keyed on ``(key, attempt)``: when many cells fail at
        once (a broken pool, a fault drill), their retries spread out
        instead of stampeding back in lockstep — and because the jitter
        is a pure hash, retry timing is reproducible run to run.  Timing
        only: results stay bit-identical to the serial path.
        """
        digest = hashlib.sha256(repr((key, attempt)).encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return self.backoff * (2 ** attempt) * (0.5 + 0.5 * unit)


# -- worker-process state -----------------------------------------------------

#: Per-process memo of prepared artifacts, keyed by the artifact-cache key.
_PREPARED: dict[str, PreparedArtifacts] = {}

#: Per-process memo of decoded event traces, keyed by the trace cache key.
#: Decoding is the expensive part of a warm replay, so each worker decodes
#: a given workload's trace at most once regardless of how many sweep
#: points it processes.
_TRACES: dict[str, EventTrace] = {}


def _faulted_task(
    fn: Callable,
    args: tuple,
    plan: Optional[FaultPlan],
    task_key: str,
    attempt: int,
    sanitize: Optional[SanitizerConfig] = None,
):
    """Worker shim: install the run's fault plan, apply worker faults, run.

    Every task funnels through here so the fault plan — and, when active,
    the heap-sanitizer config — reaches allocator and trace hooks in the
    worker process, and scheduled kills/stalls hit before any real work
    starts (maximally disruptive, like a crash at task pickup).  Shipping
    the sanitizer config this way is what makes ``--jobs N --sanitize``
    check exactly the ops a serial run would.
    """
    if sanitize is not None:
        install_sanitizer(sanitize)
    try:
        if plan is None:
            return fn(*args)
        install_fault_plan(plan)
        try:
            plan.on_worker_task(task_key, attempt)
            return fn(*args)
        finally:
            clear_fault_plan()
    finally:
        if sanitize is not None:
            clear_sanitizer()


def _trace_for(name: str, cache_dir: Optional[str]) -> tuple[EventTrace, PhaseTimes]:
    """Fetch (or record) the event trace for *name* in this process.

    Mirrors :func:`_prepared_for`: the returned :class:`PhaseTimes` covers
    only work this call actually performed (zero on a memo hit).
    """
    key = trace_key_for(name)
    memo = _TRACES.get(key)
    if memo is not None:
        return memo, PhaseTimes()
    times = PhaseTimes()
    cache = ArtifactCache(cache_dir) if cache_dir else None
    trace = get_or_record_trace(name, cache=cache, times=times)
    _TRACES[key] = trace
    return trace, times


def _record_trace_task(name: str, cache_dir: Optional[str]) -> tuple[str, int, PhaseTimes]:
    """Worker entry point ensuring *name*'s trace exists in the shared cache."""
    with obs_metrics.collecting() as registry:
        trace, times = _trace_for(name, cache_dir)
        times.metrics = registry.snapshot()
    return name, trace.header.events, times


def _prepared_for(
    name: str,
    cache_dir: Optional[str],
    halo_params: Optional[HaloParams],
    hds_params: Optional[HdsParams],
    include_hds: bool = True,
) -> tuple[PreparedArtifacts, PhaseTimes]:
    """Fetch (or build) the prepared artifacts for *name* in this process.

    Returns the artifacts plus the phase time *this call* actually spent —
    zero on a process-memo hit, so repeated tasks in one worker never
    re-account the original profile/analyse cost.
    """
    workload = get_workload(name)
    key = artifact_key(
        workload=name,
        profile_scale=PROFILE_SCALE,
        halo_params=halo_params or halo_params_for(workload),
        hds_params=hds_params or hds_params_for(workload),
    )
    memo = _PREPARED.get(key)
    if memo is not None and (memo.hds is not None or not include_hds):
        return memo, PhaseTimes()
    cache = ArtifactCache(cache_dir) if cache_dir else None
    prepared = prepare_workload(
        name,
        halo_params=halo_params,
        hds_params=hds_params,
        include_hds=include_hds,
        cache=cache,
        workload=workload,
    )
    _PREPARED[key] = prepared
    return prepared, prepared.times


def _prepare_task(
    name: str,
    cache_dir: Optional[str],
    halo_params: Optional[HaloParams],
    hds_params: Optional[HdsParams],
    include_hds: bool = True,
) -> PreparedSummary:
    """Worker entry point for the prepare wave."""
    with obs_metrics.collecting() as registry:
        prepared, times = _prepared_for(name, cache_dir, halo_params, hds_params, include_hds)
        times.metrics = registry.snapshot()
    return PreparedSummary(
        workload=name,
        key=prepared.key,
        halo_groups=len(prepared.halo.groups),
        hds_groups=len(prepared.hds.groups) if prepared.hds is not None else 0,
        hds_streams=prepared.hds.stream_count if prepared.hds is not None else 0,
        graph_nodes=len(prepared.profile.graph),
        from_cache=prepared.from_cache,
        times=times,
    )


def _measure_task(task: MeasureTask) -> tuple[Measurement, PhaseTimes]:
    """Worker entry point for one measurement run."""
    with obs_metrics.collecting() as registry:
        times = PhaseTimes()
        workload = get_workload(task.workload)
        measure_kwargs: dict = {}
        if task.engine != "direct" and task.scale == PROFILE_SCALE:
            trace, trace_times = _trace_for(task.workload, task.cache_dir)
            times.add(trace_times)
            measure_kwargs = {"trace": trace, "engine": task.engine}
        span = phase_span(times, "measure", workload=task.workload, config=task.config)
        if task.config == "baseline":
            with span:
                measurement = measure_baseline(
                    workload, scale=task.scale, seed=task.seed, **measure_kwargs
                )
        elif task.config == "random-pools":
            with span:
                measurement = measure_random_pools(
                    workload, scale=task.scale, seed=task.seed, **measure_kwargs
                )
        elif task.config in ALLOCATOR_FAMILIES:
            with span:
                measurement = measure_family(
                    workload, task.config, scale=task.scale, seed=task.seed,
                    **measure_kwargs,
                )
        elif task.config in ("halo", "hds"):
            prepared, prep_times = _prepared_for(
                task.workload,
                task.cache_dir,
                task.halo_params,
                task.hds_params,
                include_hds=task.config == "hds",
            )
            times.add(prep_times)
            with span:
                if task.config == "halo":
                    measurement = measure_halo(
                        workload, prepared.halo, scale=task.scale, seed=task.seed,
                        **measure_kwargs,
                    )
                else:
                    assert prepared.hds is not None
                    measurement = measure_hds(
                        workload, prepared.hds, scale=task.scale, seed=task.seed,
                        **measure_kwargs,
                    )
        else:
            raise ValueError(f"unknown configuration {task.config!r}")
        times.metrics = registry.snapshot()
    return measurement, times


def _table1_task(
    name: str,
    scale: str,
    cache_dir: Optional[str],
) -> tuple[str, float, int, PhaseTimes]:
    """Worker entry point for one Table 1 row."""
    with obs_metrics.collecting() as registry:
        times = PhaseTimes()
        workload = get_workload(name)
        prepared, prep_times = _prepared_for(name, cache_dir, None, None, include_hds=False)
        times.add(prep_times)
        with phase_span(times, "measure", workload=name, config="halo"):
            measurement = measure_halo(workload, prepared.halo, scale=scale, seed=1)
        times.metrics = registry.snapshot()
    frag = measurement.frag_at_peak
    if frag is None:
        return name, 0.0, 0, times
    return name, frag.fraction, frag.wasted_bytes, times


# -- coordinator side ---------------------------------------------------------


@dataclass
class _TaskSpec:
    """One schedulable cell: worker callable plus reporting identity."""

    key: str
    fn: Callable
    args: tuple
    workload: str = ""
    config: str = ""
    scale: str = ""
    seed: Optional[int] = None
    kind: str = "measure"

    def failure(self, error: str, attempts: int) -> FailedMeasurement:
        return FailedMeasurement(
            workload=self.workload,
            config=self.config,
            scale=self.scale,
            seed=self.seed,
            error=error,
            attempts=attempts,
            kind=self.kind,
        )


@dataclass
class _RunReport:
    """Outcome of one resilient wave: fresh results, failures, churn.

    ``requeues`` counts healthy bystander tasks rescheduled because a
    *different* task broke or timed out the pool; ``pool_rebuilds``
    counts the teardown/rebuild cycles themselves.
    """

    fresh: dict[str, Any] = field(default_factory=dict)
    failures: list[FailedMeasurement] = field(default_factory=list)
    retries: int = 0
    requeues: int = 0
    pool_rebuilds: int = 0


class _ResilientRunner:
    """Task scheduler wrapping one (rebuildable) process pool.

    Owns submission, per-task deadlines, bounded retry with exponential
    backoff, broken-pool recovery, journalling, and interrupt-safe
    teardown.  One runner is shared across the waves of a pipeline entry
    point so worker-process memos survive between waves.
    """

    def __init__(
        self,
        jobs: int,
        policy: RetryPolicy,
        fault_plan: Optional[FaultPlan] = None,
        journal: Optional[CheckpointJournal] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"need at least one job, got {jobs}")
        self.jobs = jobs
        self.policy = policy
        self.fault_plan = fault_plan
        # Captured at construction on the coordinator: workers inherit the
        # same sanitizer configuration the serial path would run under.
        self.sanitize = active_sanitizer()
        self.journal = journal
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- pool lifecycle ----------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def _kill_pool(self) -> None:
        """Tear the pool down without waiting on in-flight work.

        Worker processes are terminated outright so a stalled or wedged
        task cannot block the coordinator (plain ``shutdown`` joins the
        workers, which is exactly the Ctrl-C hang this engine removes).
        """
        pool, self._pool = self._pool, None
        if pool is None:
            return
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Orderly shutdown after the last wave (waits for idle workers)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def abort(self) -> None:
        """Emergency teardown: cancel pending futures, terminate workers."""
        self._kill_pool()

    # -- scheduling --------------------------------------------------------

    def run(self, specs: Sequence[_TaskSpec]) -> _RunReport:
        """Run every spec to completion, retrying and degrading per policy.

        Returns the wave's report; never raises for task failures.
        ``KeyboardInterrupt`` (and ``SystemExit``) abort cleanly — pending
        futures are cancelled and workers terminated — then propagate.
        """
        report = _RunReport()
        try:
            self._run(specs, report)
        except (KeyboardInterrupt, SystemExit):
            logger.warning("interrupted: cancelling pending tasks and terminating workers")
            self.abort()
            raise
        return report

    def _run(self, specs: Sequence[_TaskSpec], report: _RunReport) -> None:
        pending: deque[tuple[_TaskSpec, int]] = deque((s, 0) for s in specs)
        delayed: list[tuple[float, _TaskSpec, int]] = []  # (ready_at, spec, attempt)
        # future -> (spec, attempt, deadline, submitted_at)
        running: dict[Future, tuple[_TaskSpec, int, Optional[float], float]] = {}
        timeout = self.policy.task_timeout

        def settle(spec: _TaskSpec, attempt: int, error: str) -> None:
            """Schedule a retry for a failed attempt, or record the failure."""
            if attempt < self.policy.max_retries:
                ready = time.monotonic() + self.policy.retry_delay(spec.key, attempt)
                delayed.append((ready, spec, attempt + 1))
                report.retries += 1
                obs_metrics.inc("harness.task_retries", 1, kind=spec.kind)
                logger.warning(
                    "task %s attempt %d failed (%s); retrying", spec.key, attempt, error
                )
            else:
                report.failures.append(spec.failure(error, attempts=attempt + 1))
                obs_metrics.inc("harness.task_failures", 1, kind=spec.kind)
                logger.error(
                    "task %s failed permanently after %d attempt(s): %s",
                    spec.key, attempt + 1, error,
                )

        def rebuild(bystanders: int) -> None:
            """Account one pool teardown and its requeued healthy tasks."""
            report.pool_rebuilds += 1
            obs_metrics.inc("harness.pool_rebuilds", 1)
            if bystanders:
                report.requeues += bystanders
                obs_metrics.inc("harness.task_requeues", bystanders)

        while pending or delayed or running:
            now = time.monotonic()
            # Promote retry-delayed tasks whose backoff has elapsed.
            ready = [entry for entry in delayed if entry[0] <= now]
            for entry in ready:
                delayed.remove(entry)
                pending.append((entry[1], entry[2]))
            # Keep at most `jobs` tasks in flight so a submitted task
            # starts (almost) immediately and its deadline is meaningful.
            while pending and len(running) < self.jobs:
                spec, attempt = pending.popleft()
                future = self._ensure_pool().submit(
                    _faulted_task,
                    spec.fn,
                    spec.args,
                    self.fault_plan,
                    spec.key,
                    attempt,
                    self.sanitize,
                )
                deadline = None if timeout is None else time.monotonic() + timeout
                running[future] = (spec, attempt, deadline, time.monotonic())
                obs_metrics.inc("harness.tasks", 1, kind=spec.kind)

            if not running:
                if delayed:  # nothing in flight; sleep out the next backoff
                    time.sleep(max(0.0, min(e[0] for e in delayed) - time.monotonic()))
                continue

            # Wait for the first completion, next deadline, or next retry.
            horizon: Optional[float] = None
            deadlines = [d for (_, _, d, _) in running.values() if d is not None]
            if deadlines:
                horizon = max(0.0, min(deadlines) - time.monotonic())
            if delayed:
                until_retry = max(0.0, min(e[0] for e in delayed) - time.monotonic())
                horizon = until_retry if horizon is None else min(horizon, until_retry)
            done, _ = wait(running, timeout=horizon, return_when=FIRST_COMPLETED)

            broken = False
            for future in done:
                spec, attempt, _, submitted = running.pop(future)
                try:
                    value = future.result()
                except BrokenProcessPool as exc:
                    # The dying worker poisons every in-flight future; each
                    # affected task is retried (the culprit re-draws its
                    # fate, innocents normally succeed on the fresh pool).
                    broken = True
                    settle(spec, attempt, f"worker process died ({exc!r})")
                except Exception as exc:
                    settle(spec, attempt, repr(exc))
                else:
                    obs_metrics.observe(
                        "harness.task_seconds", time.monotonic() - submitted, kind=spec.kind
                    )
                    report.fresh[spec.key] = value
                    if self.journal is not None:
                        self.journal.append(spec.key, value)
            if broken:
                self._kill_pool()
                rebuild(bystanders=len(running))
                for spec, attempt, _, _ in running.values():
                    pending.append((spec, attempt))  # bystanders keep their attempt
                running.clear()
                continue

            # Enforce per-task deadlines: a stalled worker cannot be
            # cancelled through the executor API, so the pool is torn down
            # and every in-flight task rescheduled (expired ones count a
            # failed attempt, bystanders do not).
            now = time.monotonic()
            expired = [
                future
                for future, (_, _, deadline, _) in running.items()
                if deadline is not None and now >= deadline
            ]
            if expired:
                self._kill_pool()
                for future in expired:
                    spec, attempt, _, _ = running.pop(future)
                    obs_metrics.inc("harness.task_timeouts", 1, kind=spec.kind)
                    settle(spec, attempt, f"timed out after {timeout:.1f}s")
                rebuild(bystanders=len(running))
                for spec, attempt, _, _ in running.values():
                    pending.append((spec, attempt))
                running.clear()


def _fold_report(phase_times: Optional[PhaseTimes], report: _RunReport) -> None:
    """Accumulate one wave's operational churn into *phase_times*."""
    if phase_times is None:
        return
    phase_times.task_retries += report.retries
    phase_times.requeues += report.requeues
    phase_times.pool_rebuilds += report.pool_rebuilds


def _preload(
    journal: Optional[CheckpointJournal], resume: bool
) -> dict[str, Any]:
    """Completed cells a resumed run may skip (empty without ``resume``)."""
    if journal is None or not resume:
        return {}
    done = journal.load()
    if done:
        logger.info(
            "resuming from %s: %d completed cell(s) loaded", journal.path, len(done)
        )
    return done


def _as_journal(
    checkpoint: Optional[Union[CheckpointJournal, str, Path]]
) -> Optional[CheckpointJournal]:
    if checkpoint is None or isinstance(checkpoint, CheckpointJournal):
        return checkpoint
    return CheckpointJournal(checkpoint)


def _measure_key(workload: str, config: str, scale: str, seed: int) -> str:
    return f"measure:{workload}:{config}:{scale}:{seed}"


def _aggregate_seeded(
    cells: dict[int, Measurement], discard_first: bool
) -> Optional[TrialResult]:
    """Aggregate surviving per-seed measurements (None if nothing survives).

    The warm-up convention drops seed 0 *when it succeeded*; a failed
    warm-up cell must not silently promote seed 1 into its place.
    """
    seeds = sorted(cells)
    if discard_first and 0 in cells:
        seeds = [s for s in seeds if s != 0]
    if not seeds:
        return None
    return aggregate_trials([cells[s] for s in seeds], discard_first=False)


@contextmanager
def _effective_cache_dir(cache: Optional[ArtifactCache]) -> Iterator[str]:
    """The cache directory shared with workers for one parallel run.

    When the caller runs without a persistent cache, a run-private
    temporary directory stands in so each benchmark is still profiled
    exactly once rather than once per worker process.
    """
    if cache is not None:
        cache.root.mkdir(parents=True, exist_ok=True)
        yield str(cache.root)
        return
    with tempfile.TemporaryDirectory(prefix="halo-artifacts-") as tmp:
        yield tmp


def run_trials_parallel(
    name: str,
    config: str = "baseline",
    trials: int = 3,
    scale: str = "ref",
    jobs: int = 2,
    discard_first: bool = True,
    cache: Optional[ArtifactCache] = None,
    halo_params: Optional[HaloParams] = None,
    hds_params: Optional[HdsParams] = None,
    phase_times: Optional[PhaseTimes] = None,
    task_timeout: Optional[float] = None,
    max_retries: int = 2,
    fault_plan: Optional[FaultPlan] = None,
    failures: Optional[list[FailedMeasurement]] = None,
    engine: str = "direct",
) -> TrialResult:
    """Parallel counterpart of :func:`~repro.harness.experiment.run_trials`.

    Runs the same seed sequence as the serial path for one
    ``(benchmark, configuration)`` pair and aggregates identically, so the
    resulting :class:`TrialResult` matches the serial one exactly.  Cells
    that fail despite retries land in *failures* (when given) and are
    excluded from the aggregate; if nothing survives, :class:`RuntimeError`.
    """
    seeds = trial_seeds(trials, discard_first)
    policy = RetryPolicy(task_timeout=task_timeout, max_retries=max_retries)
    prep: Optional[_RunReport] = None
    with _effective_cache_dir(cache) as cache_dir:
        runner = _ResilientRunner(jobs, policy, fault_plan=fault_plan)
        try:
            if config in ("halo", "hds"):
                # One prepare task so measurement workers only load the cache.
                prep = runner.run([
                    _TaskSpec(
                        key=f"prepare:{name}",
                        fn=_prepare_task,
                        args=(name, cache_dir, halo_params, hds_params, config == "hds"),
                        workload=name,
                        config=config,
                        scale=scale,
                        kind="prepare",
                    )
                ])
                if prep.failures:
                    raise RuntimeError(
                        f"prepare phase failed for {name}: {prep.failures[0]}"
                    )
            specs = [
                _TaskSpec(
                    key=_measure_key(name, config, scale, seed),
                    fn=_measure_task,
                    args=(
                        MeasureTask(
                            workload=name,
                            config=config,
                            scale=scale,
                            seed=seed,
                            cache_dir=cache_dir,
                            halo_params=halo_params,
                            hds_params=hds_params,
                            engine=engine,
                        ),
                    ),
                    workload=name,
                    config=config,
                    scale=scale,
                    seed=seed,
                )
                for seed in seeds
            ]
            report = runner.run(specs)
        finally:
            runner.close()
    if failures is not None:
        failures.extend(report.failures)
    _fold_report(phase_times, report)
    if phase_times is not None:
        if prep is not None:
            _fold_report(phase_times, prep)
            for summary in prep.fresh.values():
                phase_times.add(summary.times)
        for _, times in report.fresh.values():
            phase_times.add(times)
    cells = {
        seed: report.fresh[_measure_key(name, config, scale, seed)][0]
        for seed in seeds
        if _measure_key(name, config, scale, seed) in report.fresh
    }
    result = _aggregate_seeded(cells, discard_first)
    if result is None:
        raise RuntimeError(
            f"every trial of {name}/{config} failed: "
            + "; ".join(str(f) for f in report.failures)
        )
    return result


def evaluate_all_parallel(
    benchmarks: Sequence[str],
    trials: int = 3,
    scale: str = "ref",
    include_random: bool = True,
    jobs: int = 2,
    cache: Optional[ArtifactCache] = None,
    phase_times: Optional[PhaseTimes] = None,
    task_timeout: Optional[float] = None,
    max_retries: int = 2,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint: Optional[Union[CheckpointJournal, str, Path]] = None,
    resume: bool = False,
    failures: Optional[list[FailedMeasurement]] = None,
    engine: str = "direct",
    families: Sequence[str] = (),
) -> dict[str, WorkloadEvaluation]:
    """Parallel counterpart of :func:`~repro.harness.reproduce.evaluate_all`.

    Fans the full matrix — every ``(benchmark, configuration, seed)`` — out
    over *jobs* worker processes.  Deterministic: results are numerically
    identical to the serial evaluation.

    Degradation semantics: a cell that fails all its retries becomes a
    :class:`FailedMeasurement` in *failures*; its benchmark survives as
    long as each required configuration keeps at least one measured trial
    (the optional random-pools series degrades to ``None``).  A benchmark
    whose prepare phase, or an entire required configuration, fails is
    dropped from the result dict and reported in *failures* — the rest of
    the matrix is unaffected.  With *checkpoint* set, completed cells are
    journalled; ``resume=True`` skips cells the journal already holds.
    """
    if jobs < 1:
        raise ValueError(f"need at least one job, got {jobs}")
    total = PhaseTimes()
    seeds = trial_seeds(trials, discard_first=True)
    configs = [c for c in CONFIGS if include_random or c != "random-pools"]
    # Extra allocator families ride the same wave; like random-pools they
    # are optional — a family whose trials all fail degrades to absence
    # from ``extra`` rather than dropping the benchmark.
    configs.extend(f for f in families if f not in configs)
    journal = _as_journal(checkpoint)
    done = _preload(journal, resume)
    all_failures: list[FailedMeasurement] = []

    with _effective_cache_dir(cache) as cache_dir:
        runner = _ResilientRunner(
            jobs,
            RetryPolicy(task_timeout=task_timeout, max_retries=max_retries),
            fault_plan=fault_plan,
            journal=journal,
        )
        try:
            # Wave 1: profile + analyse each benchmark once, into the cache.
            prep_specs = [
                _TaskSpec(
                    key=f"prepare:{name}",
                    fn=_prepare_task,
                    args=(name, cache_dir, None, None, True),
                    workload=name,
                    scale=scale,
                    kind="prepare",
                )
                for name in benchmarks
                if f"prepare:{name}" not in done
            ]
            prep = runner.run(prep_specs)
            all_failures.extend(prep.failures)
            _fold_report(total, prep)
            for summary in prep.fresh.values():
                total.add(summary.times)
            summaries: dict[str, PreparedSummary] = {}
            for name in benchmarks:
                summary = prep.fresh.get(f"prepare:{name}", done.get(f"prepare:{name}"))
                if summary is not None:
                    summaries[name] = summary
            survivors = [name for name in benchmarks if name in summaries]

            # Wave 2: every measurement, one task per (benchmark, config, seed).
            measure_specs = [
                _TaskSpec(
                    key=_measure_key(name, config, scale, seed),
                    fn=_measure_task,
                    args=(
                        MeasureTask(
                            workload=name,
                            config=config,
                            scale=scale,
                            seed=seed,
                            cache_dir=cache_dir,
                            engine=engine,
                        ),
                    ),
                    workload=name,
                    config=config,
                    scale=scale,
                    seed=seed,
                )
                for name in survivors
                for config in configs
                for seed in seeds
                if _measure_key(name, config, scale, seed) not in done
            ]
            measured = runner.run(measure_specs)
            all_failures.extend(measured.failures)
            _fold_report(total, measured)
            for _, times in measured.fresh.values():
                total.add(times)
        finally:
            runner.close()

    results = dict(done)
    results.update(prep.fresh)
    results.update(measured.fresh)

    evaluations: dict[str, WorkloadEvaluation] = {}
    for name in survivors:
        trials_by_config: dict[str, Optional[TrialResult]] = {}
        for config in configs:
            cells = {
                seed: results[_measure_key(name, config, scale, seed)][0]
                for seed in seeds
                if _measure_key(name, config, scale, seed) in results
            }
            trials_by_config[config] = _aggregate_seeded(cells, discard_first=True)
        missing = [
            c for c in ("baseline", "halo", "hds") if trials_by_config.get(c) is None
        ]
        if missing:
            logger.error(
                "dropping %s from the evaluation: no surviving trials for %s",
                name, ", ".join(missing),
            )
            continue
        summary = summaries[name]
        evaluations[name] = WorkloadEvaluation(
            name=name,
            baseline=trials_by_config["baseline"],
            halo=trials_by_config["halo"],
            hds=trials_by_config["hds"],
            random_pools=trials_by_config.get("random-pools"),
            halo_groups=summary.halo_groups,
            hds_groups=summary.hds_groups,
            hds_streams=summary.hds_streams,
            graph_nodes=summary.graph_nodes,
            extra={
                family: trials_by_config[family]
                for family in families
                if trials_by_config.get(family) is not None
            },
        )

    if failures is not None:
        failures.extend(all_failures)
    if phase_times is not None:
        phase_times.add(total)
    return evaluations


def table1_rows_parallel(
    benchmarks: Sequence[str],
    scale: str = "ref",
    jobs: int = 2,
    cache: Optional[ArtifactCache] = None,
    phase_times: Optional[PhaseTimes] = None,
    task_timeout: Optional[float] = None,
    max_retries: int = 2,
    fault_plan: Optional[FaultPlan] = None,
    failures: Optional[list[FailedMeasurement]] = None,
) -> list[tuple[str, float, int]]:
    """Parallel Table 1: ``(benchmark, fraction, wasted_bytes)`` rows.

    Row order follows *benchmarks* regardless of completion order; rows
    whose cell failed all retries are omitted and reported via *failures*.
    """
    policy = RetryPolicy(task_timeout=task_timeout, max_retries=max_retries)
    with _effective_cache_dir(cache) as cache_dir:
        runner = _ResilientRunner(jobs, policy, fault_plan=fault_plan)
        try:
            report = runner.run([
                _TaskSpec(
                    key=f"table1:{name}:{scale}",
                    fn=_table1_task,
                    args=(name, scale, cache_dir),
                    workload=name,
                    scale=scale,
                    kind="table1",
                )
                for name in benchmarks
            ])
        finally:
            runner.close()
    if failures is not None:
        failures.extend(report.failures)
    rows = []
    for name in benchmarks:
        value = report.fresh.get(f"table1:{name}:{scale}")
        if value is None:
            continue
        row_name, fraction, wasted, times = value
        if phase_times is not None:
            phase_times.add(times)
        rows.append((row_name, fraction, wasted))
    _fold_report(phase_times, report)
    return rows


# -- trace-driven parameter sweeps --------------------------------------------


@dataclass
class SweepPoint:
    """Offline-pipeline summary for one parameter configuration.

    What a sweep wants to see per config: how the affinity graph and the
    resulting grouping/instrumentation respond to the knobs.  All fields
    derive from a trace replay — no workload execution is involved.
    """

    workload: str
    affinity_distance: int
    merge_tolerance: float
    max_groups: Optional[int]
    groups: int
    grouped_contexts: int
    graph_nodes: int
    monitored_sites: int
    times: PhaseTimes = field(default_factory=PhaseTimes)


def _sweep_task(
    name: str, halo_params: HaloParams, cache_dir: Optional[str]
) -> SweepPoint:
    """Worker entry point: one pipeline run from trace for one config."""
    with obs_metrics.collecting() as registry:
        times = PhaseTimes()
        trace, trace_times = _trace_for(name, cache_dir)
        times.add(trace_times)
        workload = get_workload(name)
        with phase_span(times, "profile", workload=name, source="trace"):
            profile = replay_profile(trace, workload.program, halo_params)
        times.trace_replays += 1
        with phase_span(times, "analyse", workload=name):
            artifacts = optimise_profile(profile, halo_params)
        times.metrics = registry.snapshot()
    return SweepPoint(
        workload=name,
        affinity_distance=halo_params.affinity.distance,
        merge_tolerance=halo_params.grouping.merge_tolerance,
        max_groups=halo_params.max_groups,
        groups=len(artifacts.groups),
        grouped_contexts=sum(len(g.members) for g in artifacts.groups),
        graph_nodes=len(profile.graph),
        monitored_sites=len(monitored_sites(artifacts.identification.selectors)),
        times=times,
    )


def _sweep_key(name: str, config: HaloParams) -> str:
    """Stable journal key for one sweep point (parameter-content hash)."""
    digest = artifact_key(
        workload=name,
        profile_scale=PROFILE_SCALE,
        halo_params=config,
        kind="sweep-point",
    )
    return f"sweep:{name}:{digest[:16]}"


def run_sweep_parallel(
    name: str,
    configs: Sequence[HaloParams],
    jobs: int = 2,
    cache: Optional[ArtifactCache] = None,
    phase_times: Optional[PhaseTimes] = None,
    task_timeout: Optional[float] = None,
    max_retries: int = 2,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint: Optional[Union[CheckpointJournal, str, Path]] = None,
    resume: bool = False,
    failures: Optional[list[FailedMeasurement]] = None,
) -> list[SweepPoint]:
    """Fan a trace-driven parameter sweep out over worker processes.

    The workload is recorded at most once (a first wave populates the
    shared trace cache); every configuration then replays the recording.
    Point order follows *configs*; points that fail every retry are
    omitted and reported via *failures*.  A corrupt trace never fails a
    point: the replay layer falls back to direct execution per
    :func:`~repro.harness.prepare.prepare_workload` semantics.
    """
    if jobs < 1:
        raise ValueError(f"need at least one job, got {jobs}")
    total = PhaseTimes()
    journal = _as_journal(checkpoint)
    done = _preload(journal, resume)
    policy = RetryPolicy(task_timeout=task_timeout, max_retries=max_retries)
    with _effective_cache_dir(cache) as cache_dir:
        runner = _ResilientRunner(
            jobs, policy, fault_plan=fault_plan, journal=journal
        )
        try:
            record_key = f"record:{name}"
            if record_key not in done:
                record = runner.run([
                    _TaskSpec(
                        key=record_key,
                        fn=_record_trace_task,
                        args=(name, cache_dir),
                        workload=name,
                        kind="record",
                    )
                ])
                all_record_failures = record.failures
                _fold_report(total, record)
                for _, _, record_times in record.fresh.values():
                    total.add(record_times)
            else:
                all_record_failures = []
            keys = [_sweep_key(name, config) for config in configs]
            specs = [
                _TaskSpec(
                    key=key,
                    fn=_sweep_task,
                    args=(name, config, cache_dir),
                    workload=name,
                    config=f"point-{index}",
                    kind="sweep",
                )
                for index, (key, config) in enumerate(zip(keys, configs))
                if key not in done
            ]
            report = runner.run(specs)
        finally:
            runner.close()
    results = dict(done)
    results.update(report.fresh)
    points = [results[key] for key in keys if key in results]
    for point in report.fresh.values():
        if isinstance(point, SweepPoint):
            total.add(point.times)
    _fold_report(total, report)
    if failures is not None:
        failures.extend(all_record_failures)
        failures.extend(report.failures)
    if phase_times is not None:
        phase_times.add(total)
    return points
