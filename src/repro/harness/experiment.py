"""Multi-trial measurement methodology (paper Section 5.1).

The paper runs 11 trials per configuration, discards the first, and reports
the median of the remaining 10 with 25th/75th-percentile error bars.  In
this reproduction a trial's only run-to-run variation is the ASLR-style
randomisation of the simulated address space (heap base offsets), so a
handful of trials captures the placement noise; the trial count is a
parameter.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Callable, Sequence

from .runner import Measurement


def nearest_rank(ordered: Sequence[float], quantile: float) -> float:
    """The *quantile*-th value of pre-sorted *ordered* by nearest rank.

    The fractional rank ``quantile * (n - 1)`` is rounded half away from
    zero to the nearest integer index, so the 25th and 75th percentiles
    are computed symmetrically (the historical implementation truncated
    one and rounded the other).
    """
    if not ordered:
        raise ValueError("no values")
    rank = quantile * (len(ordered) - 1)
    index = int(rank + 0.5)
    return ordered[min(len(ordered) - 1, max(0, index))]


@dataclass(frozen=True)
class TrialStats:
    """Median and quartiles of one metric over the recorded trials."""

    median: float
    q25: float
    q75: float

    @staticmethod
    def of(values: Sequence[float]) -> "TrialStats":
        if not values:
            raise ValueError("no trial values")
        ordered = sorted(values)
        return TrialStats(
            median=statistics.median(ordered),
            q25=nearest_rank(ordered, 0.25),
            q75=nearest_rank(ordered, 0.75),
        )


@dataclass
class TrialResult:
    """Aggregate of repeated measurements of one configuration."""

    config: str
    measurements: list[Measurement]
    cycles: TrialStats
    l1_misses: TrialStats

    @property
    def representative(self) -> Measurement:
        """The measurement whose cycles are closest to the median."""
        return min(self.measurements, key=lambda m: abs(m.cycles - self.cycles.median))


def trial_seeds(trials: int, discard_first: bool = True) -> range:
    """The seed sequence :func:`run_trials` executes for *trials* trials.

    Exposed so the parallel runner can fan the exact same seeds out to
    worker processes and aggregate identically.
    """
    if trials < 1:
        raise ValueError(f"need at least one trial, got {trials}")
    return range(0, trials + (1 if discard_first else 0))


def aggregate_trials(
    measurements: Sequence[Measurement],
    discard_first: bool = True,
) -> TrialResult:
    """Fold seed-ordered *measurements* into a :class:`TrialResult`.

    The single aggregation path shared by the serial and parallel runners:
    identical measurement lists produce identical results regardless of
    where the measurements were executed.
    """
    kept = list(measurements[1:] if discard_first else measurements)
    if not kept:
        raise ValueError("no measurements to aggregate")
    return TrialResult(
        config=kept[0].config,
        measurements=kept,
        cycles=TrialStats.of([m.cycles for m in kept]),
        l1_misses=TrialStats.of([float(m.cache.l1_misses) for m in kept]),
    )


def run_trials(
    measure: Callable[[int], Measurement],
    trials: int = 3,
    discard_first: bool = True,
) -> TrialResult:
    """Run ``measure(seed)`` for several seeds and aggregate the results.

    Mirrors the paper's discard-the-first-trial warm-up convention: seed 0
    is executed and dropped when ``discard_first`` is set (its placement is
    the least randomised, playing the role of the cold-system run).
    """
    seeds = trial_seeds(trials, discard_first)
    return aggregate_trials([measure(seed) for seed in seeds], discard_first)


def miss_reduction(baseline: TrialResult, optimised: TrialResult) -> float:
    """Median L1D miss reduction, oriented as in paper Figure 13."""
    base = baseline.l1_misses.median
    if base == 0:
        return 0.0
    return (base - optimised.l1_misses.median) / base


def speedup(baseline: TrialResult, optimised: TrialResult) -> float:
    """Median execution-time speedup, oriented as in paper Figure 14."""
    cycles = optimised.cycles.median
    if cycles == 0:
        return 0.0
    return baseline.cycles.median / cycles - 1.0
