"""Entry points that regenerate every evaluation table and figure.

One function per paper artefact:

* :func:`figure12` — omnetpp execution time across affinity distances;
* :func:`figure13` — L1D miss reduction, HDS vs HALO, all 11 benchmarks;
* :func:`figure14` — speedup, HDS vs HALO, all 11 benchmarks;
* :func:`figure15` — speedup under the random 4-pool allocator;
* :func:`table1` — grouped-object fragmentation at peak memory usage;
* :func:`roms_representation_blowup` — §5.2's 31-nodes-vs-150k-streams
  comparison.

``evaluate_workload`` does the shared work (profile once, analyse with both
techniques, measure all configurations over trials) so figures 13/14 come
from a single set of runs, exactly as in the paper.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.artifact_cache import ArtifactCache
from ..core.pipeline import HaloParams
from ..obs.spans import phase_span
from ..hds.pipeline import analyse_profile
from ..workloads.base import get_workload
from .runner import (
    measure_baseline,
    measure_family,
    measure_halo,
    measure_hds,
    measure_random_pools,
)
from .experiment import run_trials
from .prepare import (
    PROFILE_SCALE,
    PhaseTimes,
    WorkloadEvaluation,
    build_evaluation,
    get_or_record_trace,
    halo_params_for,
    hds_params_for,
    prepare_workload,
)

logger = logging.getLogger(__name__)

#: Benchmarks in the paper's presentation order (Figures 13-15 x-axis).
PAPER_BENCHMARKS = (
    "health", "ft", "analyzer", "ammp", "art", "equake",
    "povray", "omnetpp", "xalanc", "leela", "roms",
)

#: The nine benchmarks of Table 1, in its row order.
TABLE1_BENCHMARKS = (
    "health", "equake", "analyzer", "ammp", "art", "ft",
    "povray", "roms", "leela",
)


def evaluate_workload(
    name: str,
    trials: int = 3,
    scale: str = "ref",
    include_random: bool = True,
    halo_params: Optional[HaloParams] = None,
    cache: Optional[ArtifactCache] = None,
    phase_times: Optional[PhaseTimes] = None,
    engine: str = "direct",
    families: Sequence[str] = (),
) -> WorkloadEvaluation:
    """Profile, optimise and measure one benchmark under every configuration.

    With a *cache*, the profile + analyse phases are skipped on warm
    re-runs; *phase_times*, when given, accumulates the per-phase
    wall-time spent here.  *engine* selects the measurement backend:
    ``direct`` executes each workload, while ``auto``/``columnar``/
    ``event`` measure from the recorded event trace (one recording
    serves every configuration and trial) — trace-driven measurement
    requires the trace scale, so other scales fall back to direct runs.
    *families* names extra standalone allocator families
    (:data:`repro.allocators.ALLOCATOR_FAMILIES`) to measure alongside
    the paper configurations; their trials land in the evaluation's
    ``extra`` mapping.
    """
    workload = get_workload(name)
    prepared = prepare_workload(name, halo_params=halo_params, cache=cache, workload=workload)

    measure_kwargs: dict = {}
    if engine != "direct":
        if scale == PROFILE_SCALE:
            trace = get_or_record_trace(
                name, cache=cache, workload=workload, times=phase_times
            )
            measure_kwargs = {"trace": trace, "engine": engine}
        else:
            logger.debug(
                "trace-driven measurement is only recorded at scale=%s; "
                "measuring %s at scale=%s directly", PROFILE_SCALE, name, scale,
            )

    with phase_span(phase_times, "measure", workload=name):
        baseline = run_trials(
            lambda seed: measure_baseline(
                workload, scale=scale, seed=seed, **measure_kwargs
            ), trials
        )
        halo = run_trials(
            lambda seed: measure_halo(
                workload, prepared.halo, scale=scale, seed=seed, **measure_kwargs
            ), trials
        )
        hds = run_trials(
            lambda seed: measure_hds(
                workload, prepared.hds, scale=scale, seed=seed, **measure_kwargs
            ), trials
        )
        random_pools = None
        if include_random:
            random_pools = run_trials(
                lambda seed: measure_random_pools(
                    workload, scale=scale, seed=seed, **measure_kwargs
                ), trials
            )
        extra = {
            family: run_trials(
                lambda seed, family=family: measure_family(
                    workload, family, scale=scale, seed=seed, **measure_kwargs
                ), trials
            )
            for family in families
        }
    if phase_times is not None:
        phase_times.add(prepared.times)
    return build_evaluation(prepared, baseline, halo, hds, random_pools, extra=extra)


def evaluate_all(
    benchmarks: Sequence[str] = PAPER_BENCHMARKS,
    trials: int = 3,
    scale: str = "ref",
    include_random: bool = True,
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    phase_times: Optional[PhaseTimes] = None,
    task_timeout: Optional[float] = None,
    max_retries: int = 2,
    checkpoint=None,
    resume: bool = False,
    failures: Optional[list] = None,
    engine: str = "direct",
    families: Sequence[str] = (),
) -> dict[str, WorkloadEvaluation]:
    """Run the full evaluation matrix (figures 13, 14 and 15 share it).

    ``jobs > 1`` fans the matrix out over worker processes via
    :mod:`repro.harness.parallel`; results are identical to the serial
    path either way.  The resilience knobs (*task_timeout*, *max_retries*,
    *checkpoint*/*resume*, *failures*) only apply to the parallel engine.
    """
    if jobs > 1:
        from .parallel import evaluate_all_parallel

        return evaluate_all_parallel(
            benchmarks,
            trials=trials,
            scale=scale,
            include_random=include_random,
            jobs=jobs,
            cache=cache,
            phase_times=phase_times,
            task_timeout=task_timeout,
            max_retries=max_retries,
            checkpoint=checkpoint,
            resume=resume,
            failures=failures,
            engine=engine,
            families=families,
        )
    return {
        name: evaluate_workload(
            name,
            trials=trials,
            scale=scale,
            include_random=include_random,
            cache=cache,
            phase_times=phase_times,
            engine=engine,
            families=families,
        )
        for name in benchmarks
    }


# ---------------------------------------------------------------------------
# Figure/table front ends
# ---------------------------------------------------------------------------


@dataclass
class FigureSeries:
    """One named series of per-benchmark values."""

    label: str
    values: dict[str, float]


@dataclass
class FigureResult:
    """Data behind one reproduced figure."""

    figure: str
    series: list[FigureSeries]
    notes: dict[str, float] = field(default_factory=dict)


def figure13(evaluations: dict[str, WorkloadEvaluation]) -> FigureResult:
    """L1D miss reduction, Chilimbi et al. (HDS) vs HALO."""
    return FigureResult(
        figure="Figure 13: L1D cache miss reduction",
        series=[
            FigureSeries(
                "Chilimbi et al.",
                {n: e.hds_miss_reduction for n, e in evaluations.items()},
            ),
            FigureSeries(
                "HALO", {n: e.halo_miss_reduction for n, e in evaluations.items()}
            ),
        ],
    )


def figure14(evaluations: dict[str, WorkloadEvaluation]) -> FigureResult:
    """Execution-time speedup, Chilimbi et al. (HDS) vs HALO."""
    return FigureResult(
        figure="Figure 14: speedup",
        series=[
            FigureSeries(
                "Chilimbi et al.", {n: e.hds_speedup for n, e in evaluations.items()}
            ),
            FigureSeries("HALO", {n: e.halo_speedup for n, e in evaluations.items()}),
        ],
    )


def figure15(evaluations: dict[str, WorkloadEvaluation]) -> FigureResult:
    """Speedup under the random 4-pool allocator (placement sensitivity)."""
    return FigureResult(
        figure="Figure 15: random 4-pool allocator speedup",
        series=[
            FigureSeries(
                "random pools", {n: e.random_speedup for n, e in evaluations.items()}
            )
        ],
    )


def figure12(
    distances: Sequence[int] = tuple(2**k for k in range(3, 14)),
    trials: int = 3,
    scale: str = "ref",
    benchmark: str = "omnetpp",
    cache: Optional[ArtifactCache] = None,
    phase_times: Optional[PhaseTimes] = None,
) -> FigureResult:
    """omnetpp execution time across affinity distances, vs the baseline.

    Values are simulated cycles (the paper reports seconds); the dashed
    baseline of the original plot is returned in ``notes['baseline']``.

    The default sweep stops at 2^13 rather than the paper's 2^17: profiling
    cost grows with the affinity window (the paper itself notes the
    overhead trade-off), and the curve has flattened by then.  Pass a wider
    ``distances`` for the full range.
    """
    workload = get_workload(benchmark)
    with phase_span(phase_times, "measure", workload=benchmark):
        baseline = run_trials(
            lambda seed: measure_baseline(workload, scale=scale, seed=seed), trials
        )
    times: dict[str, float] = {}
    for distance in distances:
        params = halo_params_for(workload).with_affinity_distance(distance)
        prepared = prepare_workload(
            benchmark, halo_params=params, include_hds=False, cache=cache, workload=workload
        )
        if phase_times is not None:
            phase_times.add(prepared.times)
        with phase_span(phase_times, "measure", workload=benchmark, distance=distance):
            result = run_trials(
                lambda seed: measure_halo(workload, prepared.halo, scale=scale, seed=seed), trials
            )
        times[str(distance)] = result.cycles.median
    return FigureResult(
        figure=f"Figure 12: {benchmark} time vs affinity distance",
        series=[FigureSeries("HALO cycles", times)],
        notes={"baseline": baseline.cycles.median},
    )


@dataclass
class FragmentationRow:
    """One row of Table 1."""

    benchmark: str
    fraction: float
    wasted_bytes: int


def table1(
    benchmarks: Sequence[str] = TABLE1_BENCHMARKS,
    scale: str = "ref",
    jobs: int = 1,
    cache: Optional[ArtifactCache] = None,
    phase_times: Optional[PhaseTimes] = None,
    task_timeout: Optional[float] = None,
    max_retries: int = 2,
    failures: Optional[list] = None,
) -> list[FragmentationRow]:
    """Fragmentation behaviour of grouped objects at peak memory usage."""
    if jobs > 1:
        from .parallel import table1_rows_parallel

        return [
            FragmentationRow(name, fraction, wasted)
            for name, fraction, wasted in table1_rows_parallel(
                benchmarks, scale=scale, jobs=jobs, cache=cache, phase_times=phase_times,
                task_timeout=task_timeout, max_retries=max_retries, failures=failures,
            )
        ]
    rows = []
    for name in benchmarks:
        workload = get_workload(name)
        prepared = prepare_workload(name, include_hds=False, cache=cache, workload=workload)
        if phase_times is not None:
            phase_times.add(prepared.times)
        with phase_span(phase_times, "measure", workload=name):
            measurement = measure_halo(workload, prepared.halo, scale=scale, seed=1)
        frag = measurement.frag_at_peak
        if frag is None:
            rows.append(FragmentationRow(name, 0.0, 0))
        else:
            rows.append(FragmentationRow(name, frag.fraction, frag.wasted_bytes))
    return rows


@dataclass
class RepresentationComparison:
    """§5.2's representation-size comparison on roms."""

    benchmark: str
    affinity_graph_nodes: int
    hot_streams: int


def roms_representation_blowup(
    scale: str = "test",
    cache: Optional[ArtifactCache] = None,
) -> RepresentationComparison:
    """Affinity-graph nodes vs hot-stream count for roms."""
    workload = get_workload("roms")
    if scale == "test":
        # The standard profile scale: share the evaluation's cached artifacts.
        prepared = prepare_workload("roms", cache=cache, workload=workload)
        profile, hds_artifacts = prepared.profile, prepared.hds
    else:
        from ..core.pipeline import profile_workload

        params = halo_params_for(workload)
        profile = profile_workload(workload, params, scale=scale, record_trace=True)
        hds_artifacts = analyse_profile(profile, hds_params_for(workload))
    return RepresentationComparison(
        benchmark="roms",
        affinity_graph_nodes=len(profile.graph),
        hot_streams=hds_artifacts.stream_count,
    )
