"""Measurement harness: runners, trial methodology, figure reproduction."""

from .experiment import TrialResult, TrialStats, miss_reduction, run_trials, speedup
from .tracer import AccessTrace, AccessTraceRecorder, replay_geometries
from .runner import (
    Measurement,
    PeakTracker,
    measure_baseline,
    measure_calder,
    measure_halo,
    measure_hds,
    measure_random_pools,
    run_measurement,
    total_live_bytes,
)

__all__ = [
    "AccessTrace",
    "AccessTraceRecorder",
    "Measurement",
    "PeakTracker",
    "TrialResult",
    "TrialStats",
    "measure_baseline",
    "measure_calder",
    "measure_halo",
    "measure_hds",
    "measure_random_pools",
    "miss_reduction",
    "run_measurement",
    "replay_geometries",
    "run_trials",
    "speedup",
    "total_live_bytes",
]
