"""Measurement harness: runners, trial methodology, figure reproduction."""

from .experiment import (
    TrialResult,
    TrialStats,
    aggregate_trials,
    miss_reduction,
    run_trials,
    speedup,
    trial_seeds,
)
from .parallel import evaluate_all_parallel, run_trials_parallel
from .prepare import (
    PhaseTimes,
    PreparedArtifacts,
    WorkloadEvaluation,
    halo_params_for,
    hds_params_for,
    prepare_workload,
)
from ..trace.access import AccessTrace, AccessTraceRecorder, replay_geometries
from .runner import (
    Measurement,
    PeakTracker,
    measure_baseline,
    measure_calder,
    measure_halo,
    measure_hds,
    measure_random_pools,
    run_measurement,
    total_live_bytes,
)

__all__ = [
    "AccessTrace",
    "AccessTraceRecorder",
    "Measurement",
    "PeakTracker",
    "PhaseTimes",
    "PreparedArtifacts",
    "TrialResult",
    "TrialStats",
    "WorkloadEvaluation",
    "aggregate_trials",
    "evaluate_all_parallel",
    "halo_params_for",
    "hds_params_for",
    "measure_baseline",
    "measure_calder",
    "measure_halo",
    "measure_hds",
    "measure_random_pools",
    "miss_reduction",
    "prepare_workload",
    "run_measurement",
    "replay_geometries",
    "run_trials",
    "run_trials_parallel",
    "speedup",
    "total_live_bytes",
    "trial_seeds",
]
