"""On-disk checkpoint journal for the resilient evaluation engine.

The parallel engine's unit of work is one cell of the evaluation matrix —
a ``(benchmark, configuration, seed)`` measurement, a prepare task, or a
sweep point.  The journal records each completed cell as it finishes, so
an interrupted or partially-failed run resumes from completed work
instead of re-measuring the whole matrix (cells are deterministic, so a
resumed run is bit-identical to an uninterrupted one).

Record framing is corruption-tolerant by construction: each record is
``MAGIC | u32 payload length | u32 CRC32 | pickled (key, value)``.  A torn
tail (the process died mid-append) or a bit-flipped record fails its
length/CRC/unpickle check and everything from that point on is ignored —
the cells it covered are simply re-run.  Appends are flushed + fsynced so
a completed cell survives a subsequent hard kill.
"""

from __future__ import annotations

import logging
import os
import pickle
import struct
import zlib
from pathlib import Path
from typing import Any, Iterator, Optional, Union

logger = logging.getLogger(__name__)

#: Per-record frame marker; also guards against resuming a foreign file.
RECORD_MAGIC = b"HALOCKPT"

_LEN_CRC = struct.Struct("<II")


class CheckpointJournal:
    """Append-only journal of completed evaluation cells.

    Args:
        path: Journal file; created (with parents) on first append.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)

    # -- writing -----------------------------------------------------------

    def append(self, key: str, value: Any) -> None:
        """Durably record that cell *key* completed with *value*."""
        payload = pickle.dumps((key, value), protocol=pickle.HIGHEST_PROTOCOL)
        frame = b"".join(
            (RECORD_MAGIC, _LEN_CRC.pack(len(payload), zlib.crc32(payload)), payload)
        )
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "ab") as handle:
            handle.write(frame)
            handle.flush()
            os.fsync(handle.fileno())

    # -- reading -----------------------------------------------------------

    def _iter_records(self) -> Iterator[tuple[str, Any]]:
        """Yield valid ``(key, value)`` records until the first damaged one."""
        try:
            raw = self.path.read_bytes()
        except OSError:
            return
        pos = 0
        head = len(RECORD_MAGIC) + _LEN_CRC.size
        while pos + head <= len(raw):
            if raw[pos:pos + len(RECORD_MAGIC)] != RECORD_MAGIC:
                logger.warning(
                    "checkpoint journal %s: bad record magic at offset %d; "
                    "ignoring the rest", self.path, pos,
                )
                return
            length, crc = _LEN_CRC.unpack_from(raw, pos + len(RECORD_MAGIC))
            start = pos + head
            end = start + length
            if end > len(raw):
                logger.warning(
                    "checkpoint journal %s: torn record at offset %d; "
                    "ignoring the rest", self.path, pos,
                )
                return
            payload = raw[start:end]
            if zlib.crc32(payload) != crc:
                logger.warning(
                    "checkpoint journal %s: checksum mismatch at offset %d; "
                    "ignoring the rest", self.path, pos,
                )
                return
            try:
                key, value = pickle.loads(payload)
            except Exception:
                logger.warning(
                    "checkpoint journal %s: unreadable record at offset %d; "
                    "ignoring the rest", self.path, pos,
                )
                return
            yield key, value
            pos = end

    def load(self) -> dict[str, Any]:
        """All validly recorded cells (later records win on duplicate keys)."""
        return dict(self._iter_records())

    # -- maintenance -------------------------------------------------------

    def clear(self) -> None:
        """Delete the journal file (a fresh run starts from nothing)."""
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    def __len__(self) -> int:
        return sum(1 for _ in self._iter_records())


def journal_for(
    cache_dir: Optional[Union[str, Path]], label: str
) -> CheckpointJournal:
    """The conventional journal location for one pipeline entry point.

    Lives beside the artifact cache when one is configured (so ``--resume``
    finds it without extra flags), else in the working directory.
    """
    root = Path(cache_dir) if cache_dir is not None else Path(".")
    return CheckpointJournal(root / f"checkpoint-{label}.journal")
