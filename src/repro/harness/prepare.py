"""Shared offline-phase preparation for the evaluation engine.

Both the serial path (:mod:`repro.harness.reproduce`) and the parallel
engine (:mod:`repro.harness.parallel`) need the same expensive inputs
before they can measure anything: a trace-recording profile of the
workload, the HALO artifacts derived from it, and (for Figures 13/14) the
hot-data-streams artifacts.  :func:`prepare_workload` produces all three,
consulting an optional :class:`~repro.core.artifact_cache.ArtifactCache`
so warm re-runs skip the profile and analyse phases entirely, and reports
how long each phase took so the speedup is observable in the per-phase
wall-time report.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Optional

from ..core.artifact_cache import ArtifactCache, artifact_key
from ..obs.metrics import MetricsSnapshot
from ..obs.spans import phase_span
from ..core.pipeline import HaloArtifacts, HaloParams, optimise_profile, profile_workload
from ..hds.pipeline import HdsArtifacts, HdsParams, analyse_profile
from ..profiling.profiler import ProfileResult
from ..trace.format import EventTrace, TraceFormatError
from ..trace.record import record_workload
from ..trace.replay import replay_profile
from ..workloads.base import Workload, get_workload
from .experiment import TrialResult, miss_reduction, speedup

logger = logging.getLogger(__name__)

#: Scale every evaluation profile is recorded at (paper: "workloads are
#: profiled on small test inputs and measured using larger ref inputs").
PROFILE_SCALE = "test"


def halo_params_for(workload: Workload, **overrides) -> HaloParams:
    """HALO parameters for *workload*, honouring its artefact-appendix quirks."""
    merged = dict(workload.halo_overrides)
    merged.update(overrides)
    return HaloParams(**merged)


def hds_params_for(workload: Workload, **overrides) -> HdsParams:
    """HDS parameters for *workload*, honouring its quirks."""
    merged = dict(workload.hds_overrides)
    merged.update(overrides)
    return HdsParams(**merged)


@dataclass
class PhaseTimes:
    """Accumulated wall-time (seconds) per evaluation phase.

    In a parallel run the times are summed across worker tasks, so they
    report the *work done* per phase rather than elapsed wall-clock; a
    warm artifact cache shows up as ``profile`` and ``analyse`` collapsing
    to ~0 while ``measure`` is unchanged.
    """

    profile: float = 0.0
    analyse: float = 0.0
    measure: float = 0.0
    #: Wall-time spent recording event traces (a one-off per workload).
    record: float = 0.0
    #: Artifact-cache traffic observed while accumulating.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Event-trace traffic: fresh recordings vs profile replays from trace.
    trace_records: int = 0
    trace_replays: int = 0
    #: Degradations: corrupt traces replaced by direct execution, and
    #: measurement cells that needed a retry before succeeding.
    trace_fallbacks: int = 0
    task_retries: int = 0
    #: Resilient-engine churn: healthy tasks requeued after a pool
    #: rebuild, and the rebuilds themselves.
    requeues: int = 0
    pool_rebuilds: int = 0
    #: Metrics collected in the process that produced these times
    #: (worker tasks attach a snapshot here so the coordinator can merge
    #: it; ``None`` on the serial path, which publishes directly).
    metrics: Optional[MetricsSnapshot] = None

    def add(self, other: "PhaseTimes") -> None:
        """Fold *other*'s counters (and metrics snapshot) into this one."""
        self.profile += other.profile
        self.analyse += other.analyse
        self.measure += other.measure
        self.record += other.record
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.trace_records += other.trace_records
        self.trace_replays += other.trace_replays
        self.trace_fallbacks += other.trace_fallbacks
        self.task_retries += other.task_retries
        self.requeues += other.requeues
        self.pool_rebuilds += other.pool_rebuilds
        if other.metrics is not None:
            if self.metrics is None:
                self.metrics = MetricsSnapshot()
            self.metrics.merge(other.metrics)

    def report(self, wall: Optional[float] = None) -> str:
        """One-line human-readable report."""
        parts = [
            f"profile {self.profile:8.2f}s",
            f"analyse {self.analyse:8.2f}s",
            f"measure {self.measure:8.2f}s",
        ]
        if self.record:
            parts.append(f"record {self.record:8.2f}s")
        if self.cache_hits or self.cache_misses:
            parts.append(f"cache {self.cache_hits} hit / {self.cache_misses} miss")
        if self.trace_records or self.trace_replays:
            parts.append(
                f"trace {self.trace_records} recorded / {self.trace_replays} replayed"
            )
        if self.trace_fallbacks:
            parts.append(f"degraded {self.trace_fallbacks} trace fallback(s)")
        if self.task_retries:
            parts.append(f"retried {self.task_retries} task(s)")
        if self.requeues:
            parts.append(f"requeued {self.requeues} task(s)")
        if self.pool_rebuilds:
            parts.append(f"rebuilt pool {self.pool_rebuilds}x")
        line = "phase wall-time:  " + "   ".join(parts)
        if wall is not None:
            line += f"   (elapsed {wall:.2f}s)"
        return line


def trace_key_for(name: str, scale: str = PROFILE_SCALE) -> str:
    """Cache key of the event trace for (*name*, *scale*).

    Deliberately excludes every HALO/HDS parameter: the recorded event
    stream is a pure function of the workload and scale, so one cached
    trace serves all parameter configurations — that sharing is the whole
    point of trace-driven re-runs.
    """
    return artifact_key(
        workload=name, profile_scale=scale, kind="event-trace"
    )


def get_or_record_trace(
    name: str,
    cache: Optional[ArtifactCache] = None,
    workload: Optional[Workload] = None,
    scale: str = PROFILE_SCALE,
    times: Optional[PhaseTimes] = None,
) -> EventTrace:
    """Fetch the event trace for *name* from *cache*, recording on a miss.

    The freshly recorded trace is stored back (when a cache is present) so
    later preparations — in this or any worker process, under any
    parameter configuration — replay instead of re-executing.

    A cached trace whose body fails its header checksum is treated as a
    miss and re-recorded: corruption degrades to a re-record, never to
    garbage events.
    """
    key = trace_key_for(name, scale)
    if cache is not None:
        cached = cache.get(key)
        if isinstance(cached, EventTrace):
            if cached.verify():
                if times is not None:
                    times.cache_hits += 1
                return cached
            logger.warning(
                "cached trace for %s (%s) failed its checksum; re-recording",
                name, scale,
            )
        if times is not None:
            times.cache_misses += 1
    with phase_span(times, "record", workload=name):
        trace = record_workload(workload if workload is not None else name, scale=scale)
    if times is not None:
        times.trace_records += 1
    if cache is not None:
        cache.put(key, trace)
    return trace


@dataclass
class PreparedArtifacts:
    """The offline-phase outputs for one benchmark.

    ``hds`` is None when preparation was requested without the HDS
    analysis (Table 1 only needs HALO artifacts).
    """

    workload_name: str
    profile: ProfileResult
    halo: HaloArtifacts
    hds: Optional[HdsArtifacts]
    key: str
    from_cache: bool = False
    times: PhaseTimes = field(default_factory=PhaseTimes)


def prepare_workload(
    name: str,
    halo_params: Optional[HaloParams] = None,
    hds_params: Optional[HdsParams] = None,
    include_hds: bool = True,
    cache: Optional[ArtifactCache] = None,
    workload: Optional[Workload] = None,
    trace: Optional[EventTrace] = None,
    use_trace: Optional[bool] = None,
) -> PreparedArtifacts:
    """Profile *name* and derive HALO (and optionally HDS) artifacts.

    Deterministic: two calls with the same arguments produce identical
    artifacts, whether they run in this process, a worker process, or are
    replayed from the cache — which is what lets the parallel engine and
    the warm-cache path reproduce the serial results bit-for-bit.

    When an event *trace* is supplied (or ``use_trace`` enables the
    trace-driven path — the default whenever a cache is available), the
    profile is obtained by replaying the recorded event stream instead of
    re-executing the workload.  Replay is bit-identical to direct
    profiling, and the trace's cache key excludes all HALO/HDS parameters,
    so sweeping parameters re-records nothing.
    """
    workload = workload if workload is not None else get_workload(name)
    halo_params = halo_params or halo_params_for(workload)
    hds_params = hds_params or hds_params_for(workload)
    key = artifact_key(
        workload=name,
        profile_scale=PROFILE_SCALE,
        halo_params=halo_params,
        hds_params=hds_params,
    )
    times = PhaseTimes()

    if cache is not None:
        cached = cache.get(key)
        if isinstance(cached, PreparedArtifacts) and (cached.hds is not None or not include_hds):
            times.cache_hits += 1
            return PreparedArtifacts(
                workload_name=name,
                profile=cached.profile,
                halo=cached.halo,
                hds=cached.hds,
                key=key,
                from_cache=True,
                times=times,
            )
        if isinstance(cached, PreparedArtifacts):
            # Entry exists but lacks the HDS half: upgrade it in place.
            times.cache_hits += 1
            with phase_span(times, "analyse", workload=name):
                hds = analyse_profile(cached.profile, hds_params)
            prepared = PreparedArtifacts(
                workload_name=name,
                profile=cached.profile,
                halo=cached.halo,
                hds=hds,
                key=key,
                from_cache=True,
                times=times,
            )
            cache.put(key, _strip_for_cache(prepared))
            return prepared
        times.cache_misses += 1

    if use_trace is None:
        use_trace = trace is not None or cache is not None
    profile = None
    if use_trace:
        if trace is None:
            trace = get_or_record_trace(
                name, cache=cache, workload=workload, times=times
            )
        with phase_span(times, "profile", workload=name, source="trace"):
            try:
                profile = replay_profile(
                    trace, workload.program, halo_params, record_trace=True
                )
                times.trace_replays += 1
            except TraceFormatError as exc:
                # Graceful degradation: a corrupt or truncated trace falls
                # back to direct workload execution, which produces the same
                # profile the replay would have (replay is bit-identical).
                logger.warning(
                    "trace replay for %s failed (%s); falling back to direct execution",
                    name, exc,
                )
                times.trace_fallbacks += 1
                profile = None
    if profile is None:
        with phase_span(times, "profile", workload=name, source="direct"):
            profile = profile_workload(
                workload, halo_params, scale=PROFILE_SCALE, record_trace=True
            )

    with phase_span(times, "analyse", workload=name):
        halo = optimise_profile(profile, halo_params)
        hds = analyse_profile(profile, hds_params) if include_hds else None

    prepared = PreparedArtifacts(
        workload_name=name,
        profile=profile,
        halo=halo,
        hds=hds,
        key=key,
        from_cache=False,
        times=times,
    )
    if cache is not None:
        cache.put(key, _strip_for_cache(prepared))
    return prepared


def _strip_for_cache(prepared: PreparedArtifacts) -> PreparedArtifacts:
    """Copy of *prepared* without run-local timing/cache-state fields."""
    return PreparedArtifacts(
        workload_name=prepared.workload_name,
        profile=prepared.profile,
        halo=prepared.halo,
        hds=prepared.hds,
        key=prepared.key,
    )


@dataclass
class WorkloadEvaluation:
    """All measurements for one benchmark."""

    name: str
    baseline: TrialResult
    halo: TrialResult
    hds: TrialResult
    random_pools: Optional[TrialResult]
    halo_groups: int
    hds_groups: int
    hds_streams: int
    graph_nodes: int
    #: Extra standalone allocator families measured alongside the paper
    #: configurations, keyed by family name (``freelist-ff``, ``arena``...).
    extra: dict[str, TrialResult] = field(default_factory=dict)

    @property
    def halo_miss_reduction(self) -> float:
        return miss_reduction(self.baseline, self.halo)

    @property
    def hds_miss_reduction(self) -> float:
        return miss_reduction(self.baseline, self.hds)

    @property
    def halo_speedup(self) -> float:
        return speedup(self.baseline, self.halo)

    @property
    def hds_speedup(self) -> float:
        return speedup(self.baseline, self.hds)

    @property
    def random_speedup(self) -> float:
        if self.random_pools is None:
            return 0.0
        return speedup(self.baseline, self.random_pools)

    def family_speedup(self, family: str) -> float:
        """Speedup of an extra *family* over the baseline (0.0 if missing)."""
        trial = self.extra.get(family)
        if trial is None:
            return 0.0
        return speedup(self.baseline, trial)


def build_evaluation(
    prepared: PreparedArtifacts,
    baseline: TrialResult,
    halo: TrialResult,
    hds: TrialResult,
    random_pools: Optional[TrialResult],
    extra: Optional[dict[str, TrialResult]] = None,
) -> WorkloadEvaluation:
    """Assemble a :class:`WorkloadEvaluation` from trial results + artifacts."""
    assert prepared.hds is not None, "evaluation needs the HDS artifacts"
    return WorkloadEvaluation(
        name=prepared.workload_name,
        baseline=baseline,
        halo=halo,
        hds=hds,
        random_pools=random_pools,
        halo_groups=len(prepared.halo.groups),
        hds_groups=len(prepared.hds.groups),
        hds_streams=prepared.hds.stream_count,
        graph_nodes=len(prepared.profile.graph),
        extra=dict(extra or {}),
    )
