"""Deprecated re-export of the byte-address trace tools.

The implementation moved to :mod:`repro.trace.access` when the full
event-trace subsystem (:mod:`repro.trace`) unified the repo's notions of
"trace".  Importing this module warns; import from
:mod:`repro.trace.access` instead.  The shim will be removed once
nothing in the wild imports it.
"""

from __future__ import annotations

import warnings

warnings.warn(
    "repro.harness.tracer is deprecated; import from repro.trace.access instead",
    DeprecationWarning,
    stacklevel=2,
)

from ..trace.access import (  # noqa: F401,E402
    AccessTrace,
    AccessTraceRecorder,
    derive_access_trace,
    replay_geometries,
)

__all__ = [
    "AccessTrace",
    "AccessTraceRecorder",
    "derive_access_trace",
    "replay_geometries",
]
