"""Backwards-compatible re-export of the byte-address trace tools.

The implementation moved to :mod:`repro.trace.access` when the full
event-trace subsystem (:mod:`repro.trace`) unified the repo's notions of
"trace"; import from there in new code.
"""

from __future__ import annotations

from ..trace.access import (  # noqa: F401
    AccessTrace,
    AccessTraceRecorder,
    derive_access_trace,
    replay_geometries,
)

__all__ = [
    "AccessTrace",
    "AccessTraceRecorder",
    "derive_access_trace",
    "replay_geometries",
]
