"""repro — a simulation-backed reproduction of HALO (CGO 2020).

HALO ("Heap Allocation Layout Optimiser", Savage & Jones) is a post-link,
profile-guided optimisation tool that clusters related heap-allocation
contexts and synthesises a specialised pool allocator to co-locate them,
cutting L1 data-cache misses.  This package rebuilds the complete system —
profiler, affinity analysis, grouping, selector synthesis, binary-rewriting
model, the specialised allocator, the hot-data-streams comparison
technique, a cache-hierarchy simulator, and synthetic stand-ins for the 11
evaluation benchmarks — in pure Python.

Quick start::

    from repro import (
        get_workload, HaloParams, profile_workload, optimise_profile,
        measure_baseline, measure_halo,
    )

    workload = get_workload("povray")
    profile = profile_workload(workload, HaloParams(), scale="test")
    artifacts = optimise_profile(profile)
    before = measure_baseline(workload)
    after = measure_halo(workload, artifacts)
    print(1 - after.cache.l1_misses / before.cache.l1_misses)

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every table and figure.
"""

from .allocators import (
    AddressSpace,
    BumpAllocator,
    GroupAllocator,
    RandomPoolAllocator,
    SizeClassAllocator,
)
from .cache import CacheHierarchy, CostModel, HierarchyConfig
from .core import (
    GroupingParams,
    HaloArtifacts,
    HaloParams,
    group_contexts,
    make_runtime,
    optimise_profile,
    optimise_workload,
    profile_workload,
    synthesise_selectors,
)
from .harness import (
    Measurement,
    measure_baseline,
    measure_halo,
    measure_hds,
    measure_random_pools,
    run_trials,
)
from .hds import HdsParams, Sequitur, analyse_profile, extract_hot_streams
from .machine import Machine, Program, ProgramBuilder
from . import obs
from .obs import MetricsRegistry, MetricsSnapshot
from .profiling import AffinityGraph, AffinityParams, Profiler, ProfileResult
from .trace import (
    EventTrace,
    TraceRecorder,
    TraceReplayer,
    record_workload,
    replay_profile,
)
from .workloads import Workload, get_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "AddressSpace",
    "AffinityGraph",
    "AffinityParams",
    "BumpAllocator",
    "CacheHierarchy",
    "CostModel",
    "EventTrace",
    "GroupAllocator",
    "GroupingParams",
    "HaloArtifacts",
    "HaloParams",
    "HdsParams",
    "HierarchyConfig",
    "Machine",
    "Measurement",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Profiler",
    "ProfileResult",
    "Program",
    "ProgramBuilder",
    "RandomPoolAllocator",
    "Sequitur",
    "SizeClassAllocator",
    "TraceRecorder",
    "TraceReplayer",
    "Workload",
    "analyse_profile",
    "extract_hot_streams",
    "get_workload",
    "group_contexts",
    "make_runtime",
    "measure_baseline",
    "measure_halo",
    "measure_hds",
    "measure_random_pools",
    "obs",
    "optimise_profile",
    "optimise_workload",
    "profile_workload",
    "record_workload",
    "replay_profile",
    "run_trials",
    "synthesise_selectors",
    "workload_names",
]
