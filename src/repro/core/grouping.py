"""Greedy affinity-graph grouping (paper Section 4.2, Figure 6).

The algorithm repeatedly grows tight-knit clusters around the most promising
opportunities in the affinity graph: seed a singleton group with the hotter
endpoint of the strongest ungrouped edge, then repeatedly merge in the
ungrouped node with the largest positive merge benefit until none remains or
the member cap is hit.  Groups whose internal weight falls below
``graph.accesses * group_threshold`` are discarded.

The paper finds these clusters "more amenable to region-based co-allocation
than standard modularity, HCS, or cut-based clustering techniques"; those
alternatives are implemented in :mod:`repro.clustering` for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..profiling.graph import AffinityGraph
from .. import obs
from .score import internal_weight, merge_benefit


@dataclass(frozen=True)
class GroupingParams:
    """Knobs of the Figure 6 algorithm.

    Attributes:
        min_weight: Edges lighter than this are dropped before grouping
            (edge thresholding "that we apply to reduce noise").
        max_group_members: Upper bound on group size.
        merge_tolerance: The slack T in the merge-benefit formula
            (paper: "performs well at around 5 %").
        group_threshold: Minimum group weight as a fraction of all observed
            accesses ("gthresh" in Figure 6).
        loop_aware_score: Ablation switch — False degrades the Figure 7
            score to standard weighted density (loops ignored).
    """

    min_weight: float = 2.0
    max_group_members: int = 16
    merge_tolerance: float = 0.05
    group_threshold: float = 0.0005
    loop_aware_score: bool = True

    def __post_init__(self) -> None:
        if self.max_group_members < 1:
            raise ValueError(f"max_group_members must be >= 1, got {self.max_group_members}")
        if not 0.0 <= self.merge_tolerance < 1.0:
            raise ValueError(f"merge tolerance must be in [0, 1), got {self.merge_tolerance}")
        if self.group_threshold < 0.0:
            raise ValueError(f"group threshold must be >= 0, got {self.group_threshold}")


@dataclass(frozen=True)
class Group:
    """A cluster of allocation contexts destined for a shared pool.

    Attributes:
        gid: Dense group id (creation order).
        members: Context ids in the group.
        weight: Internal affinity weight (loops included).
        accesses: Total macro accesses of member contexts — the group's
            "popularity", which orders selector synthesis.
    """

    gid: int
    members: frozenset[int]
    weight: float
    accesses: int

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, cid: int) -> bool:
        return cid in self.members


def group_contexts(
    graph: AffinityGraph, params: GroupingParams | None = None
) -> list[Group]:
    """Partition (a subset of) the graph's contexts into allocation groups.

    Implements Figure 6.  Returns accepted groups in creation order; contexts
    absent from every group remain under the default allocator.
    """
    params = params or GroupingParams()
    working = graph.filtered_by_min_weight(params.min_weight)
    available = set(working.nodes)
    groups: list[Group] = []
    seeds = 0
    merge_steps = 0

    while available:
        seed_edge = _strongest_available_edge(working, available)
        if seed_edge is None:
            break  # no edges left: remaining nodes can never gain members
        members = {_hotter_endpoint(working, seed_edge)}
        available -= members
        seeds += 1

        # Grow the group around the seed.
        while len(members) < params.max_group_members:
            best_score = 0.0
            best_match: Optional[int] = None
            for stranger in available:
                benefit = merge_benefit(
                    working,
                    members,
                    stranger,
                    params.merge_tolerance,
                    params.loop_aware_score,
                )
                if benefit > best_score:
                    best_score = benefit
                    best_match = stranger
            if best_match is None:
                break
            members.add(best_match)
            available.discard(best_match)
            merge_steps += 1

        weight = internal_weight(working, members)
        if weight >= working.total_accesses * params.group_threshold:
            accesses = sum(working.accesses_of(cid) for cid in members)
            groups.append(Group(len(groups), frozenset(members), weight, accesses))

    # Observability harvest: one publish per grouping run, counted
    # locally above so the inner loop stays uninstrumented.
    obs.inc("analyse.grouping.seeds", seeds)
    obs.inc("analyse.grouping.merge_steps", merge_steps)
    return groups


def _strongest_available_edge(
    graph: AffinityGraph, available: set[int]
) -> Optional[tuple[int, int]]:
    """Heaviest edge with both endpoints still available (ties: smaller key)."""
    best_key: Optional[tuple[int, int]] = None
    best_weight = 0.0
    for (a, b), weight in graph.edges.items():
        if a in available and b in available:
            if weight > best_weight or (weight == best_weight and best_key is not None and (a, b) < best_key):
                best_weight = weight
                best_key = (a, b)
    return best_key


def _hotter_endpoint(graph: AffinityGraph, edge: tuple[int, int]) -> int:
    """The endpoint with more accesses (ties: smaller id, deterministic)."""
    a, b = edge
    if graph.accesses_of(a) >= graph.accesses_of(b):
        return a
    return b


def assign_groups(groups: list[Group]) -> dict[int, int]:
    """Map context id -> group id for every grouped context."""
    assignment: dict[int, int] = {}
    for group in groups:
        for cid in group.members:
            assignment[cid] = group.gid
    return assignment
