"""On-disk cache for profiling/analysis artifacts.

Profiling is by far the most expensive phase of the evaluation pipeline
(the paper reports Pin slowdowns of up to 500×; the simulation's profiler
is likewise the dominant cost of regenerating a figure).  Its output is a
pure function of (workload, input scale, profiling/HALO/HDS parameters,
code version), so repeated ``halo plot`` / ``tools/gen_results.py``
invocations can skip the profile + analyse phases entirely by keying a
content-addressed store on exactly those inputs.

Entries are pickled bundles written atomically and durably (tmp file,
fsync, rename, directory fsync), so a
cache directory may be shared by the worker processes of the parallel
evaluation engine without locking: concurrent writers race benignly (last
rename wins, both wrote identical bytes) and readers either see a complete
entry or none.  Corrupt or unreadable entries are treated as misses and
rewritten.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

#: Bump when the pickled bundle layout changes incompatibly.
CACHE_FORMAT = 1


def _params_to_jsonable(params: Any) -> Any:
    """Canonical JSON-compatible form of a params object for hashing."""
    if params is None:
        return None
    if dataclasses.is_dataclass(params) and not isinstance(params, type):
        return {k: _params_to_jsonable(v) for k, v in sorted(dataclasses.asdict(params).items())}
    if isinstance(params, dict):
        return {str(k): _params_to_jsonable(v) for k, v in sorted(params.items())}
    if isinstance(params, (list, tuple)):
        return [_params_to_jsonable(v) for v in params]
    if isinstance(params, (str, int, float, bool)):
        return params
    raise TypeError(f"cannot canonicalise {type(params).__name__} for a cache key")


def artifact_key(
    workload: str,
    profile_scale: str,
    halo_params: Any = None,
    hds_params: Any = None,
    version: str = "",
    **extra: Any,
) -> str:
    """Content hash identifying one prepared-artifact bundle.

    The key covers everything the offline pipeline's output depends on:
    the workload name, the scale it is profiled at, the full HALO and HDS
    parameter sets, the package version (analysis code changes invalidate
    old entries) and the cache format version.
    """
    if not version:
        from .. import __version__ as version  # local import: avoid cycle at module load
    payload = {
        "format": CACHE_FORMAT,
        "version": version,
        "workload": workload,
        "profile_scale": profile_scale,
        "halo_params": _params_to_jsonable(halo_params),
        "hds_params": _params_to_jsonable(hds_params),
        "extra": _params_to_jsonable(extra) if extra else None,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one cache handle."""

    hits: int = 0
    misses: int = 0
    stores: int = 0


class ArtifactCache:
    """Content-addressed pickle store under one root directory.

    Args:
        root: Cache directory (created on first store).
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.stats = CacheStats()

    def path_for(self, key: str) -> Path:
        """Filesystem path of the entry for *key*."""
        return self.root / f"{key}.pkl"

    def get(self, key: str) -> Optional[Any]:
        """Return the cached object for *key*, or None on a miss.

        Unreadable and un-unpicklable entries count as misses.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put(self, key: str, value: Any) -> Path:
        """Store *value* under *key* atomically; returns the entry path."""
        path = self.path_for(key)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except FileExistsError as exc:
            raise NotADirectoryError(
                f"artifact cache root {self.root} exists and is not a directory"
            ) from exc
        fd, tmp_name = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                handle.flush()
                # A rename only orders against data already on disk: without
                # the fsync a crash can leave a complete-looking entry full
                # of zeros, which get() cannot tell from a damaged pickle.
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
            self._fsync_dir(self.root)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        """Persist the rename itself (the directory entry) to disk."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - e.g. platforms without dir fds
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - fsync unsupported on dirs
            pass
        finally:
            os.close(fd)

    def contains(self, key: str) -> bool:
        """Whether an entry for *key* exists (no read validation)."""
        return self.path_for(key).exists()

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.pkl"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed
