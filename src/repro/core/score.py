"""Group-quality score and merge benefit (paper Figures 7 and 8).

The score of a (sub)graph G = (V, E) is a loop-aware variant of weighted
graph density::

    s(G) = sum of edge weights / (|L| + |V| * (|V| - 1) / 2)

where L is the set of self-loop edges with positive weight.  Loops only
contribute to the denominator when present, so a lone context whose objects
are strongly affinitive with each other scores well, while loop-free graphs
score as ordinary weighted density.

Merge benefit (Figure 8) decides whether candidate B should join group A::

    m(A, B) = s(G[A ∪ B]) - (1 - T) * max(s(G[A]), s(G[B]))

with tolerance T giving "slack" so that a merge only fractionally below the
separated scores is still permitted; the paper finds T ≈ 5 % works well.
"""

from __future__ import annotations

from typing import Iterable

from ..profiling.graph import AffinityGraph


def score(graph: AffinityGraph, nodes: Iterable[int], loop_aware: bool = True) -> float:
    """Score s(G[nodes]) of the subgraph induced on *nodes* (Figure 7).

    With ``loop_aware=False`` the function degrades to the standard
    weighted-density formulation the paper's variant improves on: loop
    edges are ignored entirely (they neither add weight nor extend the
    denominator).  Exposed for the design-choice ablation.
    """
    members = list(dict.fromkeys(nodes))
    count = len(members)
    if count == 0:
        return 0.0
    member_set = set(members)
    total_weight = 0.0
    loops = 0
    for (a, b), weight in graph.edges.items():
        if a in member_set and b in member_set:
            if a == b:
                if not loop_aware:
                    continue
                if weight > 0:
                    loops += 1
            total_weight += weight
    denominator = loops + count * (count - 1) // 2
    if denominator == 0:
        return 0.0
    return total_weight / denominator


def merge_benefit(
    graph: AffinityGraph,
    group: Iterable[int],
    candidate: int,
    tolerance: float = 0.05,
    loop_aware: bool = True,
) -> float:
    """Merge benefit m(group, {candidate}) per Figure 8.

    Positive only if the combined subgraph scores higher than both parts in
    isolation (up to the tolerance slack).
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    group_nodes = list(group)
    score_a = score(graph, group_nodes, loop_aware)
    score_b = score(graph, [candidate], loop_aware)
    score_combined = score(graph, group_nodes + [candidate], loop_aware)
    return score_combined - (1.0 - tolerance) * max(score_a, score_b)


def internal_weight(graph: AffinityGraph, nodes: Iterable[int]) -> float:
    """Sum of edge weights internal to *nodes* (loops included).

    This is the "group weight" Figure 6 compares against
    ``graph.accesses * gthresh`` when accepting a group.
    """
    member_set = set(nodes)
    return sum(
        weight
        for (a, b), weight in graph.edges.items()
        if a in member_set and b in member_set
    )
