"""Selector synthesis: the group-identification algorithm of paper Figure 10.

For each group (most popular first) and each member context, a conjunctive
expression is grown greedily: at every step the algorithm counts, for each
call site in the member's chain, how many *conflicting* chains (contexts
outside the already-identified groups) would still match if that site were
added, and adds the site that minimises the count — preferring sites lower
in the stack on ties — until no site reduces conflicts further.  The
member expressions are OR-ed into the group's selector (disjunctive normal
form).

The paper notes the results can be sub-optimal because each member is
handled independently, yet are "more than sufficient"; residual conflicts
mean some unrelated allocations are pulled into a group's pool at runtime,
which is a performance matter rather than a correctness one.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import inf
from typing import Callable, Mapping, Optional, Sequence

from ..profiling.shadow import Chain, ContextTable
from .grouping import Group
from .selectors import GroupSelector


@dataclass(frozen=True)
class IdentificationResult:
    """Selectors plus bookkeeping from synthesis.

    Attributes:
        selectors: One per group, ordered most popular first — the priority
            order the runtime matcher must use.
        residual_conflicts: gid -> number of conflicting chains the group's
            selector still matches (0 = perfectly discriminating).
    """

    selectors: tuple[GroupSelector, ...]
    residual_conflicts: dict[int, int]


def synthesise_selectors(
    groups: Sequence[Group],
    contexts: ContextTable,
    context_group: Mapping[int, Optional[int]],
    site_allowed: Callable[[int], bool] = lambda addr: True,
) -> IdentificationResult:
    """Build selectors for *groups* (Figure 10).

    Args:
        groups: The accepted allocation groups.
        contexts: Context interning table (provides chains).
        context_group: Group assignment (or None) for **every** profiled
            context — ungrouped contexts are the conflicts selectors must
            exclude.
        site_allowed: Predicate restricting which call sites may be used in
            expressions (the rewriter can only instrument main-binary
            sites).
    """
    ignore: set[int] = set()
    ordered = sorted(groups, key=lambda g: (-g.accesses, g.gid))
    selectors: list[GroupSelector] = []
    residual: dict[int, int] = {}

    # Pre-compute chain sets once: membership tests dominate the cost.
    chain_sets: dict[int, frozenset[int]] = {
        cid: frozenset(contexts.chain(cid)) for cid in context_group
    }

    for group in ordered:
        ignore.add(group.gid)
        conjunctions: list[frozenset[int]] = []
        group_conflicts = 0
        for member in sorted(group.members):
            expr, conflicts = _grow_expression(
                member_chain=contexts.chain(member),
                chain_sets=chain_sets,
                context_group=context_group,
                ignore=ignore,
                site_allowed=site_allowed,
            )
            if expr and expr not in conjunctions:
                # An empty expression (no usable sites in the member's
                # chain) would match every allocation; such members are
                # left unidentified rather than poisoning the selector.
                conjunctions.append(expr)
            group_conflicts += conflicts
        selectors.append(GroupSelector(group.gid, tuple(conjunctions)))
        residual[group.gid] = group_conflicts

    return IdentificationResult(tuple(selectors), residual)


def _grow_expression(
    member_chain: Chain,
    chain_sets: Mapping[int, frozenset[int]],
    context_group: Mapping[int, Optional[int]],
    ignore: set[int],
    site_allowed: Callable[[int], bool],
) -> tuple[frozenset[int], int]:
    """Grow one member's conjunction; returns (sites, residual conflicts)."""
    # Candidate sites, outermost (lowest in the stack) first — iteration
    # order implements the tie-break "a is lower in the stack than b".
    candidates = [
        addr for addr in dict.fromkeys(member_chain) if site_allowed(addr)
    ]
    expr: set[int] = set()
    conflicts: float = inf

    # Chains that currently match the (initially empty ≡ True) expression
    # and belong to no already-identified group.
    matching = [
        chain_sets[cid]
        for cid, gid in context_group.items()
        if gid not in ignore
    ]

    while conflicts:
        if not candidates:
            break
        best_site: Optional[int] = None
        best_count = inf
        for addr in candidates:
            if addr in expr:
                continue
            count = sum(1 for chain in matching if addr in chain)
            if count < best_count:
                best_count = count
                best_site = addr
        if best_site is None or best_count >= conflicts:
            break
        expr.add(best_site)
        conflicts = best_count
        matching = [chain for chain in matching if best_site in chain]

    if not expr and candidates:
        # Degenerate case: every candidate site appears in every conflicting
        # chain.  An empty conjunction would match *all* allocations, so pin
        # the expression to the innermost candidate instead.
        expr.add(candidates[-1])
        conflicts = sum(1 for chain in matching if candidates[-1] in chain)

    return frozenset(expr), int(conflicts) if conflicts is not inf else len(matching)
