"""Runtime representation of group selectors (paper Section 4.3).

A *selector* is a logical expression in disjunctive normal form over call
sites: an allocation belongs to a group when, for at least one conjunction,
control has passed through every call site in it.  At runtime the rewritten
binary keeps one bit per monitored site in the group state vector, so each
conjunction compiles to a bit mask and evaluation is a handful of AND/CMP
operations — the "extremely low overhead" identification the paper claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence


@dataclass(frozen=True)
class GroupSelector:
    """DNF selector for one group.

    Attributes:
        gid: Group id this selector identifies.
        conjunctions: Each a frozenset of call-site addresses that must all
            be live on the control-flow path for the disjunct to match.
    """

    gid: int
    conjunctions: tuple[frozenset[int], ...]

    def matches_chain(self, chain: Sequence[int]) -> bool:
        """Would this selector match an allocation whose context is *chain*?"""
        sites = set(chain)
        return any(conj <= sites for conj in self.conjunctions)

    @property
    def sites(self) -> frozenset[int]:
        """All call sites this selector consults."""
        result: set[int] = set()
        for conj in self.conjunctions:
            result |= conj
        return frozenset(result)


def monitored_sites(selectors: Iterable[GroupSelector]) -> frozenset[int]:
    """Union of call sites across *selectors* — what BOLT must instrument."""
    result: set[int] = set()
    for selector in selectors:
        result |= selector.sites
    return frozenset(result)


class SelectorMatchError(Exception):
    """Raised when selectors reference sites missing from the plan."""


class CompiledMatcher:
    """Bit-mask evaluator of a prioritised selector list.

    Selectors are evaluated in the given order (synthesis emits them most
    popular first); the first matching group wins.
    """

    def __init__(self, selectors: Sequence[GroupSelector], bit_for_site: dict[int, int]) -> None:
        self._table: list[tuple[int, tuple[int, ...]]] = []
        for selector in selectors:
            masks = []
            for conj in selector.conjunctions:
                mask = 0
                for site in conj:
                    bit = bit_for_site.get(site)
                    if bit is None:
                        raise SelectorMatchError(
                            f"selector for group {selector.gid} uses "
                            f"uninstrumented site {site:#x}"
                        )
                    mask |= 1 << bit
                masks.append(mask)
            self._table.append((selector.gid, tuple(masks)))

    def match(self, state: int) -> Optional[int]:
        """Group id for state-vector value *state*, or None."""
        for gid, masks in self._table:
            for mask in masks:
                if state & mask == mask:
                    return gid
        return None


class NeverMatch:
    """A matcher that groups nothing (useful for baselines and tests)."""

    def match(self, state: int) -> Optional[int]:
        """Always None: every allocation goes to the fallback allocator."""
        return None


class StaticChainMatcher:
    """Matches on explicit chains rather than state bits.

    Used by the hot-data-streams baseline, which identifies groups by the
    immediate call site of the allocation procedure: the 'chain' consulted
    is just that one site.  Also convenient in unit tests.
    """

    def __init__(self, group_of_site: dict[int, int]) -> None:
        self._group_of_site = dict(group_of_site)
        self.current_site: Optional[int] = None

    def match(self, state: int) -> Optional[int]:
        """Group for ``current_site`` (the state vector is ignored)."""
        if self.current_site is None:
            return None
        return self._group_of_site.get(self.current_site)
