"""The end-to-end HALO pipeline (paper Figure 4).

``profile → group → identify → rewrite → synthesise allocator``:

1. :func:`profile_workload` runs the target under the profiling listener on
   a small input ("workloads are profiled on small test inputs and measured
   using larger ref inputs");
2. :func:`optimise_profile` clusters the affinity graph (Figure 6),
   synthesises selectors (Figure 10) and produces the BOLT instrumentation
   plan;
3. :func:`make_runtime` instantiates the specialised group allocator and
   the state vector for a measurement run.

The split mirrors the real tool's offline/online boundary: everything up to
the plan is offline analysis; :class:`HaloRuntime` is what gets "linked
against" the rewritten binary at run time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Protocol

from ..allocators.base import AddressSpace, PAGE_SIZE
from ..allocators.group import GroupAllocator
from ..allocators.size_class import SizeClassAllocator
from ..machine.machine import GroupStateVector, Machine
from ..machine.program import Program
from ..profiling.affinity import AffinityParams
from ..profiling.profiler import Profiler, ProfileResult
from ..rewriting.bolt import BoltRewriter, InstrumentationPlan
from ..sanitize.invariants import active_sanitizer
from ..sanitize.shadow import SanitizerListener
from .. import obs
from .grouping import Group, GroupingParams, assign_groups, group_contexts
from .identification import IdentificationResult, synthesise_selectors
from .selectors import CompiledMatcher, monitored_sites


class Runnable(Protocol):
    """What the pipeline needs from a workload."""

    name: str

    @property
    def program(self) -> Program:
        """The workload's static program model."""
        ...

    def run(self, machine: Machine, scale: str) -> None:
        """Execute the workload body on *machine* at *scale*."""
        ...


@dataclass(frozen=True)
class HaloParams:
    """Every HALO knob in one place (paper Section 5.1 defaults).

    ``chunk_size``/``max_spare_chunks``/``always_reuse_chunks``/``max_groups``
    correspond to the artefact appendix's ``halo run`` flags.
    """

    affinity: AffinityParams = field(default_factory=AffinityParams)
    grouping: GroupingParams = field(default_factory=GroupingParams)
    chunk_size: int = 1 << 20
    slab_size: int = 16 << 20
    max_spare_chunks: int = 1
    max_grouped_size: int = PAGE_SIZE
    always_reuse_chunks: bool = False
    max_groups: Optional[int] = None
    #: §4.4 extension: stagger each group's bump start to spread cache sets.
    colour_stride: int = 0

    def with_affinity_distance(self, distance: int) -> "HaloParams":
        """Copy with a different affinity distance (Figure 12 sweeps this)."""
        return replace(self, affinity=replace(self.affinity, distance=distance))


@dataclass
class HaloArtifacts:
    """Everything the offline pipeline produces for one workload."""

    program: Program
    profile: ProfileResult
    groups: list[Group]
    identification: IdentificationResult
    plan: InstrumentationPlan
    params: HaloParams

    @property
    def context_assignment(self) -> dict[int, int]:
        """Context id -> group id for grouped contexts."""
        return assign_groups(self.groups)

    def describe_groups(self) -> list[str]:
        """Human-readable group listing (paper Figure 9's textual form)."""
        lines = []
        for group in self.groups:
            lines.append(
                f"group {group.gid}: weight={group.weight:.0f} "
                f"accesses={group.accesses}"
            )
            for cid in sorted(group.members):
                lines.append(f"  - {self.profile.describe_context(cid)}")
        return lines


@dataclass
class HaloRuntime:
    """The online half: specialised allocator + rewritten-binary state."""

    allocator: GroupAllocator
    state_vector: GroupStateVector
    instrumentation: dict[int, int]

    def machine_kwargs(self) -> dict:
        """Keyword arguments to construct a measurement Machine."""
        return {
            "allocator": self.allocator,
            "instrumentation": self.instrumentation,
            "state_vector": self.state_vector,
        }


def profile_workload(
    workload: Runnable,
    params: HaloParams | None = None,
    scale: str = "test",
    record_trace: bool = False,
    seed: int = 0,
) -> ProfileResult:
    """Run *workload* under the profiler and return its profile."""
    params = params or HaloParams()
    program = workload.program
    space = AddressSpace(seed)
    allocator = SizeClassAllocator(space)
    profiler = Profiler(program, params.affinity, record_trace=record_trace)
    listeners: list = [profiler]
    sanitizer_config = active_sanitizer()
    if sanitizer_config is not None:
        listeners.append(SanitizerListener(sanitizer_config))
    machine = Machine(program, allocator, listeners=listeners)
    workload.run(machine, scale)
    machine.finish()  # the sanitizer's phase-boundary check runs here
    return profiler.result()


def optimise_profile(profile: ProfileResult, params: HaloParams | None = None) -> HaloArtifacts:
    """Offline analysis: grouping, identification, and the rewriting plan."""
    params = params or HaloParams()
    groups = group_contexts(profile.graph, params.grouping)
    if params.max_groups is not None and len(groups) > params.max_groups:
        groups = sorted(groups, key=lambda g: (-g.accesses, g.gid))[: params.max_groups]

    context_group: dict[int, Optional[int]] = {
        cid: None for cid in profile.context_stats
    }
    context_group.update(assign_groups(groups))

    rewriter = BoltRewriter(profile.program)
    identification = synthesise_selectors(
        groups,
        profile.contexts,
        context_group,
        site_allowed=rewriter.can_instrument,
    )
    plan = rewriter.instrument(monitored_sites(identification.selectors))
    if obs.active_registry() is not None:
        labels = {"program": profile.program.name}
        obs.inc("analyse.runs", 1, **labels)
        obs.inc("analyse.groups", len(groups), **labels)
        obs.inc("analyse.grouped_contexts", sum(len(g.members) for g in groups), **labels)
        obs.inc("analyse.selectors", len(identification.selectors), **labels)
        obs.inc(
            "analyse.monitored_sites",
            len(monitored_sites(identification.selectors)),
            **labels,
        )
    return HaloArtifacts(
        program=profile.program,
        profile=profile,
        groups=groups,
        identification=identification,
        plan=plan,
        params=params,
    )


def optimise_workload(
    workload: Runnable,
    params: HaloParams | None = None,
    profile_scale: str = "test",
    seed: int = 0,
) -> HaloArtifacts:
    """One-shot offline pipeline: profile on the test input, then optimise."""
    params = params or HaloParams()
    profile = profile_workload(workload, params, scale=profile_scale, seed=seed)
    return optimise_profile(profile, params)


def make_runtime(
    artifacts: HaloArtifacts,
    space: AddressSpace,
    allocator_cls: type[GroupAllocator] = GroupAllocator,
) -> HaloRuntime:
    """Instantiate the specialised allocator for a measurement run.

    ``allocator_cls`` selects the pool design: the paper's bump allocator
    (default) or the §6 free-list-sharded extension
    (:class:`repro.allocators.ShardedGroupAllocator`).
    """
    params = artifacts.params
    state_vector = GroupStateVector()
    matcher = CompiledMatcher(
        list(artifacts.identification.selectors), artifacts.plan.bit_for_site
    )
    fallback = SizeClassAllocator(space)
    allocator = allocator_cls(
        space,
        fallback,
        matcher,
        state_vector,
        chunk_size=params.chunk_size,
        slab_size=params.slab_size,
        max_spare_chunks=params.max_spare_chunks,
        max_grouped_size=params.max_grouped_size,
        always_reuse_chunks=params.always_reuse_chunks,
        colour_stride=params.colour_stride,
    )
    return HaloRuntime(
        allocator=allocator,
        state_vector=state_vector,
        instrumentation=dict(artifacts.plan.bit_for_site),
    )
