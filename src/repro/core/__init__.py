"""HALO's primary contribution: grouping, identification, and the pipeline."""

from .artifact_cache import ArtifactCache, artifact_key
from .grouping import Group, GroupingParams, assign_groups, group_contexts
from .identification import IdentificationResult, synthesise_selectors
from .pipeline import (
    HaloArtifacts,
    HaloParams,
    HaloRuntime,
    make_runtime,
    optimise_profile,
    optimise_workload,
    profile_workload,
)
from .score import internal_weight, merge_benefit, score
from .selectors import (
    CompiledMatcher,
    GroupSelector,
    NeverMatch,
    SelectorMatchError,
    monitored_sites,
)

__all__ = [
    "ArtifactCache",
    "CompiledMatcher",
    "Group",
    "GroupSelector",
    "GroupingParams",
    "HaloArtifacts",
    "HaloParams",
    "HaloRuntime",
    "IdentificationResult",
    "NeverMatch",
    "SelectorMatchError",
    "artifact_key",
    "assign_groups",
    "group_contexts",
    "internal_weight",
    "make_runtime",
    "merge_benefit",
    "monitored_sites",
    "optimise_profile",
    "optimise_workload",
    "profile_workload",
    "score",
    "synthesise_selectors",
]
