"""Config-driven randomized scenario generation with multi-tenant mixes.

The subsystem that grows workload coverage without hand-writing
workloads (ROADMAP item 3, riescue-style):

* :mod:`repro.scenario.spec` — the declarative DSL: size distributions,
  lifetime classes, phase schedules, access-locality knobs, adversarial
  fragmentation patterns, with canonical serialisation and config
  digests;
* :mod:`repro.scenario.generate` — compiles a spec into a registered
  :class:`~repro.workloads.base.Workload` built on a tick-generator
  execution core;
* :mod:`repro.scenario.mix` — interleaves several tenants' tick
  generators in one heap under round-robin/weighted/bursty schedulers;
* :mod:`repro.scenario.sample` — seeded constrained-random sampling and
  the self-describing name grammar (``scn-<seed>``,
  ``mix-<seed>x<n>[-<sched>]``) that lets any process rebuild a
  generated workload from its name;
* :mod:`repro.scenario.corpus` — named seeded corpora with golden
  config hashes (``corpora/default.json``);
* :mod:`repro.scenario.fuzz` — lowers specs into the sanitizer fuzz
  matrix.

Generated workloads flow unchanged through profiling, grouping, trace
record/replay, the columnar engine, the evaluation matrix, the
sanitizer, and the serving daemon.  See ``docs/SCENARIOS.md``.
"""

from .corpus import (
    CorpusEntry,
    MANIFEST_VERSION,
    build_corpus,
    corpus_digest,
    corpus_names,
    load_manifest,
    manifest_dict,
    materialise_corpus,
    verify_manifest,
    write_manifest,
)
from .fuzz import scenario_fuzz_entries, scenario_ops
from .generate import (
    GeneratedWorkload,
    ScenarioSites,
    build_sites,
    compile_spec,
    register_scenario,
    scenario_ticks,
)
from .mix import (
    MixSpec,
    MixedWorkload,
    SCHEDULERS,
    TenantSpec,
    compile_mix,
    drive_mix,
    register_mix,
)
from .sample import (
    SCHEDULER_CODES,
    load_config,
    parse_name,
    resolve_scenario,
    sample_mix,
    sample_spec,
)
from .spec import (
    ACCESS_MODES,
    KindSpec,
    LIFETIMES,
    PhaseSpec,
    ScenarioError,
    ScenarioSpec,
    SIZE_DIST_KINDS,
    SizeDist,
    load_config_dict,
    load_spec,
    spec_from_dict,
)

__all__ = [
    "ACCESS_MODES",
    "CorpusEntry",
    "GeneratedWorkload",
    "KindSpec",
    "LIFETIMES",
    "MANIFEST_VERSION",
    "MixSpec",
    "MixedWorkload",
    "PhaseSpec",
    "SCHEDULERS",
    "SCHEDULER_CODES",
    "SIZE_DIST_KINDS",
    "ScenarioError",
    "ScenarioSites",
    "ScenarioSpec",
    "SizeDist",
    "TenantSpec",
    "build_corpus",
    "build_sites",
    "compile_mix",
    "compile_spec",
    "corpus_digest",
    "corpus_names",
    "drive_mix",
    "load_config",
    "load_config_dict",
    "load_manifest",
    "load_spec",
    "manifest_dict",
    "materialise_corpus",
    "parse_name",
    "register_mix",
    "register_scenario",
    "resolve_scenario",
    "sample_mix",
    "sample_spec",
    "scenario_fuzz_entries",
    "scenario_ops",
    "scenario_ticks",
    "spec_from_dict",
    "verify_manifest",
    "write_manifest",
]
