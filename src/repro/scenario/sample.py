"""Seeded constrained-random scenario sampling and the name grammar.

The sampler is the riescue-style piece: instead of hand-writing
workloads, draw them from pools of size classes, lifetime classes,
access modes, and phase schedules under constraints that keep every
draw a *meaningful* HALO input (there is always a hot pointer-chased
structure for grouping to find; adversaries — shared allocation sites,
pollution in the hot size class, churn holes — appear with fixed
probabilities).

Names are **self-describing**: the full spec is a pure function of the
name, so any process — a parallel measure worker, the serving daemon, a
trace replayer — can rebuild a generated workload from its name alone:

* ``scn-<seed>`` — the single scenario sampled from ``<seed>``;
* ``mix-<seed>x<n>[-<sched>]`` — ``<n>`` tenants sampled from
  ``<seed>``, interleaved by ``<sched>`` (``rr``/``wtd``/``burst``;
  sampled from the seed when omitted).  A mix's tenants are themselves
  runnable standalone: tenant ``i`` of ``mix-5x3`` is some ``scn-<k>``.

All randomness is drawn from string-seeded :class:`random.Random`
streams, so sampling is stable across processes and interpreter runs
(``PYTHONHASHSEED``-safe) — the property the corpus golden hashes pin.
"""

from __future__ import annotations

import random
import re
from typing import Optional, Type, Union

from ..workloads.base import Workload
from .generate import register_scenario
from .mix import SCHEDULERS, MixSpec, TenantSpec, register_mix
from .spec import (
    KindSpec,
    PhaseSpec,
    ScenarioError,
    ScenarioSpec,
    SizeDist,
    load_config_dict,
    spec_from_dict,
)

__all__ = [
    "SCHEDULER_CODES",
    "load_config",
    "parse_name",
    "resolve_scenario",
    "sample_mix",
    "sample_spec",
]

#: Name-grammar scheduler codes -> scheduler names.
SCHEDULER_CODES = {"rr": "round-robin", "wtd": "weighted", "burst": "bursty"}

_SCN_RE = re.compile(r"^scn-(\d+)$")
_MIX_RE = re.compile(r"^mix-(\d+)x(\d+)(?:-([a-z]+))?$")

#: Size-class anchors the samplers draw from (bytes); small classes for
#: nodes/cells, the tail for streamed buffers.
_SIZE_ANCHORS = (16, 24, 32, 48, 64, 96, 128, 192, 256)


def _sample_size(rng: random.Random, large: bool = False) -> SizeDist:
    """Draw a size distribution (node-class, or buffer-class when *large*)."""
    kind = rng.choices(
        ("fixed", "uniform", "choice", "pareto"), weights=(4, 3, 2, 1)
    )[0]
    if large:
        lo = rng.choice((64, 96, 128, 192))
        hi = lo * rng.choice((2, 4, 8))
    else:
        lo = rng.choice(_SIZE_ANCHORS[:6])
        hi = rng.choice([a for a in _SIZE_ANCHORS if a >= lo])
    if kind == "fixed":
        return SizeDist("fixed", lo=lo, hi=lo)
    if kind == "uniform":
        return SizeDist("uniform", lo=lo, hi=hi)
    if kind == "choice":
        population = [a for a in _SIZE_ANCHORS if lo <= a <= hi] or [lo]
        count = min(rng.randrange(2, 5), len(population))
        values = tuple(sorted(rng.sample(population, count)))
        return SizeDist("choice", values=values)
    return SizeDist("pareto", lo=lo, hi=max(hi, lo * 8), alpha=rng.choice((1.2, 1.5, 2.0)))


def _sample_kinds(rng: random.Random) -> list[KindSpec]:
    """Draw the kind set: always a hot chased structure, plus adversaries."""
    kinds: list[KindSpec] = []
    hot_size = _sample_size(rng)
    hot_cells = rng.choices((0, 1, 2, 3), weights=(3, 3, 2, 1))[0]
    shared_site = rng.random() < 0.7
    kinds.append(
        KindSpec(
            label="hot",
            base_count=rng.randrange(150, 501),
            size=hot_size,
            lifetime="permanent" if rng.random() < 0.4 else "phase",
            access="chase",
            cells=hot_cells,
            cell_size=_sample_size(rng) if hot_cells else None,
            hot_passes=rng.randrange(3, 9),
            node_loads=rng.randrange(2, 5),
            shuffle=rng.choice((0.0, 0.05, 0.1, 0.25)),
            burst=rng.randrange(1, 5),
            site_group="shared" if shared_site else "",
        )
    )
    if shared_site:
        # Cold data allocated through the SAME site as the hot structure,
        # on a different call path — only full-context identification can
        # separate these (the health/generate_patient adversary).
        kinds.append(
            KindSpec(
                label="coldtwin",
                base_count=rng.randrange(100, 401),
                size=hot_size,
                lifetime=rng.choice(("phase", "churn")),
                access="none",
                hot_passes=0,
                burst=rng.randrange(1, 5),
                site_group="shared",
            )
        )
    if rng.random() < 0.6:
        # Pollution: hot's size classes from private sites, never accessed
        # (the Figure-1 adversary a size-segregated baseline co-locates).
        kinds.append(
            KindSpec(
                label="pollute",
                base_count=rng.randrange(150, 451),
                size=hot_size,
                lifetime=rng.choice(("phase", "churn", "transient")),
                access="none",
                hot_passes=0,
                burst=rng.randrange(2, 9),
            )
        )
    if rng.random() < 0.5:
        # Streamed buffers: sequential sweeps (the roms regime).
        kinds.append(
            KindSpec(
                label="stream",
                base_count=rng.randrange(40, 161),
                size=_sample_size(rng, large=True),
                lifetime=rng.choice(("phase", "transient")),
                access="stream",
                hot_passes=rng.randrange(1, 4),
                burst=rng.randrange(1, 5),
            )
        )
    if rng.random() < 0.5:
        # Churn: freed with a stride at phase end, leaving holes that pin
        # chunks — the adversarial fragmentation pattern.
        kinds.append(
            KindSpec(
                label="churn",
                base_count=rng.randrange(100, 401),
                size=_sample_size(rng),
                lifetime="churn",
                access="chase" if rng.random() < 0.4 else "none",
                hot_passes=1,
                burst=rng.randrange(1, 7),
            )
        )
    return kinds


def _sample_phases(
    rng: random.Random, kinds: list[KindSpec]
) -> tuple[PhaseSpec, ...]:
    """Draw a phase schedule covering every kind at least once."""
    count = rng.randrange(1, 4)
    phases: list[list[tuple[str, float]]] = []
    for _ in range(count):
        weights = [("hot", rng.choice((0.5, 1.0, 1.5, 2.0)))]
        for kind in kinds:
            if kind.label != "hot" and rng.random() < 0.8:
                weights.append((kind.label, rng.choice((0.25, 0.5, 1.0, 2.0))))
        phases.append(weights)
    for kind in kinds:
        if not any(label == kind.label for phase in phases for label, _ in phase):
            phases[rng.randrange(len(phases))].append((kind.label, 0.5))
    return tuple(
        PhaseSpec(
            label=f"phase{index}",
            weights=tuple(weights),
            repeats=rng.choices((1, 2), weights=(3, 1))[0],
        )
        for index, weights in enumerate(phases)
    )


def sample_spec(seed: int, name: Optional[str] = None) -> ScenarioSpec:
    """Sample the scenario for *seed* (the meaning of ``scn-<seed>``).

    A pure function of *seed*: every process that samples the same seed
    gets a spec with the same digest.
    """
    rng = random.Random(f"scenario-sample:{seed}")
    kinds = _sample_kinds(rng)
    phases = _sample_phases(rng, kinds)
    return ScenarioSpec(
        name=name or f"scn-{seed}",
        kinds=tuple(kinds),
        phases=tuple(phases),
        table_kb=rng.choice((0, 64, 128, 256)) if rng.random() < 0.6 else 0,
        table_every=rng.randrange(2, 7),
        free_stride=rng.randrange(2, 6),
        work_per_access=rng.choices((0.5, 1.0, 2.0, 4.0), weights=(2, 4, 2, 1))[0],
        description=f"generated scenario (seed {seed})",
    )


def sample_mix(
    seed: int,
    tenants: int = 3,
    scheduler: Optional[str] = None,
    name: Optional[str] = None,
) -> MixSpec:
    """Sample the mix for *seed* (the meaning of ``mix-<seed>x<tenants>``).

    Tenant draws are independent of the scheduler choice, so
    ``mix-5x3-rr`` and ``mix-5x3-wtd`` interleave the *same* tenants
    under different schedulers.
    """
    if tenants < 1:
        raise ScenarioError(f"a mix needs at least one tenant, got {tenants}")
    if scheduler is not None and scheduler not in SCHEDULERS:
        raise ScenarioError(
            f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}"
        )
    rng = random.Random(f"mix-sample:{seed}")
    drawn: list[TenantSpec] = []
    for _ in range(tenants):
        tenant_seed = rng.randrange(1_000_000)
        drawn.append(
            TenantSpec(
                spec=sample_spec(tenant_seed),
                weight=rng.choice((1.0, 1.5, 2.0, 3.0)),
                burst=rng.randrange(4, 17),
            )
        )
    if scheduler is None:
        scheduler = random.Random(f"mix-sched:{seed}").choice(SCHEDULERS)
    mix_name = name or f"mix-{seed}x{tenants}"
    return MixSpec(
        name=mix_name,
        tenants=tuple(drawn),
        scheduler=scheduler,
        description=f"generated {scheduler} mix of {tenants} tenants (seed {seed})",
    )


def parse_name(name: str) -> Union[ScenarioSpec, MixSpec]:
    """Rebuild the spec a generated workload name describes.

    Raises :class:`ScenarioError` for names that carry a generated prefix
    but do not match the grammar.
    """
    match = _SCN_RE.match(name)
    if match:
        return sample_spec(int(match.group(1)), name=name)
    match = _MIX_RE.match(name)
    if match:
        seed, tenants, code = match.groups()
        scheduler = None
        if code is not None:
            if code not in SCHEDULER_CODES:
                raise ScenarioError(
                    f"bad scheduler code {code!r} in {name!r}; expected one "
                    f"of {sorted(SCHEDULER_CODES)}"
                )
            scheduler = SCHEDULER_CODES[code]
        return sample_mix(int(seed), tenants=int(tenants), scheduler=scheduler, name=name)
    raise ScenarioError(
        f"malformed generated-workload name {name!r}; expected 'scn-<seed>' "
        "or 'mix-<seed>x<tenants>[-rr|-wtd|-burst]'"
    )


def load_config(path: str) -> Union[ScenarioSpec, MixSpec]:
    """Load a scenario *or* mix spec from a ``.json``/``.toml`` config file.

    A config with a ``tenants`` key is a mix; anything else is a
    single-tenant scenario.
    """
    data = load_config_dict(path)
    if "tenants" in data:
        return MixSpec.from_dict(data)
    return spec_from_dict(data)


def resolve_scenario(name: str) -> Type[Workload]:
    """Resolve a generated name to a registered workload class.

    The hook :func:`repro.workloads.base.get_workload` calls for
    unregistered ``scn-``/``mix-`` names.
    """
    spec = parse_name(name)
    if isinstance(spec, MixSpec):
        return register_mix(spec)
    return register_scenario(spec)
