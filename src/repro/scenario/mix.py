"""Multi-tenant mixer: several generated tenants interleaved in one heap.

A :class:`MixSpec` names a set of tenant scenarios, and a scheduler that
decides whose turn it is — the riescue parallel/simultaneous scheduler
model, with tenants standing in for harts.  Each tenant's behaviour is
its scenario's tick generator (:func:`~repro.scenario.generate
.scenario_ticks`); the mix workload drives all generators over one
shared machine, so tenants contend for the same allocator, chunks, and
cache.  Tenant programs are namespaced by a ``tN.`` function prefix in
one shared program, so profiling attributes every allocation to the
right tenant context and grouping can still separate (or deliberately
fuse) tenants.

Schedulers (:data:`SCHEDULERS`):

* ``round-robin`` — one tick per tenant in index order; the fair
  fine-grained interleaving.
* ``weighted`` — each tick goes to a tenant drawn with probability
  proportional to its weight (deterministic: the draw uses the mix
  workload's own seeded RNG).
* ``bursty`` — round-robin over *bursts*: a tenant runs ``burst``
  consecutive ticks before yielding the machine, approximating
  phase-aligned tenants whose activity comes in runs.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Type

from .. import obs
from ..machine.machine import Machine
from ..machine.program import Program, ProgramBuilder
from ..workloads.base import Workload, lookup, register
from .generate import ScenarioSites, build_sites, scenario_ticks
from .spec import ScenarioError, ScenarioSpec, spec_from_dict

__all__ = [
    "MixSpec",
    "MixedWorkload",
    "SCHEDULERS",
    "TenantSpec",
    "compile_mix",
    "drive_mix",
    "register_mix",
]

#: Supported tenant schedulers.
SCHEDULERS = ("round-robin", "weighted", "bursty")


@dataclass(frozen=True)
class TenantSpec:
    """One tenant in a mix: a scenario plus its scheduling parameters.

    Attributes:
        spec: The tenant's scenario.
        weight: Share of ticks under the ``weighted`` scheduler.
        burst: Consecutive ticks per turn under the ``bursty`` scheduler.
    """

    spec: ScenarioSpec
    weight: float = 1.0
    burst: int = 4

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ScenarioError(f"tenant weight must be positive, got {self.weight}")
        if self.burst < 1:
            raise ScenarioError(f"tenant burst must be >= 1, got {self.burst}")

    def to_dict(self) -> dict:
        """Canonical dict form."""
        return {
            "spec": self.spec.to_dict(),
            "weight": self.weight,
            "burst": self.burst,
        }

    @staticmethod
    def from_dict(data: dict) -> "TenantSpec":
        """Build a tenant from its canonical dict form."""
        return TenantSpec(
            spec=spec_from_dict(data["spec"]),
            weight=float(data.get("weight", 1.0)),
            burst=int(data.get("burst", 4)),
        )


@dataclass(frozen=True)
class MixSpec:
    """A complete multi-tenant mix description.

    Attributes:
        name: Workload name the compiled mix registers under.
        tenants: The tenant scenarios, in scheduling order.
        scheduler: One of :data:`SCHEDULERS`.
        description: One line for reports and ``halo list``.
    """

    name: str
    tenants: tuple[TenantSpec, ...]
    scheduler: str = "round-robin"
    description: str = "generated multi-tenant mix"

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("mix name must be non-empty")
        if not self.tenants:
            raise ScenarioError(f"{self.name}: needs at least one tenant")
        if self.scheduler not in SCHEDULERS:
            raise ScenarioError(
                f"{self.name}: unknown scheduler {self.scheduler!r}; "
                f"expected one of {SCHEDULERS}"
            )

    def to_dict(self) -> dict:
        """Canonical dict form (the digested representation)."""
        return {
            "name": self.name,
            "tenants": [tenant.to_dict() for tenant in self.tenants],
            "scheduler": self.scheduler,
            "description": self.description,
        }

    def digest(self) -> str:
        """Stable config hash of the canonical form (corpus golden hash)."""
        payload = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()[:16]

    @staticmethod
    def from_dict(data: dict) -> "MixSpec":
        """Build a mix from its canonical dict form."""
        try:
            return MixSpec(
                name=data["name"],
                tenants=tuple(TenantSpec.from_dict(t) for t in data["tenants"]),
                scheduler=data.get("scheduler", "round-robin"),
                description=data.get("description", "generated multi-tenant mix"),
            )
        except KeyError as exc:
            raise ScenarioError(f"mix config missing field {exc.args[0]!r}") from None


def drive_mix(
    generators: list[Iterator[None]],
    mix: MixSpec,
    rng: random.Random,
    on_turn: Optional[Callable[[int], None]] = None,
) -> list[int]:
    """Drain all tenant *generators* under *mix*'s scheduler.

    Returns per-tenant tick counts.  A tenant that finishes drops out of
    the rotation; the rest keep running until every generator is
    exhausted.  Deterministic given *rng*.

    *on_turn* is invoked with the tenant index at the start of each turn,
    before any of the turn's ticks run — the hook the thread-interleaved
    machine mode hangs off (tenants become simulated threads, and the
    scheduler's interleave is the "context switch" schedule).
    """
    ticks = [0] * len(generators)
    active = list(range(len(generators)))
    position = 0
    while active:
        if mix.scheduler == "weighted":
            index = rng.choices(
                active, weights=[mix.tenants[i].weight for i in active]
            )[0]
            burst = 1
        else:
            index = active[position % len(active)]
            position += 1
            burst = mix.tenants[index].burst if mix.scheduler == "bursty" else 1
        if on_turn is not None:
            on_turn(index)
        for _ in range(burst):
            try:
                next(generators[index])
            except StopIteration:
                active.remove(index)
                break
            ticks[index] += 1
    return ticks


class MixedWorkload(Workload):
    """A workload interleaving several tenant scenarios on one heap.

    Subclasses are created by :func:`compile_mix` with the ``mix`` class
    attribute filled in.  Tenant RNGs are derived from the mix's name, so
    a tenant's behaviour inside a mix is deterministic but distinct from
    its standalone run.
    """

    suite = "generated-mix"
    #: The mix this class was compiled from (set by compile_mix).
    mix: MixSpec

    def _build_program(self) -> Program:
        """Lay every tenant's call graph into one shared program."""
        builder = ProgramBuilder(self.name)
        self._tenant_sites: list[ScenarioSites] = []
        for index, tenant in enumerate(self.mix.tenants):
            self._tenant_sites.append(
                build_sites(builder, tenant.spec, prefix=f"t{index}.")
            )
        return builder.build()

    def _execute(self, machine: Machine, rng: random.Random, factor: float) -> None:
        """Interleave all tenant tick generators under the mix scheduler."""
        generators = []
        for index, tenant in enumerate(self.mix.tenants):
            tenant_rng = random.Random(f"{self.name}:tenant{index}:{factor}")
            generators.append(
                scenario_ticks(
                    machine, tenant_rng, factor, tenant.spec, self._tenant_sites[index]
                )
            )
        # Tenants run as simulated threads: every scheduling turn switches
        # the machine's thread id, so thread-aware allocators (per-thread
        # arenas) and the false-sharing tracker see the interleave.  The
        # switch is free for thread-oblivious allocators.
        ticks = drive_mix(generators, self.mix, rng, on_turn=machine.set_thread)
        obs.inc("scenario.ticks", sum(ticks), workload=self.name)
        obs.inc("scenario.runs", 1, workload=self.name)
        obs.inc("scenario.tenants", len(ticks), workload=self.name)


def compile_mix(mix: MixSpec) -> Type[MixedWorkload]:
    """Create (but do not register) the workload class for *mix*."""
    class_name = "Mix_" + "".join(ch if ch.isalnum() else "_" for ch in mix.name)
    tenant_names = ", ".join(tenant.spec.name for tenant in mix.tenants)
    return type(
        class_name,
        (MixedWorkload,),
        {
            "__doc__": (
                f"Generated mix {mix.name} ({mix.scheduler} over "
                f"{tenant_names}; config {mix.digest()})."
            ),
            "mix": mix,
            "name": mix.name,
            "description": mix.description,
            "work_per_access": max(
                tenant.spec.work_per_access for tenant in mix.tenants
            ),
        },
    )


def register_mix(mix: MixSpec) -> Type[Workload]:
    """Compile *mix* and register it; idempotent for an identical spec.

    Like :func:`~repro.scenario.generate.register_scenario`, re-using a
    registered name for a different config is an error.
    """
    existing = lookup(mix.name)
    if existing is not None:
        current = getattr(existing, "mix", None)
        if current is not None and current.digest() == mix.digest():
            return existing
        raise ScenarioError(
            f"workload name {mix.name!r} is already registered with a "
            "different definition"
        )
    cls = compile_mix(mix)
    register(cls)
    obs.inc("scenario.workloads", 1, workload=mix.name)
    return cls
