"""The declarative scenario DSL: what a generated workload is made of.

A :class:`ScenarioSpec` is a small, fully-serialisable description of heap
behaviour — object-size distributions, lifetime classes, phase-shift
schedules, access-locality knobs, pointer-chase vs. streaming mixes, and
adversarial fragmentation patterns — that the generator in
:mod:`repro.scenario.generate` compiles into a reproducible
:class:`~repro.workloads.base.Workload`.  The vocabulary mirrors the
locality mechanisms the paper's hand-written benchmarks exercise:

* a :class:`KindSpec` is one allocation kind (a node plus optional
  satellite cells), with its size distribution, lifetime class, and
  traversal mode;
* kinds sharing a ``site_group`` allocate through the *same* malloc
  funnel from different call paths — the full-context identification
  crux (health's ``generate_patient``);
* a :class:`PhaseSpec` scales each kind's allocation intensity, so the
  mix shifts over the run (drift for the serving daemon, phase behaviour
  for the profiler);
* ``lifetime="churn"`` frees with a stride, leaving holes — the
  adversarial fragmentation pattern;
* ``access="stream"`` produces sequential sweeps, ``"chase"``
  pointer-chases in a mostly-allocation-order walk with churn.

Specs are frozen dataclasses with a canonical JSON form; :meth:`digest`
hashes that form, and corpora pin those digests as golden hashes.  TOML
configs load through :func:`load_spec` (Python >= 3.11).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

__all__ = [
    "ACCESS_MODES",
    "KindSpec",
    "LIFETIMES",
    "PhaseSpec",
    "ScenarioError",
    "ScenarioSpec",
    "SIZE_DIST_KINDS",
    "SizeDist",
    "load_config_dict",
    "load_spec",
    "spec_from_dict",
]


class ScenarioError(Exception):
    """Raised for malformed scenario specifications or names."""


#: Size-distribution families the DSL supports.
SIZE_DIST_KINDS = ("fixed", "uniform", "choice", "pareto")

#: Lifetime classes: when a kind's objects are freed.
#:
#: * ``phase`` — at the end of the phase that allocated them;
#: * ``transient`` — immediately after their own access pass;
#: * ``permanent`` — at the end of the run;
#: * ``churn`` — at phase end with a stride (``free_stride``), leaving
#:   holes in chunk occupancy (the adversarial fragmentation pattern);
#:   survivors live to the end of the run.
LIFETIMES = ("phase", "transient", "permanent", "churn")

#: Traversal modes: pointer-chase, sequential stream, or never accessed.
ACCESS_MODES = ("chase", "stream", "none")


@dataclass(frozen=True)
class SizeDist:
    """One object-size distribution.

    ``fixed`` always returns ``lo``; ``uniform`` draws from
    ``[lo, hi]``; ``choice`` draws from ``values`` with optional
    ``weights``; ``pareto`` draws a heavy-tailed size with tail index
    ``alpha``, clamped to ``[lo, hi]``.
    """

    kind: str = "fixed"
    lo: int = 32
    hi: int = 32
    values: tuple[int, ...] = ()
    weights: tuple[float, ...] = ()
    alpha: float = 1.5

    def __post_init__(self) -> None:
        if self.kind not in SIZE_DIST_KINDS:
            raise ScenarioError(
                f"unknown size distribution {self.kind!r}; "
                f"expected one of {SIZE_DIST_KINDS}"
            )
        if self.kind == "choice":
            if not self.values:
                raise ScenarioError("choice distribution needs values")
            if self.weights and len(self.weights) != len(self.values):
                raise ScenarioError(
                    f"choice distribution has {len(self.values)} values "
                    f"but {len(self.weights)} weights"
                )
            if any(v < 1 for v in self.values):
                raise ScenarioError(f"sizes must be >= 1: {self.values}")
        elif self.lo < 1 or self.hi < self.lo:
            raise ScenarioError(
                f"size bounds must satisfy 1 <= lo <= hi, got [{self.lo}, {self.hi}]"
            )
        if self.kind == "pareto" and self.alpha <= 0:
            raise ScenarioError(f"pareto alpha must be positive, got {self.alpha}")

    def sample(self, rng: random.Random) -> int:
        """Draw one size (deterministic given the RNG state)."""
        if self.kind == "fixed":
            return self.lo
        if self.kind == "uniform":
            return rng.randrange(self.lo, self.hi + 1)
        if self.kind == "choice":
            if self.weights:
                return rng.choices(self.values, weights=self.weights)[0]
            return self.values[rng.randrange(len(self.values))]
        # pareto: lo / u^(1/alpha), clamped into [lo, hi].
        u = 1.0 - rng.random()
        size = int(self.lo / (u ** (1.0 / self.alpha)))
        return max(self.lo, min(size, self.hi))

    def to_dict(self) -> dict:
        """Canonical dict form (only the fields the kind uses)."""
        out: dict = {"kind": self.kind}
        if self.kind == "choice":
            out["values"] = list(self.values)
            if self.weights:
                out["weights"] = list(self.weights)
        else:
            out["lo"] = self.lo
            out["hi"] = self.hi
            if self.kind == "pareto":
                out["alpha"] = self.alpha
        return out

    @staticmethod
    def from_dict(data: dict) -> "SizeDist":
        """Build a distribution from its canonical dict form."""
        return SizeDist(
            kind=data.get("kind", "fixed"),
            lo=int(data.get("lo", 32)),
            hi=int(data.get("hi", data.get("lo", 32))),
            values=tuple(int(v) for v in data.get("values", ())),
            weights=tuple(float(w) for w in data.get("weights", ())),
            alpha=float(data.get("alpha", 1.5)),
        )


@dataclass(frozen=True)
class KindSpec:
    """One allocation kind: a node plus optional satellite cells.

    Attributes:
        label: Unique kind name within the scenario.
        base_count: Nodes allocated per phase-weight unit at ref scale.
        size: Node size distribution.
        lifetime: One of :data:`LIFETIMES`.
        access: One of :data:`ACCESS_MODES` — pointer-chase, sequential
            stream, or allocated-but-never-accessed pollution.
        cells: Satellite cells allocated with each node (linked-list
            cells, hash-table entries).
        cell_size: Cell size distribution (required when ``cells > 0``).
        hot_passes: Traversal passes over this kind per phase.
        node_loads: Loads per node per visit in a chase pass.
        shuffle: Fraction of traversal-order transpositions (list churn).
        burst: Consecutive same-kind allocations per burst in the
            interleaved allocation plan.
        site_group: Kinds sharing this tag allocate through the same
            malloc funnel (shared-site adversary); defaults to the label,
            i.e. a private funnel.
    """

    label: str
    base_count: int
    size: SizeDist
    lifetime: str = "phase"
    access: str = "chase"
    cells: int = 0
    cell_size: Optional[SizeDist] = None
    hot_passes: int = 1
    node_loads: int = 2
    shuffle: float = 0.05
    burst: int = 1
    site_group: str = ""

    def __post_init__(self) -> None:
        if not self.label:
            raise ScenarioError("kind label must be non-empty")
        if self.base_count < 1:
            raise ScenarioError(f"{self.label}: base_count must be >= 1")
        if self.lifetime not in LIFETIMES:
            raise ScenarioError(
                f"{self.label}: unknown lifetime {self.lifetime!r}; "
                f"expected one of {LIFETIMES}"
            )
        if self.access not in ACCESS_MODES:
            raise ScenarioError(
                f"{self.label}: unknown access mode {self.access!r}; "
                f"expected one of {ACCESS_MODES}"
            )
        if self.cells < 0:
            raise ScenarioError(f"{self.label}: cells must be >= 0")
        if self.cells and self.cell_size is None:
            raise ScenarioError(f"{self.label}: cells > 0 needs a cell_size")
        if self.hot_passes < 0 or self.node_loads < 1 or self.burst < 1:
            raise ScenarioError(
                f"{self.label}: hot_passes must be >= 0, node_loads and "
                "burst >= 1"
            )
        if self.shuffle < 0:
            raise ScenarioError(f"{self.label}: shuffle must be >= 0")

    @property
    def group(self) -> str:
        """The effective site-group tag (the label when unset)."""
        return self.site_group or self.label

    def to_dict(self) -> dict:
        """Canonical dict form."""
        out: dict = {
            "label": self.label,
            "base_count": self.base_count,
            "size": self.size.to_dict(),
            "lifetime": self.lifetime,
            "access": self.access,
            "hot_passes": self.hot_passes,
            "node_loads": self.node_loads,
            "shuffle": self.shuffle,
            "burst": self.burst,
        }
        if self.cells:
            out["cells"] = self.cells
            out["cell_size"] = self.cell_size.to_dict()
        if self.site_group:
            out["site_group"] = self.site_group
        return out

    @staticmethod
    def from_dict(data: dict) -> "KindSpec":
        """Build a kind from its canonical dict form."""
        cell_size = data.get("cell_size")
        return KindSpec(
            label=data["label"],
            base_count=int(data["base_count"]),
            size=SizeDist.from_dict(data["size"]),
            lifetime=data.get("lifetime", "phase"),
            access=data.get("access", "chase"),
            cells=int(data.get("cells", 0)),
            cell_size=SizeDist.from_dict(cell_size) if cell_size else None,
            hot_passes=int(data.get("hot_passes", 1)),
            node_loads=int(data.get("node_loads", 2)),
            shuffle=float(data.get("shuffle", 0.05)),
            burst=int(data.get("burst", 1)),
            site_group=data.get("site_group", ""),
        )


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of the allocation schedule.

    Attributes:
        label: Phase name (unique within the scenario).
        weights: ``(kind label, intensity)`` pairs — each kind allocates
            ``base_count * intensity`` nodes this phase (a kind absent
            from the mapping allocates nothing, which is how phase shifts
            are expressed).
        repeats: Times the phase body runs back to back.
    """

    label: str
    weights: tuple[tuple[str, float], ...]
    repeats: int = 1

    def __post_init__(self) -> None:
        if not self.label:
            raise ScenarioError("phase label must be non-empty")
        if not self.weights:
            raise ScenarioError(f"phase {self.label}: needs at least one kind weight")
        if any(weight <= 0 for _, weight in self.weights):
            raise ScenarioError(
                f"phase {self.label}: weights must be positive: {self.weights}"
            )
        if self.repeats < 1:
            raise ScenarioError(f"phase {self.label}: repeats must be >= 1")

    def to_dict(self) -> dict:
        """Canonical dict form."""
        return {
            "label": self.label,
            "weights": [[label, weight] for label, weight in self.weights],
            "repeats": self.repeats,
        }

    @staticmethod
    def from_dict(data: dict) -> "PhaseSpec":
        """Build a phase from its canonical dict form."""
        return PhaseSpec(
            label=data["label"],
            weights=tuple(
                (str(label), float(weight)) for label, weight in data["weights"]
            ),
            repeats=int(data.get("repeats", 1)),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete generated-workload description.

    Attributes:
        name: Workload name the compiled scenario registers under.
        kinds: The allocation kinds.
        phases: The phase-shift schedule, run in order.
        table_kb: Shared lookup-table size in KiB (0: no table) —
            placement-independent traffic and an HDS stream terminator.
        table_every: Table lookup frequency (one per N chase visits).
        free_stride: Churn-lifetime hole pattern: at phase end every
            region except each ``free_stride``-th is freed.
        work_per_access: Compute cycles charged per heap access (the
            memory- vs compute-bound knob).
        description: One line for reports and ``halo list``.
    """

    name: str
    kinds: tuple[KindSpec, ...]
    phases: tuple[PhaseSpec, ...]
    table_kb: int = 0
    table_every: int = 4
    free_stride: int = 3
    work_per_access: float = 1.0
    description: str = field(default="generated scenario")

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario name must be non-empty")
        if not self.kinds:
            raise ScenarioError(f"{self.name}: needs at least one kind")
        if not self.phases:
            raise ScenarioError(f"{self.name}: needs at least one phase")
        labels = [kind.label for kind in self.kinds]
        if len(set(labels)) != len(labels):
            raise ScenarioError(f"{self.name}: duplicate kind labels: {labels}")
        known = set(labels)
        for phase in self.phases:
            for label, _ in phase.weights:
                if label not in known:
                    raise ScenarioError(
                        f"{self.name}: phase {phase.label} references unknown "
                        f"kind {label!r}; known: {sorted(known)}"
                    )
        if self.table_kb < 0 or self.table_every < 1 or self.free_stride < 2:
            raise ScenarioError(
                f"{self.name}: table_kb must be >= 0, table_every >= 1, "
                "free_stride >= 2"
            )
        if self.work_per_access <= 0:
            raise ScenarioError(f"{self.name}: work_per_access must be positive")

    def kind(self, label: str) -> KindSpec:
        """Look up a kind by label."""
        for kind in self.kinds:
            if kind.label == label:
                return kind
        raise ScenarioError(f"{self.name}: unknown kind {label!r}")

    def to_dict(self) -> dict:
        """Canonical dict form (the digested representation)."""
        return {
            "name": self.name,
            "kinds": [kind.to_dict() for kind in self.kinds],
            "phases": [phase.to_dict() for phase in self.phases],
            "table_kb": self.table_kb,
            "table_every": self.table_every,
            "free_stride": self.free_stride,
            "work_per_access": self.work_per_access,
            "description": self.description,
        }

    def to_json(self) -> str:
        """Canonical JSON (sorted keys; the exact bytes :meth:`digest` hashes)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    def digest(self) -> str:
        """Stable config hash of the canonical form (corpus golden hash)."""
        payload = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()[:16]


def spec_from_dict(data: dict) -> ScenarioSpec:
    """Build a :class:`ScenarioSpec` from its canonical dict form.

    Raises :class:`ScenarioError` on missing or malformed fields (the
    dataclass validators run on construction).
    """
    try:
        return ScenarioSpec(
            name=data["name"],
            kinds=tuple(KindSpec.from_dict(k) for k in data["kinds"]),
            phases=tuple(PhaseSpec.from_dict(p) for p in data["phases"]),
            table_kb=int(data.get("table_kb", 0)),
            table_every=int(data.get("table_every", 4)),
            free_stride=int(data.get("free_stride", 3)),
            work_per_access=float(data.get("work_per_access", 1.0)),
            description=data.get("description", "generated scenario"),
        )
    except KeyError as exc:
        raise ScenarioError(f"scenario config missing field {exc.args[0]!r}") from None


def load_config_dict(path: Union[str, Path]) -> dict:
    """Load a ``.json`` or ``.toml`` config file to its raw dict.

    TOML needs Python >= 3.11 (:mod:`tomllib`); on older interpreters a
    :class:`ScenarioError` explains the constraint instead of crashing.
    """
    path = Path(path)
    text = path.read_text()
    if path.suffix == ".toml":
        try:
            import tomllib
        except ImportError:  # pragma: no cover - version-dependent
            raise ScenarioError(
                "TOML scenario configs need Python >= 3.11 (tomllib); "
                "use the JSON form instead"
            ) from None
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioError(f"{path}: invalid TOML: {exc}") from None
    else:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"{path}: invalid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ScenarioError(f"{path}: config must be a mapping")
    return data


def load_spec(path: Union[str, Path]) -> ScenarioSpec:
    """Load a single-tenant scenario spec from a config file."""
    return spec_from_dict(load_config_dict(path))
