"""Compile a :class:`~repro.scenario.spec.ScenarioSpec` into a Workload.

Two halves:

* **Program construction** — :func:`build_sites` lays one scenario's call
  graph into a :class:`~repro.machine.program.ProgramBuilder`: a phase
  function per schedule entry, a constructor function per kind, an
  allocation funnel per site group (kinds sharing a ``site_group`` call
  ``malloc`` from the *same* site on different paths — the full-context
  identification crux), and an optional table initialiser.  A name prefix
  namespaces every function so several tenants can share one program (the
  multi-tenant mixer in :mod:`repro.scenario.mix`).

* **Execution** — :func:`scenario_ticks` runs the schedule as a Python
  *generator* that yields at small slice boundaries (an allocation burst,
  a stretch of traversal visits, a free batch).  The single-tenant
  workload drains it; the mixer round-robins several tenants' generators
  over one machine, interleaving their heap behaviour the way riescue's
  schedulers interleave harts.  Call chains never stay open across a
  yield, so interleaved tenants cannot corrupt each other's shadow-stack
  contexts.

:func:`register_scenario` compiles a spec into a
:class:`GeneratedWorkload` subclass and registers it in the workload
registry, after which it flows unchanged through profiling, grouping,
trace record/replay, the columnar engine, the evaluation matrix, the
sanitizer, and the serving daemon.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional, Type

from .. import obs
from ..machine.heap import HeapObject
from ..machine.machine import Machine
from ..machine.program import CallSite, Program, ProgramBuilder
from ..workloads.base import Workload, lookup, register
from ..workloads.patterns import alloc_through, burst_plan, partial_shuffle
from .spec import KindSpec, ScenarioError, ScenarioSpec

__all__ = [
    "GeneratedWorkload",
    "ScenarioSites",
    "build_sites",
    "compile_spec",
    "register_scenario",
    "scenario_ticks",
]

#: Allocations per tick in the allocation stage of a phase.
ALLOC_TICK = 8

#: Traversal visits per tick in an access pass.
VISIT_TICK = 32


@dataclass
class ScenarioSites:
    """Call-site handles for one scenario laid into one program.

    Chains are outermost-first and complete down to ``malloc``, ready for
    :func:`~repro.workloads.patterns.alloc_through`.
    """

    #: Function-name prefix this tenant was laid out under ("" standalone).
    prefix: str = ""
    #: Chain for the optional shared lookup table.
    table_chain: tuple[CallSite, ...] = ()
    #: ``(phase index, kind label) -> chain`` for node allocations.
    node_chains: dict[tuple[int, str], tuple[CallSite, ...]] = field(
        default_factory=dict
    )
    #: ``(phase index, kind label) -> chain`` for satellite-cell allocations.
    cell_chains: dict[tuple[int, str], tuple[CallSite, ...]] = field(
        default_factory=dict
    )


def build_sites(
    builder: ProgramBuilder, spec: ScenarioSpec, prefix: str = ""
) -> ScenarioSites:
    """Lay *spec*'s call graph into *builder* under *prefix*.

    The shape per allocation is ``main -> {p}phase_N -> {p}make_KIND ->
    {p}alloc_GROUP -> malloc`` (cells go through ``{p}cells_GROUP``).
    Kinds sharing a site group share the funnel function and therefore
    the final allocation site; only the outer frames distinguish them.
    """
    sites = ScenarioSites(prefix=prefix)
    builder.function("main")
    builder.function("malloc", in_main_binary=False)

    # One allocation funnel (and one cell funnel where needed) per group.
    funnel_sites: dict[str, CallSite] = {}
    cell_funnel_sites: dict[str, CallSite] = {}
    for kind in spec.kinds:
        group = kind.group
        if group not in funnel_sites:
            fn = f"{prefix}alloc_{group}"
            builder.function(fn)
            funnel_sites[group] = builder.call_site(fn, "malloc", label=f"{group} node")
        if kind.cells and group not in cell_funnel_sites:
            fn = f"{prefix}cells_{group}"
            builder.function(fn)
            cell_funnel_sites[group] = builder.call_site(
                fn, "malloc", label=f"{group} cell"
            )

    # One constructor per kind, calling its group's funnel(s).
    make_sites: dict[str, CallSite] = {}
    make_cell_sites: dict[str, CallSite] = {}
    for kind in spec.kinds:
        fn = f"{prefix}make_{kind.label}"
        builder.function(fn)
        make_sites[kind.label] = builder.call_site(
            fn, f"{prefix}alloc_{kind.group}", label=kind.label
        )
        if kind.cells:
            make_cell_sites[kind.label] = builder.call_site(
                fn, f"{prefix}cells_{kind.group}", label=f"{kind.label} cells"
            )

    if spec.table_kb:
        fn = f"{prefix}table_init"
        builder.function(fn)
        sites.table_chain = (
            builder.call_site("main", fn, label=f"{prefix}table"),
            builder.call_site(fn, "malloc", label="table"),
        )

    # One phase function per schedule entry; each calls the constructors
    # of the kinds it allocates.
    for index, phase in enumerate(spec.phases):
        phase_fn = f"{prefix}phase_{index}"
        builder.function(phase_fn)
        entry = builder.call_site("main", phase_fn, label=phase.label)
        for label, _weight in phase.weights:
            kind = spec.kind(label)
            path = builder.call_site(phase_fn, f"{prefix}make_{label}", label=label)
            sites.node_chains[(index, label)] = (
                entry,
                path,
                make_sites[label],
                funnel_sites[kind.group],
            )
            if kind.cells:
                sites.cell_chains[(index, label)] = (
                    entry,
                    path,
                    make_cell_sites[label],
                    cell_funnel_sites[kind.group],
                )
    return sites


Item = tuple[HeapObject, tuple[HeapObject, ...]]


def _free_items(machine: Machine, items: list[Item]) -> None:
    """Free every node and cell in *items* (skipping already-dead ones)."""
    for node, cells in items:
        if node.alive:
            machine.free(node)
        for cell in cells:
            if cell.alive:
                machine.free(cell)


def _access_pass(
    machine: Machine,
    rng: random.Random,
    spec: ScenarioSpec,
    kind: KindSpec,
    items: list[Item],
    table: Optional[HeapObject],
) -> Iterator[None]:
    """One set of traversal passes over *items*, yielding per visit slice."""
    order = partial_shuffle(items, kind.shuffle, rng)
    table_lines = table.size // 64 if table is not None else 0
    for _ in range(kind.hot_passes):
        since = 0
        for index, (node, cells) in enumerate(order):
            span = max(1, node.size // 8)
            if kind.access == "chase":
                # Alternate cell and node loads (follow the link, read the
                # payload, next link...) so cross-context affinity dominates.
                for slot, cell in enumerate(cells):
                    machine.load(cell, 0, 8)
                    machine.load(node, (slot * 3 % span) * 8, 8)
                for load in range(len(cells), kind.node_loads):
                    machine.load(node, (load * 3 % span) * 8, 8)
                touches = len(cells) + max(len(cells), kind.node_loads)
            else:  # stream: sweep the node sequentially, then its cells.
                for offset in range(0, span * 8, 8):
                    machine.load(node, offset, 8)
                for cell in cells:
                    machine.load(cell, 0, 8)
                touches = span + len(cells)
            if table is not None and index % spec.table_every == 0:
                machine.load(table, rng.randrange(table_lines) * 64, 8)
                touches += 1
            machine.work(spec.work_per_access * touches)
            since += 1
            if since >= VISIT_TICK:
                since = 0
                yield
        yield


def scenario_ticks(
    machine: Machine,
    rng: random.Random,
    factor: float,
    spec: ScenarioSpec,
    sites: ScenarioSites,
) -> Iterator[None]:
    """Execute *spec* on *machine* as a stream of scheduling ticks.

    Yields at slice boundaries (allocation bursts, traversal stretches,
    free batches) with no call scope held open, so several of these
    generators can be interleaved on one machine by the multi-tenant
    mixer.  Deterministic given *rng*.
    """
    table: Optional[HeapObject] = None
    if spec.table_kb:
        table = alloc_through(machine, sites.table_chain, spec.table_kb * 1024)
        machine.store(table, 0, 8)
        yield
    permanent: list[Item] = []
    for pidx, phase in enumerate(spec.phases):
        for _rep in range(phase.repeats):
            live: dict[str, list[Item]] = {}
            plan = burst_plan(
                rng,
                [
                    (
                        label,
                        max(1, int(spec.kind(label).base_count * weight * factor)),
                        spec.kind(label).burst,
                    )
                    for label, weight in phase.weights
                ],
            )
            since = 0
            for label in plan:
                kind = spec.kind(label)
                node = alloc_through(
                    machine, sites.node_chains[(pidx, label)], kind.size.sample(rng)
                )
                machine.store(node, 0, 8)
                cells: list[HeapObject] = []
                for _ in range(kind.cells):
                    cell = alloc_through(
                        machine,
                        sites.cell_chains[(pidx, label)],
                        kind.cell_size.sample(rng),
                    )
                    machine.store(cell, 0, 8)
                    cells.append(cell)
                live.setdefault(label, []).append((node, tuple(cells)))
                since += 1
                if since >= ALLOC_TICK:
                    since = 0
                    yield
            for label, _weight in phase.weights:
                kind = spec.kind(label)
                items = live.get(label, [])
                if kind.access != "none" and kind.hot_passes and items:
                    yield from _access_pass(machine, rng, spec, kind, items, table)
                if kind.lifetime == "transient" and items:
                    _free_items(machine, items)
                    live[label] = []
                    yield
            for label, _weight in phase.weights:
                kind = spec.kind(label)
                items = live.get(label, [])
                if not items:
                    continue
                if kind.lifetime == "phase":
                    _free_items(machine, items)
                    yield
                elif kind.lifetime == "churn":
                    # Free everything except each free_stride-th region,
                    # punching the adversarial fragmentation holes; the
                    # survivors pin their chunks until the end of the run.
                    drop = [
                        item
                        for index, item in enumerate(items)
                        if index % spec.free_stride
                    ]
                    _free_items(machine, drop)
                    permanent.extend(
                        item
                        for index, item in enumerate(items)
                        if not index % spec.free_stride
                    )
                    yield
                else:  # permanent
                    permanent.extend(items)
    _free_items(machine, permanent)
    if table is not None:
        machine.free(table)
    yield


class GeneratedWorkload(Workload):
    """A workload compiled from a :class:`ScenarioSpec`.

    Subclasses are created by :func:`compile_spec` with the ``spec`` class
    attribute filled in; they behave exactly like the hand-written
    benchmarks (same registry, same determinism contract: the RNG is
    seeded from name and scale by :meth:`Workload.run`).
    """

    suite = "generated"
    #: The scenario this class was compiled from (set by compile_spec).
    spec: ScenarioSpec

    def _build_program(self) -> Program:
        """Lay the scenario's call graph into a fresh program."""
        builder = ProgramBuilder(self.name)
        self._sites = build_sites(builder, self.spec)
        return builder.build()

    def _execute(self, machine: Machine, rng: random.Random, factor: float) -> None:
        """Drain the scenario's tick generator to completion."""
        ticks = 0
        for _ in scenario_ticks(machine, rng, factor, self.spec, self._sites):
            ticks += 1
        obs.inc("scenario.ticks", ticks, workload=self.name)
        obs.inc("scenario.runs", 1, workload=self.name)


def compile_spec(spec: ScenarioSpec) -> Type[GeneratedWorkload]:
    """Create (but do not register) the workload class for *spec*."""
    class_name = "Scenario_" + "".join(
        ch if ch.isalnum() else "_" for ch in spec.name
    )
    return type(
        class_name,
        (GeneratedWorkload,),
        {
            "__doc__": f"Generated scenario {spec.name} (config {spec.digest()}).",
            "spec": spec,
            "name": spec.name,
            "description": spec.description,
            "work_per_access": spec.work_per_access,
        },
    )


def register_scenario(spec: ScenarioSpec) -> Type[Workload]:
    """Compile *spec* and register it; idempotent for an identical spec.

    Re-registering the same name with a *different* config is an error —
    corpus entries and self-describing names must stay unambiguous.
    """
    existing = lookup(spec.name)
    if existing is not None:
        current = getattr(existing, "spec", None)
        if current is not None and current.digest() == spec.digest():
            return existing
        raise ScenarioError(
            f"workload name {spec.name!r} is already registered with a "
            "different definition"
        )
    cls = compile_spec(spec)
    register(cls)
    obs.inc("scenario.workloads", 1, workload=spec.name)
    return cls
