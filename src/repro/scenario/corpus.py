"""Named seeded corpora of generated scenarios with golden config hashes.

A *corpus* is a reproducible set of generated workload names (``scn-*``
and ``mix-*``) derived from one corpus seed, together with each entry's
config digest and a digest over the whole set.  The manifest is a small
JSON file checked into the repo (``corpora/default.json``); CI
regenerates the corpus from the seed and asserts the hashes, so any
change to the sampler, the DSL, or the canonical serialisation that
would silently re-meaning existing names is caught immediately.

``halo scenario gen`` builds a corpus and optionally materialises every
entry's full spec as JSON next to the manifest; ``halo scenario corpus``
verifies a manifest against freshly re-sampled specs.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Union

from .. import obs
from .mix import MixSpec
from .sample import parse_name
from .spec import ScenarioError

__all__ = [
    "CorpusEntry",
    "MANIFEST_VERSION",
    "build_corpus",
    "corpus_digest",
    "corpus_names",
    "load_manifest",
    "manifest_dict",
    "materialise_corpus",
    "verify_manifest",
    "write_manifest",
]

#: Manifest format version.
MANIFEST_VERSION = 1

#: Scheduler codes cycled across a corpus's mixes for coverage.
_MIX_CODES = ("rr", "wtd", "burst")


@dataclass(frozen=True)
class CorpusEntry:
    """One corpus member: a generated name pinned to its config digest."""

    name: str
    kind: str  # "scenario" | "mix"
    digest: str
    description: str

    def to_dict(self) -> dict:
        """Canonical dict form for the manifest."""
        return {
            "name": self.name,
            "kind": self.kind,
            "digest": self.digest,
            "description": self.description,
        }


def corpus_names(seed: int, scenarios: int = 4, mixes: int = 2) -> list[str]:
    """Derive the member names of the corpus for *seed*.

    A pure function of ``(seed, scenarios, mixes)``: scenario and mix
    seeds are drawn from a string-seeded stream, and mix schedulers cycle
    through the grammar codes so every scheduler appears in a large
    enough corpus.
    """
    rng = random.Random(f"corpus:{seed}")
    names = [f"scn-{rng.randrange(1_000_000)}" for _ in range(scenarios)]
    for index in range(mixes):
        mix_seed = rng.randrange(1_000_000)
        tenants = rng.randrange(2, 5)
        code = _MIX_CODES[index % len(_MIX_CODES)]
        names.append(f"mix-{mix_seed}x{tenants}-{code}")
    return names


def build_corpus(names: list[str]) -> tuple[CorpusEntry, ...]:
    """Resolve every generated *name* to a corpus entry with its digest."""
    entries = []
    for name in names:
        spec = parse_name(name)
        entries.append(
            CorpusEntry(
                name=name,
                kind="mix" if isinstance(spec, MixSpec) else "scenario",
                digest=spec.digest(),
                description=spec.description,
            )
        )
    obs.inc("scenario.corpus.entries", len(entries))
    return tuple(entries)


def corpus_digest(entries: tuple[CorpusEntry, ...]) -> str:
    """Digest over the whole corpus (order-sensitive name/digest pairs)."""
    payload = json.dumps([[e.name, e.digest] for e in entries]).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def manifest_dict(entries: tuple[CorpusEntry, ...], seed: int) -> dict:
    """The manifest's canonical dict form."""
    return {
        "version": MANIFEST_VERSION,
        "seed": seed,
        "corpus_digest": corpus_digest(entries),
        "entries": [entry.to_dict() for entry in entries],
    }


def write_manifest(
    path: Union[str, Path], entries: tuple[CorpusEntry, ...], seed: int
) -> None:
    """Write the corpus manifest JSON to *path*."""
    Path(path).write_text(
        json.dumps(manifest_dict(entries, seed), indent=2, sort_keys=True) + "\n"
    )


def load_manifest(path: Union[str, Path]) -> dict:
    """Load and structurally validate a corpus manifest."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"{path}: invalid manifest JSON: {exc}") from None
    if not isinstance(data, dict) or "entries" not in data:
        raise ScenarioError(f"{path}: not a corpus manifest (no entries)")
    if data.get("version") != MANIFEST_VERSION:
        raise ScenarioError(
            f"{path}: manifest version {data.get('version')!r} != {MANIFEST_VERSION}"
        )
    return data


def verify_manifest(path: Union[str, Path]) -> list[str]:
    """Re-sample every manifest entry and compare golden hashes.

    Returns a list of human-readable problems (empty when the manifest
    is reproducible bit-for-bit).
    """
    data = load_manifest(path)
    problems: list[str] = []
    entries = []
    for row in data["entries"]:
        name = row.get("name", "?")
        try:
            spec = parse_name(name)
        except ScenarioError as exc:
            problems.append(f"{name}: cannot re-sample: {exc}")
            continue
        fresh = spec.digest()
        entries.append(
            CorpusEntry(
                name=name,
                kind=row.get("kind", ""),
                digest=fresh,
                description=row.get("description", ""),
            )
        )
        if fresh != row.get("digest"):
            problems.append(
                f"{name}: config digest drifted: manifest {row.get('digest')!r} "
                f"!= regenerated {fresh!r}"
            )
    fresh_corpus = corpus_digest(tuple(entries))
    recorded = data.get("corpus_digest")
    if not problems and recorded != fresh_corpus:
        problems.append(
            f"corpus digest drifted: manifest {recorded!r} != regenerated "
            f"{fresh_corpus!r}"
        )
    return problems


def materialise_corpus(
    directory: Union[str, Path], entries: tuple[CorpusEntry, ...], seed: int
) -> list[Path]:
    """Write the manifest plus every entry's full spec JSON to *directory*.

    Returns the written paths (manifest first).  Spec files are the
    canonical serialisation, so ``halo scenario run --config <file>``
    reproduces the exact workload the name describes.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    manifest_path = directory / "manifest.json"
    write_manifest(manifest_path, entries, seed)
    written = [manifest_path]
    for entry in entries:
        spec = parse_name(entry.name)
        spec_path = directory / f"{entry.name}.json"
        spec_path.write_text(
            json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        written.append(spec_path)
    return written
