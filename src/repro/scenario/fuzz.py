"""Bridge from generated scenarios into the sanitizer fuzz matrix.

The differential fuzzer (:mod:`repro.sanitize.fuzz`) drives uniform
random heap-op sequences; generated scenarios contribute *structured*
sequences — sizes from their declared distributions, lifetime churn from
their declared classes, allocation weighted by their phase schedule — so
fuzz coverage grows with the corpus instead of with hand-tuned anchors.

:func:`scenario_ops` lowers a spec to the fuzzer's relative op encoding;
:func:`scenario_fuzz_entries` builds ``(FuzzConfig, extra_ops)`` pairs
for ``halo sanitize fuzz --scenarios N`` (the config's own ``ops`` is 0,
so the scenario sequence is the entire run).
"""

from __future__ import annotations

import random
from typing import Optional

from .. import obs
from ..sanitize.fuzz import FAMILIES, FuzzConfig, Op
from .sample import sample_spec
from .spec import ScenarioSpec

__all__ = ["scenario_fuzz_entries", "scenario_ops"]

#: Families whose realloc path the fuzzer exercises (bump-backed pools
#: keep the base-class realloc and are fuzzed realloc-free, matching
#: :func:`repro.sanitize.fuzz.generate_ops`).
_REALLOC_FAMILIES = (
    "size-class",
    "group",
    "sharded",
    "freelist-ff",
    "freelist-bf",
    "arena",
)


def scenario_ops(
    spec: ScenarioSpec, ops: int, seed: int, reallocs: bool = True
) -> list[Op]:
    """Lower *spec* to a deterministic fuzzer op sequence of length *ops*.

    Kinds are drawn with probability proportional to their scheduled
    allocation volume (base count times summed phase weights); each draw
    emits the node malloc plus its satellite cells, and free/realloc
    pressure mirrors the fuzzer's stationary mix.  Group ids follow the
    kind's site group, so kinds sharing a funnel share a fuzz group.
    """
    rng = random.Random(f"scenario-fuzz:{spec.name}:{seed}:{ops}")
    volumes = []
    for kind in spec.kinds:
        scheduled = sum(
            weight * phase.repeats
            for phase in spec.phases
            for label, weight in phase.weights
            if label == kind.label
        )
        volumes.append(max(kind.base_count * scheduled, 1.0))
    groups = sorted({kind.group for kind in spec.kinds})
    out: list[Op] = []
    live = 0
    while len(out) < ops:
        roll = rng.random()
        if live and roll < 0.35:
            out.append(("free", rng.randrange(1 << 30)))
            live -= 1
            continue
        index = rng.choices(range(len(spec.kinds)), weights=volumes)[0]
        kind = spec.kinds[index]
        if reallocs and live and roll < 0.45:
            out.append(("realloc", rng.randrange(1 << 30), kind.size.sample(rng)))
            continue
        group = groups.index(kind.group)
        out.append(("malloc", kind.size.sample(rng), group))
        live += 1
        for _ in range(kind.cells):
            if len(out) >= ops:
                break
            out.append(("malloc", kind.cell_size.sample(rng), group))
            live += 1
    obs.inc("scenario.fuzz.ops", len(out), scenario=spec.name)
    return out


def scenario_fuzz_entries(
    seed: int, count: int, ops: int, family: Optional[str] = None
) -> list[tuple[FuzzConfig, list[Op]]]:
    """Build *count* scenario-derived fuzz entries for the matrix.

    Scenario seeds derive from *seed*; families rotate through the full
    set (or pin to *family*).  Each entry's :class:`FuzzConfig` has
    ``ops=0`` — the scenario sequence is spliced in as ``extra_ops`` and
    is the whole run.
    """
    rng = random.Random(f"scenario-fuzz-matrix:{seed}")
    families = FAMILIES if family in (None, "all") else (family,)
    entries: list[tuple[FuzzConfig, list[Op]]] = []
    for index in range(count):
        scenario_seed = rng.randrange(1_000_000)
        spec = sample_spec(scenario_seed)
        fam = families[index % len(families)]
        config = FuzzConfig(family=fam, seed=scenario_seed, ops=0)
        sequence = scenario_ops(
            spec, ops, seed=scenario_seed, reallocs=fam in _REALLOC_FAMILIES
        )
        entries.append((config, sequence))
    return entries
