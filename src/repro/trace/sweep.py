"""Record-once, sweep-many parameter studies over a single event trace.

The ROADMAP's north star — "as many scenarios as you can imagine" — needs
the offline pipeline to be re-runnable at negligible cost.  Every helper
here starts from one :class:`~repro.trace.format.EventTrace` and varies a
single knob family:

* :func:`sweep_pipeline` — arbitrary :class:`~repro.core.pipeline.HaloParams`
  configurations; profiles are memoised per distinct affinity-parameter set
  (grouping-only sweeps re-profile zero times).
* :func:`sweep_affinity_distances` — the paper's Figure 12 window sweep.
* :func:`sweep_merge_tolerances` — grouping merge tolerance T (Figure 6).
* :func:`sweep_group_counts` — the ``max_groups`` cap.
* :func:`sweep_cache_geometries` — §5.2 what-if cache configurations, via a
  derived byte-address trace.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Optional, Sequence

from ..core.pipeline import HaloArtifacts, HaloParams, optimise_profile
from .replay import replay_profile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cache.hierarchy import HierarchyConfig, HierarchyStats
    from ..machine.program import Program
    from ..profiling.profiler import ProfileResult
    from .format import EventTrace


def sweep_pipeline(
    trace: "EventTrace",
    program: "Program",
    configs: Sequence[HaloParams],
) -> list[HaloArtifacts]:
    """Run the offline pipeline once per config, all from one trace.

    Profile replays are memoised on the affinity parameters, so configs
    that only differ downstream of profiling (grouping, chunk sizing,
    group caps) share a single replay.
    """
    profiles: dict = {}
    artifacts: list[HaloArtifacts] = []
    for config in configs:
        profile: Optional["ProfileResult"] = profiles.get(config.affinity)
        if profile is None:
            profile = profiles[config.affinity] = replay_profile(trace, program, config)
        artifacts.append(optimise_profile(profile, config))
    return artifacts


def sweep_affinity_distances(
    trace: "EventTrace",
    program: "Program",
    distances: Sequence[int],
    base: HaloParams | None = None,
) -> dict[int, HaloArtifacts]:
    """Sweep the affinity window size A (paper Figure 12)."""
    base = base or HaloParams()
    configs = [base.with_affinity_distance(d) for d in distances]
    return dict(zip(distances, sweep_pipeline(trace, program, configs)))


def sweep_merge_tolerances(
    trace: "EventTrace",
    program: "Program",
    tolerances: Sequence[float],
    base: HaloParams | None = None,
) -> dict[float, HaloArtifacts]:
    """Sweep the grouping merge tolerance T (paper Figure 6)."""
    base = base or HaloParams()
    configs = [
        replace(base, grouping=replace(base.grouping, merge_tolerance=t))
        for t in tolerances
    ]
    return dict(zip(tolerances, sweep_pipeline(trace, program, configs)))


def sweep_group_counts(
    trace: "EventTrace",
    program: "Program",
    counts: Sequence[Optional[int]],
    base: HaloParams | None = None,
) -> dict[Optional[int], HaloArtifacts]:
    """Sweep the cap on the number of groups (None = uncapped)."""
    base = base or HaloParams()
    configs = [replace(base, max_groups=count) for count in counts]
    return dict(zip(counts, sweep_pipeline(trace, program, configs)))


def sweep_cache_geometries(
    trace: "EventTrace",
    program: "Program",
    configs: Sequence["HierarchyConfig"],
    seed: int = 0,
) -> list["HierarchyStats"]:
    """Replay one recording through each cache geometry (§5.2 what-ifs).

    Concretises the event trace into a byte-address trace under the
    baseline allocator once, then replays the addresses through every
    geometry.
    """
    from .access import derive_access_trace, replay_geometries

    address_trace = derive_access_trace(trace, program, seed=seed)
    return replay_geometries(address_trace, configs)
