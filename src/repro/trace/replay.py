"""Re-driving the pipeline from a recorded event trace.

Two replay paths, trading fidelity against speed:

* :meth:`TraceReplayer.drive` re-executes the event stream against a real
  :class:`~repro.machine.machine.Machine` — allocator, cache hierarchy,
  instrumentation bits and listeners all behave exactly as in a direct run,
  so measurements (cycles, miss counts, fragmentation) are bit-identical to
  re-running the workload.  Use it to sweep allocator and cache-geometry
  configurations from one recording.
* :func:`replay_profile` skips the machine entirely and feeds the profiler
  through a minimal shim.  The profiler only ever observes object ids,
  sizes, allocation order, and the call stack — all of which the trace
  reproduces exactly — so the resulting
  :class:`~repro.profiling.profiler.ProfileResult` (affinity graph,
  contexts, HDS reference trace) is bit-identical to profiling the live
  workload, at a fraction of the cost.  Use it to sweep affinity-window
  sizes, merge tolerances, and group counts.

Both paths rely on the machine's oid-assignment invariant (sequential from
zero, ``oid == alloc_seq``), which lets the trace omit allocation ids.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Optional

from ..machine.heap import HeapObject
from .. import obs
from .format import (
    OP_ALLOC,
    OP_CALL,
    OP_FREE,
    OP_LOAD,
    OP_REALLOC,
    OP_RETURN,
    OP_STORE,
    OP_WORK,
    EventTrace,
    TraceFormatError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.pipeline import HaloParams
    from ..machine.machine import Machine
    from ..machine.program import Program
    from ..profiling.profiler import ProfileResult


class TraceReplayer:
    """Full-fidelity replay of an event trace onto a live machine.

    Args:
        trace: The recorded event stream.
        program: The static program of the recorded workload (call events
            are resolved against its call sites).
    """

    def __init__(self, trace: EventTrace, program: "Program") -> None:
        self.trace = trace
        self.program = program

    def drive(self, machine: "Machine") -> None:
        """Replay every event through *machine*'s public API.

        Calls ``machine.call/malloc/free/realloc/load/store/work/finish``
        in recorded order, so the allocator, cache hierarchy, state vector
        and any attached listeners observe an execution indistinguishable
        from the original workload run.  Usable as the ``driver`` argument
        of :func:`repro.harness.runner.run_measurement`.
        """
        if machine.program is not self.program and (
            machine.program.name != self.trace.header.program
        ):
            raise TraceFormatError(
                f"trace was recorded against program {self.trace.header.program!r}, "
                f"machine runs {machine.program.name!r}"
            )
        started = perf_counter()
        objects: dict[int, HeapObject] = {}
        scopes: list = []
        load = machine.load
        store = machine.store
        for event in self.trace.events():
            op = event[0]
            if op == OP_LOAD:
                load(objects[event[1]], event[2], event[3])
            elif op == OP_STORE:
                store(objects[event[1]], event[2], event[3])
            elif op == OP_CALL:
                scope = machine.call(event[1])
                scope.__enter__()
                scopes.append(scope)
            elif op == OP_RETURN:
                scopes.pop().__exit__(None, None, None)
            elif op == OP_ALLOC:
                obj = machine.malloc(event[1])
                objects[obj.oid] = obj
            elif op == OP_FREE:
                machine.free(objects.pop(event[1]))
            elif op == OP_REALLOC:
                machine.realloc(objects[event[1]], event[2])
            elif op == OP_WORK:
                machine.work(event[1])
            else:  # OP_END
                machine.finish()
        while scopes:  # pragma: no cover - only on truncated traces
            scopes.pop().__exit__(None, None, None)
        _publish_replay_metrics(self.trace, perf_counter() - started)


def _publish_replay_metrics(trace: EventTrace, elapsed: float) -> None:
    """Replay-throughput harvest (``trace.replay.*``); no-op when obs is off."""
    if obs.active_registry() is None:
        return
    workload = trace.header.workload
    obs.inc("trace.replays", 1, workload=workload)
    obs.inc("trace.replay.events", trace.header.events, workload=workload)
    obs.inc("trace.replay.seconds", elapsed, workload=workload)


class _ProfileShim:
    """Minimal machine stand-in for :func:`replay_profile`.

    The profiler reads exactly one machine attribute — the live call stack —
    so the lightweight replay maintains only that.
    """

    __slots__ = ("stack",)

    def __init__(self) -> None:
        self.stack: list = []


def replay_profile(
    trace: EventTrace,
    program: "Program",
    params: Optional["HaloParams"] = None,
    record_trace: bool = False,
) -> "ProfileResult":
    """Re-drive the affinity profiler from *trace* without a machine.

    Bit-identical to :func:`repro.core.pipeline.profile_workload` on the
    recorded (workload, scale) — same affinity graph, context table, object
    maps and (with ``record_trace=True``) HDS reference trace — but skips
    the workload body, the allocator, bounds checks and metrics, which is
    what makes warm parameter sweeps cheap.
    """
    from ..core.pipeline import HaloParams
    from ..profiling.profiler import Profiler

    params = params or HaloParams()
    started = perf_counter()
    profiler = Profiler(program, params.affinity, record_trace=record_trace)
    shim = _ProfileShim()
    stack = shim.stack
    sites = program.sites
    objects: dict[int, HeapObject] = {}
    next_oid = 0
    on_access = profiler.on_access
    on_alloc = profiler.on_alloc
    on_free = profiler.on_free
    for event in trace.events():
        op = event[0]
        if op == OP_LOAD:
            on_access(shim, objects[event[1]], event[2], event[3], False)
        elif op == OP_STORE:
            on_access(shim, objects[event[1]], event[2], event[3], True)
        elif op == OP_CALL:
            stack.append(sites[event[1]])
        elif op == OP_RETURN:
            stack.pop()
        elif op == OP_ALLOC:
            obj = HeapObject(next_oid, 0, event[1], next_oid)
            objects[next_oid] = obj
            next_oid += 1
            on_alloc(shim, obj)
        elif op == OP_FREE:
            obj = objects.pop(event[1])
            obj.alive = False
            on_free(shim, obj)
        elif op == OP_REALLOC:
            objects[event[1]].size = event[2]
        # OP_WORK / OP_END carry no profiling information.
    _publish_replay_metrics(trace, perf_counter() - started)
    return profiler.result()
