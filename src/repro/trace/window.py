"""Bounded per-key windows of recent event traces.

The serving daemon scores every candidate group table against *recent*
traffic before committing a hot-swap.  A :class:`TraceWindow` keeps the
last *capacity* traces recorded per key (one key per workload), stored
as encoded bytes so the whole window is trivially picklable into a
crash-safe snapshot — a window restored from a snapshot scores a
candidate identically to the window the live service held.

Traces are held encoded (:meth:`~repro.trace.format.EventTrace.to_bytes`)
and decoded on demand: the window is written once per epoch but read
only when a canary actually runs.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

from .format import EventTrace

__all__ = ["TraceWindow"]


class TraceWindow:
    """A sliding window of the last *capacity* traces for each key."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"window capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._traces: dict[str, deque[bytes]] = {}

    def push(self, key: str, trace: EventTrace) -> None:
        """Add *trace* under *key*, evicting the oldest past capacity."""
        ring = self._traces.get(key)
        if ring is None:
            ring = self._traces[key] = deque(maxlen=self.capacity)
        ring.append(trace.to_bytes())

    def latest(self, key: str) -> Optional[EventTrace]:
        """The most recent trace for *key*, or None when none recorded."""
        ring = self._traces.get(key)
        if not ring:
            return None
        return EventTrace.from_bytes(ring[-1])

    def traces(self, key: str) -> Iterator[EventTrace]:
        """All retained traces for *key*, oldest first."""
        for raw in self._traces.get(key, ()):
            yield EventTrace.from_bytes(raw)

    def keys(self) -> list[str]:
        """Keys with at least one retained trace, insertion-ordered."""
        return [key for key, ring in self._traces.items() if ring]

    def __len__(self) -> int:
        return sum(len(ring) for ring in self._traces.values())

    # -- snapshot round-trip ------------------------------------------------

    def state(self) -> dict[str, list[bytes]]:
        """Picklable window contents (encoded traces, oldest first)."""
        return {key: list(ring) for key, ring in self._traces.items()}

    @classmethod
    def from_state(cls, capacity: int, state: dict[str, list[bytes]]) -> "TraceWindow":
        """Rebuild a window from :meth:`state` output."""
        window = cls(capacity)
        for key, raws in state.items():
            ring = window._traces[key] = deque(maxlen=capacity)
            ring.extend(raws[-capacity:])
        return window
