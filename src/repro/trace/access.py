"""Byte-address access traces for cache-geometry what-if studies.

This is the *placement-dependent* view of an execution: a flat array of
(absolute address, size) pairs, replayable through any number of cache
geometries without re-running anything — the tool behind the §5.2
cache-pressure analysis ("on less sophisticated machines, the observed
speedups may be significantly larger").

It complements the placement-*independent* event trace of
:mod:`repro.trace.format`: an :class:`AccessTrace` can be captured live
(attach an :class:`AccessTraceRecorder`) or derived from a recorded event
trace plus an allocator configuration via :func:`derive_access_trace` —
one event recording concretises into a different address trace per
allocator, which is exactly the placement-vs-behaviour split the paper's
offline/online boundary rests on.

Traces are stored as flat numpy arrays, so a ref-scale run costs a few MiB.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..cache.hierarchy import CacheHierarchy, HierarchyConfig, HierarchyStats
from ..machine.events import Listener
from ..machine.machine import Machine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.program import Program
    from .format import EventTrace


class AccessTraceRecorder(Listener):
    """Listener recording every heap access as (address, size)."""

    def __init__(self) -> None:
        self._addresses: list[int] = []
        self._sizes: list[int] = []

    def on_access(self, machine: Machine, obj, offset: int, size: int, is_store: bool) -> None:
        """Append the access's absolute address and byte size."""
        self._addresses.append(obj.addr + offset)
        self._sizes.append(size)

    def trace(self) -> "AccessTrace":
        """Freeze the recording into an immutable trace."""
        return AccessTrace(
            np.asarray(self._addresses, dtype=np.int64),
            np.asarray(self._sizes, dtype=np.int32),
        )

    def __len__(self) -> int:
        return len(self._addresses)


class AccessTrace:
    """An immutable byte-level access trace."""

    def __init__(self, addresses: np.ndarray, sizes: np.ndarray) -> None:
        if addresses.shape != sizes.shape:
            raise ValueError("addresses and sizes must have equal length")
        self.addresses = addresses
        self.sizes = sizes

    def __len__(self) -> int:
        return int(self.addresses.shape[0])

    def line_stream(self, line_size: int = 64) -> np.ndarray:
        """The trace as a flat array of line addresses (straddles expanded).

        Computed vectorised: for each access, the lines from
        ``addr >> shift`` to ``(addr + size - 1) >> shift`` inclusive.
        """
        shift = line_size.bit_length() - 1
        first = self.addresses >> shift
        last = (self.addresses + self.sizes - 1) >> shift
        spans = (last - first + 1).astype(np.int64)
        if not len(self):
            return np.empty(0, dtype=np.int64)
        # Expand [first, last] ranges with a repeat + cumulative offset trick.
        total = int(spans.sum())
        starts = np.repeat(first, spans)
        offsets = np.arange(total) - np.repeat(np.cumsum(spans) - spans, spans)
        return starts + offsets

    def replay(
        self, config: HierarchyConfig | None = None, engine: str = "columnar"
    ) -> HierarchyStats:
        """Drive a fresh hierarchy with this trace and return its counters.

        The default ``columnar`` engine runs each structure as one
        chunked :func:`~repro.columnar.kernel.lru_filter` pass (bit-
        identical counters, far faster for geometry sweeps); pass
        ``engine="event"`` to drive the per-line simulator instead.
        """
        if engine == "columnar":
            from ..columnar.kernel import lru_filter, validate_geometry

            config = config or HierarchyConfig()
            validate_geometry(config)
            line = config.line_size
            line_shift = line.bit_length() - 1
            page_shift = config.page_size.bit_length() - 1
            lines = self.line_stream(line)
            # The per-line loop feeds the TLB one page per *line*.
            pages = lines << line_shift >> page_shift
            l1_misses, l1_missed = lru_filter(
                lines, config.l1_size // (config.l1_assoc * line), config.l1_assoc
            )
            l2_misses, l2_missed = lru_filter(
                l1_missed, config.l2_size // (config.l2_assoc * line), config.l2_assoc
            )
            l3_misses, _ = lru_filter(
                l2_missed, config.l3_size // (config.l3_assoc * line), config.l3_assoc
            )
            tlb_misses, _ = lru_filter(pages, 1, config.tlb_entries)
            return HierarchyStats(
                accesses=int(lines.shape[0]),
                l1_misses=l1_misses,
                l2_misses=l2_misses,
                l3_misses=l3_misses,
                tlb_misses=tlb_misses,
            )
        if engine != "event":
            raise ValueError(f"unknown replay engine {engine!r}")
        hierarchy = CacheHierarchy(config)
        l1 = hierarchy.l1.access_line
        l2 = hierarchy.l2.access_line
        l3 = hierarchy.l3.access_line
        tlb = hierarchy.tlb.access_page
        page_shift = hierarchy.config.page_size.bit_length() - 1
        line_shift = hierarchy.config.line_size.bit_length() - 1
        for line in self.line_stream(hierarchy.config.line_size).tolist():
            if not l1(line):
                if not l2(line):
                    l3(line)
            tlb(line << line_shift >> page_shift)
        return hierarchy.snapshot()


def replay_geometries(
    trace: AccessTrace, configs: Sequence[HierarchyConfig]
) -> list[HierarchyStats]:
    """Replay *trace* through each geometry in *configs*."""
    return [trace.replay(config) for config in configs]


def derive_access_trace(
    trace: "EventTrace",
    program: "Program",
    make_allocator=None,
    seed: int = 0,
) -> AccessTrace:
    """Concretise an event trace into a byte-address trace.

    Replays the placement-independent event stream through a real allocator
    (default: the jemalloc-like size-class baseline) so every access gains
    an absolute address.  Different allocator factories or seeds yield
    different address traces from the same recording.
    """
    from ..allocators.base import AddressSpace
    from ..allocators.size_class import SizeClassAllocator
    from .replay import TraceReplayer

    if make_allocator is None:
        make_allocator = SizeClassAllocator
    recorder = AccessTraceRecorder()
    machine = Machine(program, make_allocator(AddressSpace(seed)), listeners=[recorder])
    TraceReplayer(trace, program).drive(machine)
    return recorder.trace()
