"""Recording machine executions into event traces.

:class:`TraceRecorder` is a :class:`~repro.machine.events.Listener`: attach
it to any :class:`~repro.machine.machine.Machine` and it streams every
event — calls, returns, allocations, reallocations, frees, heap accesses,
compute work — into a :class:`~repro.trace.format.TraceWriter`.  This is
the analogue of the paper's Pin tool attaching to a live process
(Section 4.1), except the "process" is the simulated machine.

:func:`record_workload` is the one-call convenience used by the harness
and CLI: run a named workload once under a recorder and return the trace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

from ..machine.events import Listener
from .format import EventTrace, TraceWriter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..machine.heap import HeapObject
    from ..machine.machine import Machine
    from ..machine.program import CallSite
    from ..workloads.base import Workload


class TraceRecorder(Listener):
    """Listener that captures the complete event stream of one execution.

    The recorder is single-use: after the machine's ``finish`` fires (or
    after an explicit :meth:`close`), the completed trace is available as
    :attr:`trace`.

    Args:
        workload: Workload name stored in the trace header.
        scale: Input scale the workload runs at.
        seed: Address-space seed of the recorded run (informational only —
            the event stream is placement-independent).
        program: Program name stored in the trace header.
    """

    def __init__(
        self,
        workload: str = "",
        scale: str = "test",
        seed: int = 0,
        program: str = "",
    ) -> None:
        self.writer = TraceWriter(
            workload=workload, scale=scale, seed=seed, program=program
        )
        self.trace: Optional[EventTrace] = None

    # -- Listener hooks ----------------------------------------------------

    def on_call(self, machine: "Machine", site: "CallSite") -> None:
        """Record a call event (the site address; context is implicit)."""
        self.writer.call(site.addr)

    def on_return(self, machine: "Machine", site: "CallSite") -> None:
        """Record a return past the innermost call."""
        self.writer.ret()

    def on_alloc(self, machine: "Machine", obj: "HeapObject") -> None:
        """Record an allocation; oids are implicit (sequential)."""
        expected = self.writer.alloc(obj.size)
        if expected != obj.oid:  # pragma: no cover - defensive
            raise RuntimeError(
                f"trace oid {expected} diverged from machine oid {obj.oid}; "
                "was the recorder attached mid-run?"
            )

    def on_free(self, machine: "Machine", obj: "HeapObject") -> None:
        """Record a free by object id."""
        self.writer.free(obj.oid)

    def on_realloc(
        self, machine: "Machine", obj: "HeapObject", old_addr: int, old_size: int
    ) -> None:
        """Record a reallocation (new size; the old one is trace history)."""
        self.writer.realloc(obj.oid, obj.size)

    def on_access(
        self,
        machine: "Machine",
        obj: "HeapObject",
        offset: int,
        size: int,
        is_store: bool,
    ) -> None:
        """Record a load or store within an object."""
        self.writer.access(obj.oid, offset, size, is_store)

    def on_work(self, machine: "Machine", cycles: float) -> None:
        """Record compute-cycle accounting."""
        self.writer.work(cycles)

    def on_finish(self, machine: "Machine") -> None:
        """Record end-of-run and finalise the trace.

        Idempotent: some pipeline paths signal ``finish`` twice (the
        workload's own ``run`` plus the profiling driver); only the first
        is part of the recorded stream.
        """
        if self.trace is None:
            self.writer.end()
            self.trace = self.writer.close()

    # -- finalisation ------------------------------------------------------

    def close(self) -> EventTrace:
        """Finalise and return the trace (normally done by ``on_finish``)."""
        if self.trace is None:
            self.trace = self.writer.close()
        return self.trace


def record_workload(
    workload: Union[str, "Workload"],
    scale: str = "test",
    seed: int = 0,
) -> EventTrace:
    """Execute *workload* once and return its complete event trace.

    The machine uses the default size-class allocator; placement does not
    influence the event stream (workloads never observe heap addresses), so
    any recorded run stands in for every allocator/cache configuration.
    """
    from time import perf_counter

    from ..allocators.base import AddressSpace
    from ..allocators.size_class import SizeClassAllocator
    from ..machine.machine import Machine
    from ..workloads import get_workload
    from .. import obs

    if isinstance(workload, str):
        workload = get_workload(workload)
    recorder = TraceRecorder(
        workload=workload.name,
        scale=scale,
        seed=seed,
        program=workload.program.name,
    )
    machine = Machine(
        workload.program,
        SizeClassAllocator(AddressSpace(seed=seed)),
        listeners=[recorder],
    )
    started = perf_counter()
    workload.run(machine, scale)
    trace = recorder.close()
    if obs.active_registry() is not None:
        # Record throughput harvest (events and wall seconds per workload).
        obs.inc("trace.records", 1, workload=workload.name)
        obs.inc("trace.record.events", trace.header.events, workload=workload.name)
        obs.inc("trace.record.seconds", perf_counter() - started, workload=workload.name)
    return trace
