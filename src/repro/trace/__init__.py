"""Machine-event trace subsystem: record once, re-run the pipeline many times.

The paper's pipeline re-executes its workload for every profiling and
measurement run.  This package removes that cost the way trace-driven
binary-optimisation pipelines do: a :class:`TraceRecorder` captures the
complete machine-event stream (calls, returns, allocations, frees,
reallocations, heap accesses, compute work) into a compact varint/delta
binary format, and a :class:`TraceReplayer` (or the lightweight
:func:`replay_profile`) re-drives the affinity profiler, the HDS pipeline,
and full allocator/cache measurements directly from the recording.

Because workloads are deterministic in ``(name, scale)`` and never observe
heap addresses, one trace per workload serves *every* parameter
configuration — see :mod:`repro.trace.sweep` for the record-once,
sweep-many helpers.
"""

from .access import (
    AccessTrace,
    AccessTraceRecorder,
    derive_access_trace,
    replay_geometries,
)
from .format import (
    EventTrace,
    TraceFormatError,
    TraceHeader,
    TraceReader,
    TraceWriter,
)
from .record import TraceRecorder, record_workload
from .replay import TraceReplayer, replay_profile
from .sweep import (
    sweep_affinity_distances,
    sweep_cache_geometries,
    sweep_group_counts,
    sweep_merge_tolerances,
    sweep_pipeline,
)

__all__ = [
    "AccessTrace",
    "AccessTraceRecorder",
    "EventTrace",
    "TraceFormatError",
    "TraceHeader",
    "TraceReader",
    "TraceRecorder",
    "TraceReplayer",
    "TraceWriter",
    "derive_access_trace",
    "record_workload",
    "replay_geometries",
    "replay_profile",
    "sweep_affinity_distances",
    "sweep_cache_geometries",
    "sweep_group_counts",
    "sweep_merge_tolerances",
    "sweep_pipeline",
]
