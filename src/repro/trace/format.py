"""Compact binary machine-event trace format.

A trace captures the *complete* event stream of one workload execution at
the machine-API level — calls, returns, allocations, reallocations, frees,
heap accesses, and compute-cycle accounting — which is exactly the
information the Pin tool of the paper extracts from a live process
(Section 4.1).  Because the simulated workloads are deterministic given
``(name, scale)`` and never observe heap addresses, one recorded trace
re-drives the profiler, the HDS pipeline, and any allocator/cache
configuration without re-interpreting the workload program, the same way
BOLT-style pipelines decouple one-time profile collection from many
optimisation passes.

Wire format
-----------

The container is ``MAGIC | header-length (u32 LE) | header JSON | flags |
body``.  The header carries workload identity and per-opcode event counts
(written at close, so ``trace info`` never decodes the body).  The body is
a zlib-compressed stream of varint/delta-encoded events:

* integers use LEB128 (unsigned) or zigzag-LEB128 (signed deltas);
* ``CALL`` encodes the site address as a delta against the previous call's
  address (call sites cluster tightly in the synthetic text segment);
* object ids in ``LOAD``/``STORE``/``FREE``/``REALLOC`` are deltas against
  the most recently referenced object id; ``ALLOC`` omits the id entirely —
  ids are assigned sequentially from zero, mirroring the machine's
  :class:`~repro.machine.heap.ObjectTable`;
* ``WORK`` cycles are a varint when integral, a raw little-endian float64
  otherwise, preserving bit-identical ``compute_cycles`` on replay.

Format v2 adds a CRC32 of the (compressed) body to the header, so a
truncated or bit-flipped trace file is detected as a
:class:`TraceFormatError` at its first decode instead of being decoded
into garbage events.  v1 containers (no checksum) remain readable.

A ref-scale run costs a few MiB compressed.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO, Iterator, Optional, Union

from ..faults.plan import active_fault_plan

MAGIC = b"HALOTRC1"
FORMAT_VERSION = 2

#: Container versions this reader understands (v1 predates the body CRC).
SUPPORTED_FORMATS = (1, 2)

#: Body-encoding flag: zlib-compressed event stream.
FLAG_ZLIB = 0x01

# Event opcodes (wire values; also the tags of decoded event tuples).
OP_CALL = 0
OP_RETURN = 1
OP_ALLOC = 2
OP_FREE = 3
OP_REALLOC = 4
OP_LOAD = 5
OP_STORE = 6
OP_WORK = 7       # integral cycles, varint-encoded
OP_WORK_F64 = 8   # non-integral cycles, raw float64 (decoded as OP_WORK)
OP_END = 9

_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")

#: Flush the raw event buffer into the compressor at this size.
_FLUSH_THRESHOLD = 1 << 16


class TraceFormatError(Exception):
    """Raised for malformed or unsupported trace containers."""


@dataclass
class TraceHeader:
    """Identity and summary statistics of one recorded execution.

    The counts are per-opcode event totals; ``alloc_bytes`` sums requested
    allocation sizes and ``access_bytes`` sums load/store widths, giving
    ``trace info`` a footprint summary without decoding the body.
    """

    workload: str = ""
    scale: str = "test"
    seed: int = 0
    program: str = ""
    format: int = FORMAT_VERSION
    events: int = 0
    calls: int = 0
    allocs: int = 0
    frees: int = 0
    reallocs: int = 0
    loads: int = 0
    stores: int = 0
    works: int = 0
    alloc_bytes: int = 0
    access_bytes: int = 0
    #: CRC32 of the stored (compressed) body; None on v1 traces and on
    #: hand-built headers, which skips verification.
    crc32: Optional[int] = None
    extra: dict = field(default_factory=dict)

    def to_json(self) -> str:
        """Canonical JSON form written into the container."""
        payload = {k: v for k, v in self.__dict__.items()}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @staticmethod
    def from_json(text: str) -> "TraceHeader":
        """Parse a header from its container JSON."""
        data = json.loads(text)
        header = TraceHeader()
        for key, value in data.items():
            if hasattr(header, key):
                setattr(header, key, value)
        return header


def encode_uvarint(value: int) -> bytes:
    """LEB128-encode a non-negative integer (helper for tests/tools)."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def zigzag(value: int) -> int:
    """Map a signed integer to the unsigned zigzag domain."""
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def unzigzag(value: int) -> int:
    """Inverse of :func:`zigzag`."""
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


class TraceWriter:
    """Streaming encoder for one machine-event stream.

    Events are appended through the ``call``/``ret``/``alloc``/... methods
    (typically by :class:`~repro.trace.record.TraceRecorder`), encoded
    incrementally into a zlib compressor, and finalised by :meth:`close`
    into an :class:`EventTrace`.  Memory stays bounded by the compressed
    size, so ref-scale recordings do not hold the raw stream.
    """

    def __init__(
        self,
        workload: str = "",
        scale: str = "test",
        seed: int = 0,
        program: str = "",
    ) -> None:
        self.header = TraceHeader(
            workload=workload, scale=scale, seed=seed, program=program
        )
        self._buffer = bytearray()
        self._compressor = zlib.compressobj(6)
        self._chunks: list[bytes] = []
        self._last_call_addr = 0
        self._last_oid = 0
        self._next_oid = 0
        self._closed = False
        self._trace: Optional[EventTrace] = None

    # -- low-level emit ----------------------------------------------------

    def _emit_uvarint(self, value: int) -> None:
        buffer = self._buffer
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                buffer.append(byte | 0x80)
            else:
                buffer.append(byte)
                break

    def _maybe_flush(self) -> None:
        if len(self._buffer) >= _FLUSH_THRESHOLD:
            self._chunks.append(self._compressor.compress(bytes(self._buffer)))
            self._buffer.clear()

    # -- event emitters ----------------------------------------------------

    def call(self, site_addr: int) -> None:
        """Record control entering the call site at *site_addr*."""
        self._buffer.append(OP_CALL)
        self._emit_uvarint(zigzag(site_addr - self._last_call_addr))
        self._last_call_addr = site_addr
        header = self.header
        header.events += 1
        header.calls += 1
        self._maybe_flush()

    def ret(self) -> None:
        """Record control returning past the innermost recorded call."""
        self._buffer.append(OP_RETURN)
        self.header.events += 1
        self._maybe_flush()

    def alloc(self, size: int) -> int:
        """Record an allocation of *size* bytes; returns its implicit oid."""
        self._buffer.append(OP_ALLOC)
        self._emit_uvarint(size)
        oid = self._next_oid
        self._next_oid = oid + 1
        self._last_oid = oid
        header = self.header
        header.events += 1
        header.allocs += 1
        header.alloc_bytes += size
        self._maybe_flush()
        return oid

    def free(self, oid: int) -> None:
        """Record the free of object *oid*."""
        self._buffer.append(OP_FREE)
        self._emit_uvarint(zigzag(oid - self._last_oid))
        self._last_oid = oid
        header = self.header
        header.events += 1
        header.frees += 1
        self._maybe_flush()

    def realloc(self, oid: int, new_size: int) -> None:
        """Record the reallocation of object *oid* to *new_size* bytes."""
        self._buffer.append(OP_REALLOC)
        self._emit_uvarint(zigzag(oid - self._last_oid))
        self._emit_uvarint(new_size)
        self._last_oid = oid
        header = self.header
        header.events += 1
        header.reallocs += 1
        self._maybe_flush()

    def access(self, oid: int, offset: int, size: int, is_store: bool) -> None:
        """Record a load or store of *size* bytes at *offset* in *oid*."""
        buffer = self._buffer
        buffer.append(OP_STORE if is_store else OP_LOAD)
        delta = oid - self._last_oid
        self._last_oid = oid
        self._emit_uvarint((delta << 1) if delta >= 0 else ((-delta << 1) - 1))
        self._emit_uvarint(offset)
        self._emit_uvarint(size)
        header = self.header
        header.events += 1
        if is_store:
            header.stores += 1
        else:
            header.loads += 1
        header.access_bytes += size
        if len(buffer) >= _FLUSH_THRESHOLD:
            self._chunks.append(self._compressor.compress(bytes(buffer)))
            buffer.clear()

    def work(self, cycles: float) -> None:
        """Record *cycles* of non-memory compute."""
        as_int = int(cycles)
        if as_int == cycles and 0 <= as_int < (1 << 53):
            self._buffer.append(OP_WORK)
            self._emit_uvarint(as_int)
        else:
            self._buffer.append(OP_WORK_F64)
            self._buffer.extend(_F64.pack(cycles))
        header = self.header
        header.events += 1
        header.works += 1
        self._maybe_flush()

    def end(self) -> None:
        """Record the end-of-run marker (the machine's ``finish``)."""
        self._buffer.append(OP_END)
        self.header.events += 1

    # -- finalisation ------------------------------------------------------

    def close(self) -> "EventTrace":
        """Finalise the stream and return the completed trace (idempotent).

        Stamps the header with the CRC32 of the compressed body (format
        v2), so every write path downstream of the writer can detect
        truncation and bit-flips.
        """
        if not self._closed:
            if self._buffer:
                self._chunks.append(self._compressor.compress(bytes(self._buffer)))
                self._buffer.clear()
            self._chunks.append(self._compressor.flush())
            self._closed = True
            body = b"".join(self._chunks)
            self.header.crc32 = zlib.crc32(body)
            self._trace = EventTrace(self.header, body)
            self._chunks.clear()
        assert self._trace is not None
        return self._trace


def _decode_into(
    data: Union[bytes, bytearray, memoryview],
    pos: int,
    end: int,
    out: list,
    state: list,
) -> int:
    """Decode complete events from ``data[pos:end]`` into *out*.

    *state* is the mutable ``[last_call_addr, last_oid, next_oid]`` decoder
    state, updated in place.  Returns the offset one past the last *fully*
    decoded event; a trailing partial event (possible when streaming
    chunk-by-chunk) is left for the next call.
    """
    last_addr, last_oid, next_oid = state
    append = out.append
    good = pos
    try:
        while pos < end:
            op = data[pos]
            pos += 1
            if op == OP_LOAD or op == OP_STORE:
                result = data[pos]
                pos += 1
                if result & 0x80:
                    result &= 0x7F
                    shift = 7
                    while True:
                        byte = data[pos]
                        pos += 1
                        result |= (byte & 0x7F) << shift
                        if not byte & 0x80:
                            break
                        shift += 7
                last_oid += (result >> 1) if not result & 1 else -((result + 1) >> 1)
                offset = data[pos]
                pos += 1
                if offset & 0x80:
                    offset &= 0x7F
                    shift = 7
                    while True:
                        byte = data[pos]
                        pos += 1
                        offset |= (byte & 0x7F) << shift
                        if not byte & 0x80:
                            break
                        shift += 7
                size = data[pos]
                pos += 1
                if size & 0x80:
                    size &= 0x7F
                    shift = 7
                    while True:
                        byte = data[pos]
                        pos += 1
                        size |= (byte & 0x7F) << shift
                        if not byte & 0x80:
                            break
                        shift += 7
                append((op, last_oid, offset, size))
            elif op == OP_CALL:
                result = 0
                shift = 0
                while True:
                    byte = data[pos]
                    pos += 1
                    result |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                last_addr += (result >> 1) if not result & 1 else -((result + 1) >> 1)
                append((OP_CALL, last_addr))
            elif op == OP_RETURN:
                append(_RETURN_EVENT)
            elif op == OP_WORK:
                result = 0
                shift = 0
                while True:
                    byte = data[pos]
                    pos += 1
                    result |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                append((OP_WORK, float(result)))
            elif op == OP_ALLOC:
                result = 0
                shift = 0
                while True:
                    byte = data[pos]
                    pos += 1
                    result |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                last_oid = next_oid
                next_oid += 1
                append((OP_ALLOC, result))
            elif op == OP_FREE:
                result = 0
                shift = 0
                while True:
                    byte = data[pos]
                    pos += 1
                    result |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                last_oid += (result >> 1) if not result & 1 else -((result + 1) >> 1)
                append((OP_FREE, last_oid))
            elif op == OP_REALLOC:
                result = 0
                shift = 0
                while True:
                    byte = data[pos]
                    pos += 1
                    result |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                last_oid += (result >> 1) if not result & 1 else -((result + 1) >> 1)
                result = 0
                shift = 0
                while True:
                    byte = data[pos]
                    pos += 1
                    result |= (byte & 0x7F) << shift
                    if not byte & 0x80:
                        break
                    shift += 7
                append((OP_REALLOC, last_oid, result))
            elif op == OP_WORK_F64:
                if pos + 8 > end:
                    raise IndexError("partial float64")
                append((OP_WORK, _F64.unpack_from(data, pos)[0]))
                pos += 8
            elif op == OP_END:
                append(_END_EVENT)
            else:
                raise TraceFormatError(f"unknown opcode {op} at offset {pos - 1}")
            good = pos
    except IndexError:
        pass  # partial trailing event: resume from `good` with more data
    state[0] = last_addr
    state[1] = last_oid
    state[2] = next_oid
    return good


_RETURN_EVENT = (OP_RETURN,)
_END_EVENT = (OP_END,)


class TraceColumns:
    """Columnar (struct-of-arrays) view of one decoded event stream.

    The batched simulation engine (:mod:`repro.columnar`) consumes events
    as flat columns instead of per-event tuples:

    * ``acc_oid`` / ``acc_offset`` / ``acc_size`` — one int64 entry per
      load/store, in stream order.  Absolute addresses are obtained later
      by indexing an allocator-specific base table with ``acc_oid``.
    * ``heap_ops`` — ``(op, a, b, acc_ptr)`` tuples for ALLOC/FREE/REALLOC
      only (``a`` = size or oid, ``b`` = realloc new size), where
      ``acc_ptr`` is the number of accesses preceding the op.  Enough to
      re-drive any allocator whose decisions ignore the call stack.
    * ``ctrl_ops`` — the heap ops plus CALL/RETURN markers, same shape
      (CALL's ``a`` is the site address).  Needed when the allocator's
      group matcher reads the state vector or the live call stack.
    * ``works`` — float64 compute-cycle entries in stream order.

    All columns are built in one pass over the decoded event list and
    cached on the owning :class:`EventTrace`.
    """

    __slots__ = (
        "acc_oid", "acc_offset", "acc_size", "heap_ops", "ctrl_ops",
        "works", "call_addrs", "loads", "stores", "allocs", "frees",
        "reallocs", "calls",
    )

    def __init__(self, events: list) -> None:
        import numpy as np

        acc_oid: list[int] = []
        acc_offset: list[int] = []
        acc_size: list[int] = []
        heap_ops: list[tuple] = []
        ctrl_ops: list[tuple] = []
        works: list[float] = []
        call_addrs: list[int] = []
        loads = stores = 0
        for event in events:
            op = event[0]
            if op == OP_LOAD or op == OP_STORE:
                acc_oid.append(event[1])
                acc_offset.append(event[2])
                acc_size.append(event[3])
                if op == OP_STORE:
                    stores += 1
                else:
                    loads += 1
            elif op == OP_CALL:
                call_addrs.append(event[1])
                ctrl_ops.append((OP_CALL, event[1], 0, len(acc_oid)))
            elif op == OP_RETURN:
                ctrl_ops.append((OP_RETURN, 0, 0, len(acc_oid)))
            elif op == OP_WORK:
                works.append(event[1])
            elif op == OP_ALLOC:
                entry = (OP_ALLOC, event[1], 0, len(acc_oid))
                heap_ops.append(entry)
                ctrl_ops.append(entry)
            elif op == OP_FREE:
                entry = (OP_FREE, event[1], 0, len(acc_oid))
                heap_ops.append(entry)
                ctrl_ops.append(entry)
            elif op == OP_REALLOC:
                entry = (OP_REALLOC, event[1], event[2], len(acc_oid))
                heap_ops.append(entry)
                ctrl_ops.append(entry)
            # OP_END carries no simulation state.
        self.acc_oid = np.asarray(acc_oid, dtype=np.int64)
        self.acc_offset = np.asarray(acc_offset, dtype=np.int64)
        self.acc_size = np.asarray(acc_size, dtype=np.int64)
        self.heap_ops = heap_ops
        self.ctrl_ops = ctrl_ops
        self.works = np.asarray(works, dtype=np.float64)
        self.call_addrs = call_addrs
        self.loads = loads
        self.stores = stores
        self.allocs = sum(1 for op in heap_ops if op[0] == OP_ALLOC)
        self.frees = sum(1 for op in heap_ops if op[0] == OP_FREE)
        self.reallocs = len(heap_ops) - self.allocs - self.frees
        self.calls = len(call_addrs)

    @property
    def accesses(self) -> int:
        """Total load/store events."""
        return int(self.acc_oid.shape[0])


class EventTrace:
    """An immutable recorded event stream plus its identifying header.

    The compressed body is the canonical representation (what travels
    through the artifact cache and trace files); :meth:`events` decodes it
    once into a list of event tuples and caches the result, so repeated
    replays — the parameter-sweep case — pay the decode cost a single time.
    """

    def __init__(self, header: TraceHeader, body: bytes, flags: int = FLAG_ZLIB) -> None:
        self.header = header
        self.body = body
        self.flags = flags
        self._events: Optional[list[tuple]] = None
        self._columns: Optional[TraceColumns] = None

    def __len__(self) -> int:
        return self.header.events

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        h = self.header
        return (
            f"EventTrace({h.workload!r}, scale={h.scale!r}, "
            f"{h.events} events, {len(self.body)} bytes)"
        )

    # -- decoding ----------------------------------------------------------

    def _raw_body(self) -> bytes:
        if self.flags & FLAG_ZLIB:
            try:
                return zlib.decompress(self.body)
            except zlib.error as exc:
                raise TraceFormatError(f"corrupt compressed trace body: {exc}") from exc
        return self.body

    def verify(self) -> bool:
        """Whether the stored body matches the header checksum.

        True for v1 traces and hand-built headers (no checksum recorded):
        absence of evidence is not treated as corruption.
        """
        expected = self.header.crc32
        return expected is None or zlib.crc32(self.body) == expected

    def _check_body(self) -> None:
        """Raise :class:`TraceFormatError` on checksum mismatch or injected faults."""
        plan = active_fault_plan()
        if plan is not None and plan.fail_trace_decode(self.header.workload):
            raise TraceFormatError(
                f"fault injection: forced decode failure for {self.header.workload!r}"
            )
        if not self.verify():
            raise TraceFormatError(
                f"trace body checksum mismatch for {self.header.workload!r} "
                f"(expected {self.header.crc32:#010x}, got {zlib.crc32(self.body):#010x})"
            )

    def events(self) -> list[tuple]:
        """Decode (once) and return the full event list.

        The body checksum is verified first (format v2), so truncation and
        bit-flips surface as :class:`TraceFormatError` at the decode
        boundary rather than as garbage events downstream.
        """
        if self._events is None:
            self._check_body()
            data = self._raw_body()
            out: list[tuple] = []
            state = [0, 0, 0]
            consumed = _decode_into(data, 0, len(data), out, state)
            if consumed != len(data):
                raise TraceFormatError(
                    f"trailing garbage: decoded {consumed} of {len(data)} body bytes"
                )
            if len(out) != self.header.events:
                raise TraceFormatError(
                    f"header promises {self.header.events} events, body holds {len(out)}"
                )
            self._events = out
        return self._events

    def read_all(self) -> list[tuple]:
        """Bulk-decode the entire body in one pass (the array-decode path).

        Alias of :meth:`events`: one decompression, one decode loop, one
        cached list — the entry point batch consumers (``trace info``, the
        columnar engine) should use instead of :meth:`iter_events`.
        """
        return self.events()

    def columns(self) -> TraceColumns:
        """Decode (once) into the cached columnar struct-of-arrays view."""
        if self._columns is None:
            self._columns = TraceColumns(self.read_all())
        return self._columns

    def iter_events(self, chunk_size: int = 1 << 16) -> Iterator[tuple]:
        """Stream events without materialising the full list.

        Decompresses and decodes in *chunk_size* steps, holding only one
        chunk plus any partial trailing event; the constant-memory path for
        tools that scan very large traces.
        """
        if self._events is not None:
            yield from self._events
            return
        self._check_body()
        decompressor = zlib.decompressobj() if self.flags & FLAG_ZLIB else None
        pending = bytearray()
        state = [0, 0, 0]
        out: list[tuple] = []
        for start in range(0, len(self.body), chunk_size):
            chunk = self.body[start:start + chunk_size]
            pending.extend(decompressor.decompress(chunk) if decompressor else chunk)
            consumed = _decode_into(pending, 0, len(pending), out, state)
            del pending[:consumed]
            yield from out
            out.clear()
        if decompressor is not None:
            pending.extend(decompressor.flush())
        consumed = _decode_into(pending, 0, len(pending), out, state)
        if consumed != len(pending):
            raise TraceFormatError("truncated trace body")
        yield from out

    # -- container I/O -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise the full container (header + body)."""
        header_json = self.header.to_json().encode()
        return b"".join(
            (MAGIC, _U32.pack(len(header_json)), header_json, bytes([self.flags]), self.body)
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the container to *path*; returns the path."""
        path = Path(path)
        path.write_bytes(self.to_bytes())
        return path

    @staticmethod
    def from_bytes(raw: bytes) -> "EventTrace":
        """Parse a container previously produced by :meth:`to_bytes`."""
        if raw[: len(MAGIC)] != MAGIC:
            raise TraceFormatError("not a HALO event trace (bad magic)")
        pos = len(MAGIC)
        (header_len,) = _U32.unpack_from(raw, pos)
        pos += 4
        header = TraceHeader.from_json(raw[pos:pos + header_len].decode())
        if header.format not in SUPPORTED_FORMATS:
            raise TraceFormatError(f"unsupported trace format version {header.format}")
        pos += header_len
        flags = raw[pos]
        pos += 1
        return EventTrace(header, raw[pos:], flags=flags)

    @staticmethod
    def load(path: Union[str, Path]) -> "EventTrace":
        """Read a container from *path*."""
        return EventTrace.from_bytes(Path(path).read_bytes())


class TraceReader:
    """Streaming reader over a trace *file*: header up front, events lazily.

    Unlike :meth:`EventTrace.load`, the compressed body is pulled from disk
    chunk-by-chunk during iteration, so scanning a trace never holds the
    whole file in memory.
    """

    def __init__(self, path: Union[str, Path], chunk_size: int = 1 << 16) -> None:
        self.path = Path(path)
        self.chunk_size = chunk_size
        with open(self.path, "rb") as handle:
            self.header, self.flags, self._body_offset = _read_container_head(handle)

    def read_all(self) -> list[tuple]:
        """Bulk-decode the whole file: one read, one inflate, one decode pass.

        Much faster than ``list(reader)`` for tools that want every event
        anyway (``trace info`` statistics, the columnar engine); the
        chunked iterator remains the constant-memory path.
        """
        raw = self.path.read_bytes()
        trace = EventTrace(self.header, raw[self._body_offset:], flags=self.flags)
        return trace.read_all()

    def __iter__(self) -> Iterator[tuple]:
        decompressor = zlib.decompressobj() if self.flags & FLAG_ZLIB else None
        pending = bytearray()
        state = [0, 0, 0]
        out: list[tuple] = []
        crc = 0
        with open(self.path, "rb") as handle:
            handle.seek(self._body_offset)
            while True:
                chunk = handle.read(self.chunk_size)
                if not chunk:
                    break
                crc = zlib.crc32(chunk, crc)
                try:
                    pending.extend(
                        decompressor.decompress(chunk) if decompressor else chunk
                    )
                except zlib.error as exc:
                    raise TraceFormatError(
                        f"corrupt compressed trace body in {self.path}: {exc}"
                    ) from exc
                consumed = _decode_into(pending, 0, len(pending), out, state)
                del pending[:consumed]
                yield from out
                out.clear()
        if self.header.crc32 is not None and crc != self.header.crc32:
            raise TraceFormatError(
                f"trace body checksum mismatch in {self.path} "
                f"(expected {self.header.crc32:#010x}, got {crc:#010x})"
            )
        if decompressor is not None:
            pending.extend(decompressor.flush())
        consumed = _decode_into(pending, 0, len(pending), out, state)
        if consumed != len(pending):
            raise TraceFormatError(f"truncated trace body in {self.path}")
        yield from out


def _read_container_head(handle: BinaryIO) -> tuple[TraceHeader, int, int]:
    """Parse magic + header + flags from *handle*; returns body offset too."""
    magic = handle.read(len(MAGIC))
    if magic != MAGIC:
        raise TraceFormatError("not a HALO event trace (bad magic)")
    (header_len,) = _U32.unpack(handle.read(4))
    header = TraceHeader.from_json(handle.read(header_len).decode())
    if header.format not in SUPPORTED_FORMATS:
        raise TraceFormatError(f"unsupported trace format version {header.format}")
    flags = handle.read(1)[0]
    return header, flags, len(MAGIC) + 4 + header_len + 1
