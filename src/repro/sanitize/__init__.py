"""Heap sanitizer: invariant checker, shadow-heap oracle, differential fuzzer.

The paper's claims rest on the group allocator's placement and reclamation
semantics (Section 4.4, Figure 11); this package is the machinery that
*checks* those semantics instead of trusting them:

* :mod:`repro.sanitize.invariants` — a full walk over every allocator's
  internal state (chunk geometry, ``live_regions`` accounting, spare-list
  bounds, cross-allocator region overlap), run at phase boundaries and
  every Nth heap op under ``--sanitize``;
* :mod:`repro.sanitize.shadow` — an order-preserving reference allocator
  mirroring every malloc/free/realloc as a machine listener, cross-checking
  liveness, ``size_of`` and double-free behaviour against the real
  allocator;
* :mod:`repro.sanitize.fuzz` — seeded differential fuzzing of all four
  allocator families against the oracle (``halo sanitize fuzz``), with
  ddmin-style shrinking of failing sequences to a minimal reproducer.

See ``docs/SANITIZER.md`` for usage and the bug classes each layer catches.
"""

from .invariants import (
    Finding,
    SanitizerConfig,
    SanitizerError,
    active_sanitizer,
    clear_sanitizer,
    install_sanitizer,
    sanitizer_active,
    validate_allocator,
    validate_machine,
)
from .shadow import SanitizerListener, ShadowHeap
from .fuzz import (
    FAMILIES,
    FuzzConfig,
    FuzzReport,
    default_scenarios,
    format_ops,
    generate_ops,
    run_fuzz,
    run_ops,
    shrink_ops,
)

__all__ = [
    "FAMILIES",
    "Finding",
    "FuzzConfig",
    "FuzzReport",
    "SanitizerConfig",
    "SanitizerError",
    "SanitizerListener",
    "ShadowHeap",
    "active_sanitizer",
    "clear_sanitizer",
    "default_scenarios",
    "format_ops",
    "generate_ops",
    "install_sanitizer",
    "run_fuzz",
    "run_ops",
    "sanitizer_active",
    "shrink_ops",
    "validate_allocator",
    "validate_machine",
]
