"""Differential fuzz harness for the allocator families.

``run_fuzz`` drives seeded random heap-op sequences — sizes skewed around
``max_grouped_size``, page and chunk boundaries; colouring on or off; fault
plans active — against a real allocator with the :class:`ShadowHeap`
oracle mirroring every op, and runs the invariant walk every
``check_interval`` ops.  Any disagreement (overlap, double free, size
drift, violated invariant, unexpected exception) is a finding, and the
failing sequence is shrunk ddmin-style to a minimal reproducer.

Op encoding is deliberately *relative* so that any subsequence of a
failing sequence is itself executable:

* ``("malloc", size, group)`` — allocate ``size`` bytes; ``group`` is the
  group id the matcher will report (``None`` forwards to the fallback);
  families without grouping ignore it;
* ``("free", k)`` — free the ``k mod len(live)``-th live region;
* ``("realloc", k, new_size)`` — realloc the ``k mod len(live)``-th live
  region;
* ``("corrupt", tag)`` — invoke a registered corruptor on the allocator
  (test fixtures use this to plant deliberate state damage and check that
  shrinking reduces the sequence around it).

Exposed through the CLI as ``halo sanitize fuzz``.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from ..allocators.arena import ArenaAllocator
from ..allocators.base import AddressSpace, PAGE_SIZE
from ..allocators.bump import BumpAllocator
from ..allocators.freelist import FreeListAllocator
from ..allocators.group import GroupAllocator, _Chunk
from ..allocators.random_group import RandomPoolAllocator
from ..allocators.sharded import ShardedGroupAllocator
from ..allocators.size_class import SizeClassAllocator
from ..faults.plan import FaultPlan, fault_plan_active
from .invariants import Finding, validate_allocator
from .shadow import ShadowHeap

#: Allocator families the fuzzer covers.
FAMILIES = (
    "size-class",
    "bump",
    "random-pools",
    "group",
    "sharded",
    "freelist-ff",
    "freelist-bf",
    "arena",
)

Op = tuple
Corruptors = dict[str, Callable]


class _FixedMatcher:
    """Group selector driven by the fuzzer: whatever group the op names."""

    def __init__(self) -> None:
        self.group: Optional[int] = None

    def match(self, state: int) -> Optional[int]:
        return self.group


class _FixedState:
    """State-vector stand-in; the fixed matcher never reads it."""

    value = 0


@dataclass(frozen=True)
class FuzzConfig:
    """One fuzzing scenario: a family plus allocator-shaping knobs.

    The group-family defaults use a small chunk so chunk exhaustion,
    retirement and spare reuse all happen within a few thousand ops —
    with the paper's 1 MiB chunks a short fuzz run never displaces a
    current chunk.
    """

    family: str = "group"
    seed: int = 0
    ops: int = 10_000
    check_interval: int = 256
    chunk_size: int = 1 << 14
    slab_size: int = 1 << 18
    max_spare_chunks: int = 1
    max_grouped_size: int = PAGE_SIZE
    always_reuse_chunks: bool = False
    colour_stride: int = 0
    groups: int = 4
    pool_size: int = 1 << 22
    #: When set, the whole run executes under
    #: ``FaultPlan(group_max_chunks=...)`` so the degrade-to-fallback path
    #: is part of the fuzzed surface.
    chunk_budget: Optional[int] = None

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(
                f"unknown family {self.family!r}; expected one of {FAMILIES}"
            )


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    config: FuzzConfig
    findings: list[Finding]
    executed: int
    reproducer: Optional[list[Op]] = None

    @property
    def ok(self) -> bool:
        return not self.findings


def generate_ops(config: FuzzConfig) -> list[Op]:
    """Deterministic op sequence for *config* (same seed, same ops)."""
    # String seeding is deterministic across processes (unlike tuple
    # hashing, which PYTHONHASHSEED randomises).
    rng = random.Random(f"{config.seed}:{config.family}:{config.ops}")
    boundary = _size_anchors(config)
    ops: list[Op] = []
    live = 0
    # Bump pools (standalone or behind the random-pools scatter) inherit
    # the base-class realloc, whose shrink path intentionally leaves their
    # bookkeeping untouched; keep those families realloc-free.
    reallocs = config.family not in ("bump", "random-pools")
    for _ in range(config.ops):
        roll = rng.random()
        if live and roll < 0.38:
            ops.append(("free", rng.randrange(1 << 30)))
            live -= 1
        elif reallocs and live and roll < 0.50:
            ops.append(("realloc", rng.randrange(1 << 30), _draw_size(rng, boundary, config)))
        else:
            group: Optional[int] = None
            if rng.random() < 0.9:
                group = rng.randrange(config.groups)
            ops.append(("malloc", _draw_size(rng, boundary, config), group))
            live += 1
    return ops


def _size_anchors(config: FuzzConfig) -> list[int]:
    """Sizes worth clustering around: class edges and structural limits."""
    payload = config.chunk_size - _Chunk.HEADER_SIZE
    anchors = [
        8,
        16,
        64,
        256,
        1024,
        PAGE_SIZE,
        config.max_grouped_size,
        payload,
    ]
    if config.family == "size-class":
        # Straddle the small/large split too.
        anchors.append(14336)
    return anchors


def _draw_size(rng: random.Random, anchors: Sequence[int], config: FuzzConfig) -> int:
    if rng.random() < 0.6:
        size = rng.choice(anchors) + rng.randrange(-16, 17)
    else:
        size = 1 << rng.randrange(0, 13)
        size += rng.randrange(size)
    ceiling = config.pool_size if config.family == "bump" else 2 * config.max_grouped_size
    return max(1, min(size, ceiling))


def _build_allocator(config: FuzzConfig, space: AddressSpace):
    if config.family == "size-class":
        return SizeClassAllocator(space)
    if config.family == "bump":
        return BumpAllocator(space, pool_size=config.pool_size)
    if config.family == "random-pools":
        return RandomPoolAllocator(
            space,
            SizeClassAllocator(space),
            pools=config.groups,
            seed=config.seed,
            pool_size=config.pool_size,
        )
    if config.family in ("freelist-ff", "freelist-bf"):
        policy = "first-fit" if config.family == "freelist-ff" else "best-fit"
        return FreeListAllocator(space, policy=policy, pool_size=config.pool_size)
    if config.family == "arena":
        return ArenaAllocator(space, arenas=config.groups, pool_size=config.pool_size)
    cls = ShardedGroupAllocator if config.family == "sharded" else GroupAllocator
    return cls(
        space,
        SizeClassAllocator(space),
        _FixedMatcher(),
        _FixedState(),
        chunk_size=config.chunk_size,
        slab_size=config.slab_size,
        max_spare_chunks=config.max_spare_chunks,
        max_grouped_size=config.max_grouped_size,
        always_reuse_chunks=config.always_reuse_chunks,
        colour_stride=config.colour_stride,
    )


def run_ops(
    ops: Sequence[Op],
    config: FuzzConfig,
    corruptors: Optional[Corruptors] = None,
) -> list[Finding]:
    """Execute *ops* against a fresh allocator; stop at the first failure.

    Stopping at the first finding keeps re-execution cheap during
    shrinking: a candidate subsequence either reproduces the failure
    (usually early) or runs clean.
    """
    plan = (
        fault_plan_active(FaultPlan(group_max_chunks=config.chunk_budget))
        if config.chunk_budget is not None
        else nullcontext()
    )
    space = AddressSpace(seed=config.seed)
    allocator = _build_allocator(config, space)
    matcher = getattr(allocator, "matcher", None)
    # Thread-aware families (per-thread arenas) reuse the malloc op's group
    # field as the issuing thread: frees and reallocs then run on whichever
    # thread allocated last, so cross-thread traffic arises naturally.
    set_thread = getattr(allocator, "set_thread", None)
    shadow = ShadowHeap()
    live: list[int] = []
    findings: list[Finding] = []
    with plan:
        for index, op in enumerate(ops):
            try:
                kind = op[0]
                if kind == "malloc":
                    _, size, group = op
                    if matcher is not None:
                        matcher.group = group
                    if set_thread is not None and group is not None:
                        set_thread(group)
                    addr = allocator.malloc(size)
                    findings.extend(shadow.malloc(addr, size))
                    live.append(addr)
                    reported = allocator.size_of(addr)
                    if reported != size:
                        findings.append(
                            Finding(
                                "fuzz.size-of",
                                f"op {index}: size_of({addr:#x}) reports "
                                f"{reported}, requested {size}",
                            )
                        )
                elif kind == "free":
                    if not live:
                        continue
                    addr = live.pop(op[1] % len(live))
                    reported = allocator.free(addr)
                    findings.extend(shadow.free(addr, reported))
                elif kind == "realloc":
                    if not live:
                        continue
                    slot = op[1] % len(live)
                    new_size = op[2]
                    old_addr = live[slot]
                    new_addr = allocator.realloc(old_addr, new_size)
                    live[slot] = new_addr
                    findings.extend(shadow.realloc(old_addr, new_addr, new_size))
                    reported = allocator.size_of(new_addr)
                    if reported != new_size:
                        findings.append(
                            Finding(
                                "fuzz.size-of",
                                f"op {index}: after realloc, "
                                f"size_of({new_addr:#x}) reports {reported}, "
                                f"expected {new_size}",
                            )
                        )
                elif kind == "corrupt":
                    corruptor = (corruptors or {}).get(op[1])
                    if corruptor is not None:
                        corruptor(allocator)
                else:
                    findings.append(
                        Finding("fuzz.bad-op", f"op {index}: unknown op {op!r}")
                    )
            except Exception as exc:
                findings.append(
                    Finding(
                        "fuzz.exception",
                        f"op {index} {op!r} raised {exc!r}",
                    )
                )
            if findings:
                return findings
            if config.check_interval and (index + 1) % config.check_interval == 0:
                findings.extend(validate_allocator(allocator))
                if findings:
                    return findings
        findings.extend(validate_allocator(allocator))
        findings.extend(shadow.diff_live(allocator.iter_live_regions()))
    return findings


def shrink_ops(
    ops: Sequence[Op],
    config: FuzzConfig,
    corruptors: Optional[Corruptors] = None,
    max_runs: int = 2000,
) -> list[Op]:
    """ddmin-style minimisation: drop chunks while the failure persists."""
    budget = [max_runs]

    def fails(candidate: list[Op]) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        return bool(run_ops(candidate, config, corruptors))

    current = list(ops)
    chunk = max(1, len(current) // 2)
    while True:
        reduced = False
        index = 0
        while index < len(current):
            candidate = current[:index] + current[index + chunk :]
            if candidate and fails(candidate):
                current = candidate
                reduced = True
            else:
                index += chunk
        if chunk == 1:
            if not reduced or budget[0] <= 0:
                return current
        else:
            chunk = max(1, chunk // 2)


def format_ops(ops: Sequence[Op]) -> str:
    """Render a reproducer as one op per line (for reports and the CLI)."""
    return "\n".join(f"  {index:>4}: {op!r}" for index, op in enumerate(ops))


def run_fuzz(
    config: FuzzConfig,
    corruptors: Optional[Corruptors] = None,
    extra_ops: Sequence[Op] = (),
) -> FuzzReport:
    """Generate, execute, and (on failure) shrink one fuzz scenario.

    *extra_ops* are spliced in ahead of the generated sequence — test
    fixtures use this to plant ``("corrupt", tag)`` ops.
    """
    ops = list(extra_ops) + generate_ops(config)
    findings = run_ops(ops, config, corruptors)
    if not findings:
        return FuzzReport(config=config, findings=[], executed=len(ops))
    reproducer = shrink_ops(ops, config, corruptors)
    # Report the findings of the *minimal* sequence: same failure, smallest
    # context.
    final = run_ops(reproducer, config, corruptors)
    return FuzzReport(
        config=config,
        findings=final or findings,
        executed=len(ops),
        reproducer=reproducer,
    )


def default_scenarios(seed: int, ops: int, family: Optional[str] = None) -> list[FuzzConfig]:
    """The scenario matrix ``halo sanitize fuzz`` runs.

    Each family runs plain; the group families additionally run with
    colouring enabled, with ``always_reuse_chunks`` (the omnetpp/xalanc
    configuration), and under a fault-plan chunk budget so the degraded
    path is exercised.  The free-list families (and the arenas built on
    them) add a coalescing-stress variant: a pool barely bigger than the
    op mix's footprint, so the allocator survives only by merging freed
    neighbours back into servable ranges.
    """
    families = FAMILIES if family in (None, "all") else (family,)
    scenarios: list[FuzzConfig] = []
    for name in families:
        base = FuzzConfig(family=name, seed=seed, ops=ops)
        scenarios.append(base)
        if name in ("group", "sharded"):
            scenarios.append(replace(base, colour_stride=128))
            scenarios.append(replace(base, always_reuse_chunks=True))
            scenarios.append(replace(base, chunk_budget=6))
        if name in ("freelist-ff", "freelist-bf", "arena"):
            scenarios.append(replace(base, pool_size=1 << 16))
    return scenarios
