"""Allocator-state invariant checker (the sanitizer's structural half).

``validate_allocator`` walks an allocator's *internal* bookkeeping — chunk
geometry, region tables, spare lists, per-run slot accounting — and returns
a list of :class:`Finding` objects describing every violated invariant.
``validate_machine`` adds the machine-level cross-check: every live
:class:`~repro.machine.heap.HeapObject` must be sized identically by the
allocator that placed it.

The walk is read-only.  It never mutates allocator state, so running it at
phase boundaries (or every Nth heap op under ``--sanitize``) cannot change
any measurement — only detect when one would have been wrong.

The invariants encode the group-allocator contract from paper Section 4.4:

* every chunk is registered under its own (size-aligned) base, so the
  ``free`` address-masking trick can find it;
* the bump cursor stays inside the chunk, past the header and the colour
  offset (colouring may push the start beyond a tiny chunk's end, in which
  case the chunk simply never serves a region);
* ``high_water == cursor`` — ``try_reserve`` moves both together and
  ``reset`` re-synchronises them, so any divergence means a stale mark
  (the spare-reuse bug this module was built to catch);
* each chunk's ``live_regions`` equals the number of recorded regions that
  mask to it, and ``grouped_live_bytes`` equals the sum of recorded sizes;
* an *empty* chunk is always reachable — current for its group or on the
  spare list — otherwise it has been orphaned and will never be reused or
  purged (the displaced-current bug);
* the spare list is bounded by ``max_spare_chunks`` plus the purged count
  (purged chunks remain reusable), unless ``always_reuse_chunks``;
* no two live regions overlap anywhere in the allocator tree sharing one
  :class:`~repro.allocators.base.AddressSpace`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from bisect import bisect_left, bisect_right

from ..allocators.arena import ArenaAllocator
from ..allocators.base import MIN_ALIGNMENT, PAGE_SIZE, align_up
from ..allocators.bump import BumpAllocator
from ..allocators.freelist import FreeListAllocator
from ..allocators.group import GroupAllocator, _Chunk
from ..allocators.random_group import RandomPoolAllocator
from ..allocators.sharded import _shard_class
from ..allocators.size_class import SizeClassAllocator


@dataclass(frozen=True)
class Finding:
    """One violated invariant: a stable rule id plus a human explanation."""

    rule: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.detail}"


class SanitizerError(Exception):
    """Raised (under ``fail_fast``) when the sanitizer finds violations."""

    def __init__(self, findings: Iterable[Finding]) -> None:
        self.findings = list(findings)
        lines = "\n".join(f"  {finding}" for finding in self.findings)
        super().__init__(
            f"{len(self.findings)} heap sanitizer finding(s):\n{lines}"
        )


@dataclass(frozen=True)
class SanitizerConfig:
    """Process-global sanitizer settings.

    Frozen and picklable on purpose: the parallel harness ships the active
    config to worker processes exactly like a
    :class:`~repro.faults.plan.FaultPlan`, so ``--jobs N`` runs sanitize
    the same ops a serial run would.

    Attributes:
        check_interval: Run the full invariant walk after every Nth heap
            operation (malloc/free/realloc).  ``0`` checks only at phase
            boundaries (and ``finish``), which is nearly free.
        shadow: Mirror every heap op into the :class:`ShadowHeap` oracle
            and cross-check liveness and sizes per op.
        fail_fast: Raise :class:`SanitizerError` at the first finding.
            When False, findings accumulate on the listener (up to
            ``max_findings``) for post-run inspection.
        max_findings: Accumulation cap per listener under ``fail_fast=False``.
    """

    check_interval: int = 1024
    shadow: bool = True
    fail_fast: bool = True
    max_findings: int = 100


_ACTIVE_CONFIG: Optional[SanitizerConfig] = None


def install_sanitizer(config: SanitizerConfig) -> None:
    """Make *config* the process-wide sanitizer configuration."""
    global _ACTIVE_CONFIG
    _ACTIVE_CONFIG = config


def clear_sanitizer() -> None:
    """Disable the sanitizer for this process."""
    global _ACTIVE_CONFIG
    _ACTIVE_CONFIG = None


def active_sanitizer() -> Optional[SanitizerConfig]:
    """The currently installed config, or None when sanitizing is off."""
    return _ACTIVE_CONFIG


@contextmanager
def sanitizer_active(config: SanitizerConfig) -> Iterator[SanitizerConfig]:
    """Scope *config* as the active sanitizer, restoring the previous one."""
    previous = _ACTIVE_CONFIG
    install_sanitizer(config)
    try:
        yield config
    finally:
        if previous is None:
            clear_sanitizer()
        else:
            install_sanitizer(previous)


# -- the walk ---------------------------------------------------------------


def validate_allocator(allocator) -> list[Finding]:
    """Walk *allocator* (nested allocators included) and return violations."""
    findings: list[Finding] = []
    _validate(allocator, findings)
    _check_overlaps(allocator, findings)
    return findings


def validate_machine(machine) -> list[Finding]:
    """``validate_allocator`` plus the object-table/allocator cross-check.

    The size cross-check is what catches *accounting* bugs that leave the
    allocator internally consistent but wrong — e.g. a realloc shrink that
    forgets to update the recorded region size.
    """
    findings = validate_allocator(machine.allocator)
    allocator = machine.allocator
    for obj in machine.objects.live_objects():
        try:
            size = allocator.size_of(obj.addr)
        except Exception as exc:
            findings.append(
                Finding(
                    "machine.unknown-object",
                    f"live object #{obj.oid} at {obj.addr:#x} is unknown to "
                    f"the allocator ({exc})",
                )
            )
            continue
        if size != obj.size:
            findings.append(
                Finding(
                    "machine.size-mismatch",
                    f"object #{obj.oid} at {obj.addr:#x}: machine records "
                    f"{obj.size} bytes, allocator records {size}",
                )
            )
    return findings


def _validate(allocator, findings: list[Finding]) -> None:
    if isinstance(allocator, GroupAllocator):  # includes the sharded variant
        _validate_group(allocator, findings)
        _validate(allocator.fallback, findings)
    elif isinstance(allocator, SizeClassAllocator):
        _validate_size_class(allocator, findings)
    elif isinstance(allocator, RandomPoolAllocator):
        _validate_random(allocator, findings)
        for pool in allocator._pools:
            _validate(pool, findings)
        _validate(allocator.fallback, findings)
    elif isinstance(allocator, BumpAllocator):
        _validate_bump(allocator, findings)
    elif isinstance(allocator, ArenaAllocator):
        _validate_arena(allocator, findings)
        for arena in allocator._arenas:
            _validate(arena, findings)
    elif isinstance(allocator, FreeListAllocator):
        _validate_freelist(allocator, findings)
    # Unknown allocator types degrade to "nothing to check" by design.


def _check_overlaps(allocator, findings: list[Finding]) -> None:
    """No two live regions overlap anywhere in the allocator tree."""
    try:
        regions = sorted(allocator.iter_live_regions())
    except Exception as exc:
        # Walking corrupt state must produce a finding, never an exception —
        # e.g. an arena ownership table pointing at an arena that does not
        # hold the block makes the live-region walk itself blow up.
        findings.append(
            Finding("region.walk", f"live-region walk failed: {exc!r}")
        )
        return
    prev_addr = 0
    prev_end = None
    for addr, size in regions:
        if size <= 0:
            findings.append(
                Finding(
                    "region.size",
                    f"live region {addr:#x} has non-positive size {size}",
                )
            )
            continue
        if prev_end is not None and addr < prev_end:
            findings.append(
                Finding(
                    "region.overlap",
                    f"live regions {prev_addr:#x} and {addr:#x} overlap "
                    f"(previous extends to {prev_end:#x})",
                )
            )
        if prev_end is None or addr + size > prev_end:
            prev_addr, prev_end = addr, addr + size


# -- group allocator --------------------------------------------------------


def _validate_group(allocator: GroupAllocator, findings: list[Finding]) -> None:
    add = findings.append
    header = _Chunk.HEADER_SIZE

    current_ids = set()
    for group, chunk in allocator._current.items():
        current_ids.add(id(chunk))
        if chunk.group != group:
            add(
                Finding(
                    "group.current-group",
                    f"current chunk {chunk.base:#x} for group {group} "
                    f"reports group {chunk.group}",
                )
            )
        if allocator._chunks.get(chunk.base) is not chunk:
            add(
                Finding(
                    "group.current-unregistered",
                    f"current chunk {chunk.base:#x} is not in the chunk "
                    f"registry (free() masking cannot find it)",
                )
            )

    spare_ids = set()
    for chunk in allocator._spares:
        if id(chunk) in spare_ids:
            add(
                Finding(
                    "group.spare-duplicate",
                    f"chunk {chunk.base:#x} appears twice on the spare list",
                )
            )
        spare_ids.add(id(chunk))
        if chunk.live_regions != 0:
            add(
                Finding(
                    "group.spare-live",
                    f"spare chunk {chunk.base:#x} still holds "
                    f"{chunk.live_regions} live region(s)",
                )
            )
        if id(chunk) in current_ids:
            add(
                Finding(
                    "group.spare-current",
                    f"chunk {chunk.base:#x} is simultaneously spare and "
                    f"current for group {chunk.group}",
                )
            )
        if allocator._chunks.get(chunk.base) is not chunk:
            add(
                Finding(
                    "group.spare-unregistered",
                    f"spare chunk {chunk.base:#x} is not in the chunk registry",
                )
            )
    if not allocator.always_reuse_chunks:
        bound = allocator.max_spare_chunks + allocator.chunks_purged
        if len(allocator._spares) > bound:
            add(
                Finding(
                    "group.spare-bound",
                    f"{len(allocator._spares)} spare chunks exceed "
                    f"max_spare_chunks={allocator.max_spare_chunks} + "
                    f"chunks_purged={allocator.chunks_purged}",
                )
            )

    for base, chunk in allocator._chunks.items():
        if chunk.base != base:
            add(
                Finding(
                    "group.chunk-registry",
                    f"chunk registered at {base:#x} reports base {chunk.base:#x}",
                )
            )
        if chunk.size != allocator.chunk_size:
            add(
                Finding(
                    "group.chunk-size",
                    f"chunk {chunk.base:#x} has size {chunk.size}, allocator "
                    f"chunk_size is {allocator.chunk_size}",
                )
            )
        if chunk.base & ~allocator._chunk_mask:
            add(
                Finding(
                    "group.chunk-alignment",
                    f"chunk {chunk.base:#x} is not aligned to its size "
                    f"{allocator.chunk_size:#x}; address masking would "
                    f"misroute frees",
                )
            )
        start = chunk.base + header + chunk.colour
        end = max(chunk.base + chunk.size, start)
        if not start <= chunk.cursor <= end:
            add(
                Finding(
                    "group.cursor-bounds",
                    f"chunk {chunk.base:#x} cursor {chunk.cursor:#x} outside "
                    f"[{start:#x}, {end:#x}]",
                )
            )
        if chunk.high_water != chunk.cursor:
            add(
                Finding(
                    "group.high-water",
                    f"chunk {chunk.base:#x} high_water {chunk.high_water:#x} "
                    f"!= cursor {chunk.cursor:#x} (stale mark from a previous "
                    f"tenant skews fragmentation accounting)",
                )
            )
        if chunk.live_regions < 0:
            add(
                Finding(
                    "group.live-regions-negative",
                    f"chunk {chunk.base:#x} live_regions is "
                    f"{chunk.live_regions}",
                )
            )
        if (
            chunk.live_regions == 0
            and id(chunk) not in current_ids
            and id(chunk) not in spare_ids
        ):
            add(
                Finding(
                    "group.chunk-orphaned",
                    f"empty chunk {chunk.base:#x} (group {chunk.group}) is "
                    f"neither current nor spare — it can never be reused or "
                    f"purged",
                )
            )
        shards = getattr(chunk, "shards", None)
        if shards is not None:
            _validate_shards(allocator, chunk, shards, findings)

    per_chunk: dict[int, int] = {}
    total = 0
    for addr, size in allocator._region_sizes.items():
        total += size
        chunk = allocator._chunk_of(addr)
        if chunk is None:
            add(
                Finding(
                    "group.region-orphan",
                    f"live region {addr:#x} masks to no registered chunk",
                )
            )
            continue
        per_chunk[chunk.base] = per_chunk.get(chunk.base, 0) + 1
        if addr < chunk.base + header or addr + size > chunk.base + chunk.size:
            add(
                Finding(
                    "group.region-bounds",
                    f"region {addr:#x} (+{size}) outside chunk {chunk.base:#x} "
                    f"payload",
                )
            )
        elif addr + size > chunk.cursor:
            add(
                Finding(
                    "group.region-past-cursor",
                    f"region {addr:#x} (+{size}) extends past chunk "
                    f"{chunk.base:#x} cursor {chunk.cursor:#x}",
                )
            )
    for base, chunk in allocator._chunks.items():
        count = per_chunk.get(base, 0)
        if count != chunk.live_regions:
            add(
                Finding(
                    "group.live-regions",
                    f"chunk {base:#x} claims {chunk.live_regions} live "
                    f"region(s) but {count} are recorded",
                )
            )

    if total != allocator.grouped_live_bytes:
        add(
            Finding(
                "group.live-bytes",
                f"grouped_live_bytes={allocator.grouped_live_bytes} but "
                f"recorded region sizes sum to {total}",
            )
        )
    if allocator.grouped_live_bytes != allocator.stats.live_bytes:
        add(
            Finding(
                "group.stats-live-bytes",
                f"grouped_live_bytes={allocator.grouped_live_bytes} disagrees "
                f"with stats.live_bytes={allocator.stats.live_bytes}",
            )
        )
    if len(allocator._region_sizes) != allocator.stats.live_blocks:
        add(
            Finding(
                "group.stats-live-blocks",
                f"{len(allocator._region_sizes)} recorded regions but "
                f"stats.live_blocks={allocator.stats.live_blocks}",
            )
        )
    if allocator._slab_cursor > allocator._slab_end:
        add(
            Finding(
                "group.slab-cursor",
                f"slab cursor {allocator._slab_cursor:#x} past slab end "
                f"{allocator._slab_end:#x}",
            )
        )


def _validate_shards(
    allocator: GroupAllocator, chunk, shards: dict, findings: list[Finding]
) -> None:
    """Sharded-chunk extras: free-list entries are in-chunk, below the
    cursor, unique, and not simultaneously live."""
    seen: set[int] = set()
    for shard, entries in shards.items():
        if shard != _shard_class(shard):
            findings.append(
                Finding(
                    "sharded.shard-key",
                    f"chunk {chunk.base:#x} shard key {shard} is not a shard "
                    f"class (requested size leaked into shard bookkeeping)",
                )
            )
        for addr in entries:
            if addr in seen:
                findings.append(
                    Finding(
                        "sharded.free-duplicate",
                        f"address {addr:#x} appears twice on chunk "
                        f"{chunk.base:#x} free lists",
                    )
                )
            seen.add(addr)
            if addr < chunk.base + _Chunk.HEADER_SIZE or addr + shard > chunk.cursor:
                findings.append(
                    Finding(
                        "sharded.free-bounds",
                        f"free-list entry {addr:#x} (shard {shard}) outside "
                        f"chunk {chunk.base:#x} bumped range",
                    )
                )
            if addr in allocator._region_sizes:
                findings.append(
                    Finding(
                        "sharded.free-live",
                        f"address {addr:#x} is on a free list and recorded "
                        f"live at the same time",
                    )
                )


# -- size-class allocator ---------------------------------------------------


def _validate_size_class(
    allocator: SizeClassAllocator, findings: list[Finding]
) -> None:
    add = findings.append
    total = 0
    run_live: dict[int, int] = {}
    large_seen: set[int] = set()
    for addr, (size, run) in allocator._live.items():
        total += size
        if run is None:
            reserved = allocator._large.get(addr)
            large_seen.add(addr)
            if reserved is None:
                add(
                    Finding(
                        "size-class.large-missing",
                        f"large block {addr:#x} has no reservation record",
                    )
                )
            elif size > reserved or reserved % PAGE_SIZE:
                add(
                    Finding(
                        "size-class.large-reserved",
                        f"large block {addr:#x}: size {size} vs reserved "
                        f"{reserved} (must be page-rounded and >= size)",
                    )
                )
        else:
            run_live[id(run)] = run_live.get(id(run), 0) + 1
            offset = addr - run.base
            if (
                offset < 0
                or offset % run.region_size
                or offset // run.region_size >= run.capacity
            ):
                add(
                    Finding(
                        "size-class.slot",
                        f"block {addr:#x} is not on a slot boundary of its "
                        f"run at {run.base:#x} (region size {run.region_size})",
                    )
                )
            if size > run.region_size:
                add(
                    Finding(
                        "size-class.region-size",
                        f"block {addr:#x} records {size} bytes inside a "
                        f"{run.region_size}-byte slot",
                    )
                )
    leaked = set(allocator._large) - large_seen
    for addr in sorted(leaked):
        add(
            Finding(
                "size-class.large-leak",
                f"reservation {addr:#x} has no live block",
            )
        )
    for bin_ in allocator._bins.values():
        for run in bin_.runs:
            if run.live + len(run.free_slots) != run.capacity:
                add(
                    Finding(
                        "size-class.run-slots",
                        f"run {run.base:#x}: live {run.live} + free "
                        f"{len(run.free_slots)} != capacity {run.capacity}",
                    )
                )
            recorded = run_live.get(id(run), 0)
            if run.live != recorded:
                add(
                    Finding(
                        "size-class.run-live",
                        f"run {run.base:#x} claims {run.live} live slots but "
                        f"{recorded} blocks are recorded",
                    )
                )
            slots = run.free_slots
            if len(set(slots)) != len(slots):
                add(
                    Finding(
                        "size-class.free-slot-duplicate",
                        f"run {run.base:#x} free-slot heap holds duplicates",
                    )
                )
            if any(slot < 0 or slot >= run.capacity for slot in slots):
                add(
                    Finding(
                        "size-class.free-slot-range",
                        f"run {run.base:#x} free-slot heap holds an index "
                        f"outside [0, {run.capacity})",
                    )
                )
            if run.queued == run.full:
                add(
                    Finding(
                        "size-class.run-queued",
                        f"run {run.base:#x} queued={run.queued} while "
                        f"full={run.full} (must be opposites between ops)",
                    )
                )
    if total != allocator.stats.live_bytes:
        add(
            Finding(
                "size-class.stats-live-bytes",
                f"recorded sizes sum to {total} but stats.live_bytes="
                f"{allocator.stats.live_bytes}",
            )
        )
    if len(allocator._live) != allocator.stats.live_blocks:
        add(
            Finding(
                "size-class.stats-live-blocks",
                f"{len(allocator._live)} live blocks recorded but "
                f"stats.live_blocks={allocator.stats.live_blocks}",
            )
        )


# -- bump / random pools ----------------------------------------------------


def _validate_bump(allocator: BumpAllocator, findings: list[Finding]) -> None:
    add = findings.append
    total = 0
    for addr, size in allocator._sizes.items():
        total += size
        if not any(
            base <= addr and addr + size <= base + allocator.pool_size
            for base in allocator.pools
        ):
            add(
                Finding(
                    "bump.region-bounds",
                    f"region {addr:#x} (+{size}) lies in no reserved pool",
                )
            )
    if total != allocator.stats.live_bytes:
        add(
            Finding(
                "bump.stats-live-bytes",
                f"recorded sizes sum to {total} but stats.live_bytes="
                f"{allocator.stats.live_bytes}",
            )
        )
    if len(allocator._sizes) != allocator.stats.live_blocks:
        add(
            Finding(
                "bump.stats-live-blocks",
                f"{len(allocator._sizes)} live regions but stats.live_blocks="
                f"{allocator.stats.live_blocks}",
            )
        )
    if allocator._cursor > allocator._pool_end:
        add(
            Finding(
                "bump.cursor",
                f"cursor {allocator._cursor:#x} past pool end "
                f"{allocator._pool_end:#x}",
            )
        )


def _validate_random(
    allocator: RandomPoolAllocator, findings: list[Finding]
) -> None:
    add = findings.append
    pools = allocator._pools
    for addr, pool in allocator._pool_of.items():
        if not any(pool is candidate for candidate in pools):
            add(
                Finding(
                    "random.pool-unknown",
                    f"region {addr:#x} is mapped to a pool the allocator "
                    f"does not own",
                )
            )
        elif not pool.owns(addr):
            add(
                Finding(
                    "random.pool-mismatch",
                    f"region {addr:#x} is mapped to a pool that does not "
                    f"hold it live",
                )
            )
    if len(allocator._pool_of) != allocator.stats.live_blocks:
        add(
            Finding(
                "random.stats-live-blocks",
                f"{len(allocator._pool_of)} pooled regions but "
                f"stats.live_blocks={allocator.stats.live_blocks}",
            )
        )
    pooled = sum(pool.stats.live_bytes for pool in pools)
    if pooled != allocator.stats.live_bytes:
        add(
            Finding(
                "random.stats-live-bytes",
                f"pools hold {pooled} live bytes but stats.live_bytes="
                f"{allocator.stats.live_bytes}",
            )
        )


# -- free lists / arenas ----------------------------------------------------


def _validate_freelist(
    allocator: FreeListAllocator, findings: list[Finding]
) -> None:
    add = findings.append
    starts, ends = allocator._starts, allocator._ends

    # Pool reservations, merged into a sorted interval union.  ASLR jitter
    # can legitimately make two pools contiguous, in which case a coalesced
    # free range may span the pool boundary — the union is the real bound.
    union: list[list[int]] = []
    for base, size in sorted(allocator._pools):
        if union and union[-1][1] == base:
            union[-1][1] = base + size
        else:
            union.append([base, base + size])
    union_starts = [lo for lo, _ in union]

    def in_union(lo: int, hi: int) -> bool:
        index = bisect_right(union_starts, lo) - 1
        return index >= 0 and hi <= union[index][1]

    prev_end = None
    for start, end in zip(starts, ends):
        if end <= start:
            add(
                Finding(
                    "freelist.range-empty",
                    f"free range {start:#x}..{end:#x} is empty or inverted",
                )
            )
            continue
        if prev_end is not None:
            if start < prev_end:
                add(
                    Finding(
                        "freelist.range-overlap",
                        f"free range {start:#x} overlaps the previous range "
                        f"ending at {prev_end:#x}",
                    )
                )
            elif start == prev_end:
                add(
                    Finding(
                        "freelist.uncoalesced",
                        f"adjacent free ranges meet at {start:#x} without "
                        f"being merged (boundary coalescing missed)",
                    )
                )
        prev_end = end
        if not in_union(start, end):
            add(
                Finding(
                    "freelist.range-bounds",
                    f"free range {start:#x}..{end:#x} lies outside every "
                    f"pool reservation",
                )
            )

    total = 0
    for addr, size in allocator._sizes.items():
        total += size
        extent = allocator._extents.get(addr)
        if extent is None or extent < align_up(size, MIN_ALIGNMENT):
            add(
                Finding(
                    "freelist.extent",
                    f"block {addr:#x}: requested {size} bytes but carved "
                    f"extent is {extent}",
                )
            )
            continue
        # The carved extent must be disjoint from every free range.
        index = bisect_right(starts, addr) - 1
        if index >= 0 and ends[index] > addr:
            add(
                Finding(
                    "freelist.live-free-overlap",
                    f"block {addr:#x} (+{extent}) overlaps the free range "
                    f"starting at {starts[index]:#x}",
                )
            )
        index = bisect_left(starts, addr)
        if index < len(starts) and starts[index] < addr + extent:
            add(
                Finding(
                    "freelist.live-free-overlap",
                    f"block {addr:#x} (+{extent}) overlaps the free range "
                    f"starting at {starts[index]:#x}",
                )
            )
    if total != allocator.stats.live_bytes:
        add(
            Finding(
                "freelist.stats-live-bytes",
                f"recorded sizes sum to {total} but stats.live_bytes="
                f"{allocator.stats.live_bytes}",
            )
        )
    if len(allocator._sizes) != allocator.stats.live_blocks:
        add(
            Finding(
                "freelist.stats-live-blocks",
                f"{len(allocator._sizes)} live blocks but stats.live_blocks="
                f"{allocator.stats.live_blocks}",
            )
        )
    if len(allocator._sizes) != len(allocator._extents):
        add(
            Finding(
                "freelist.extent-table",
                f"{len(allocator._sizes)} sizes recorded but "
                f"{len(allocator._extents)} extents",
            )
        )


def _validate_arena(allocator: ArenaAllocator, findings: list[Finding]) -> None:
    add = findings.append
    count = allocator.arena_count
    total = 0
    for addr, owner in allocator._owner.items():
        if owner < 0 or owner >= count:
            add(
                Finding(
                    "arena.owner-range",
                    f"block {addr:#x} is owned by arena {owner}, outside "
                    f"[0, {count})",
                )
            )
            continue
        size = allocator._arenas[owner]._sizes.get(addr)
        if size is None:
            add(
                Finding(
                    "arena.owner-live",
                    f"block {addr:#x} is mapped to arena {owner} but not "
                    f"live there",
                )
            )
            continue
        total += size
    # Mailbox entries are logically dead (absent from the owner map) yet
    # still occupy their arena until the owner's next allocation flushes
    # them — exactly one parking spot per address.
    seen: set[int] = set()
    for index, mailbox in enumerate(allocator._mailboxes):
        for addr in mailbox:
            if addr in seen:
                add(
                    Finding(
                        "arena.mailbox-duplicate",
                        f"address {addr:#x} is parked in more than one "
                        f"mailbox slot",
                    )
                )
                continue
            seen.add(addr)
            if addr in allocator._owner:
                add(
                    Finding(
                        "arena.mailbox-owner",
                        f"parked address {addr:#x} is still in the owner "
                        f"map (mailbox frees must be logically dead)",
                    )
                )
            if addr not in allocator._arenas[index]._sizes:
                add(
                    Finding(
                        "arena.mailbox-live",
                        f"parked address {addr:#x} is not live in arena "
                        f"{index} (double park or foreign mailbox)",
                    )
                )
    if total != allocator.stats.live_bytes:
        add(
            Finding(
                "arena.stats-live-bytes",
                f"owned sizes sum to {total} but stats.live_bytes="
                f"{allocator.stats.live_bytes}",
            )
        )
    if len(allocator._owner) != allocator.stats.live_blocks:
        add(
            Finding(
                "arena.stats-live-blocks",
                f"{len(allocator._owner)} owned blocks but stats.live_blocks="
                f"{allocator.stats.live_blocks}",
            )
        )


# ``align_up`` is re-exported for fuzz-size generation convenience.
__all__ = [
    "Finding",
    "SanitizerConfig",
    "SanitizerError",
    "active_sanitizer",
    "align_up",
    "clear_sanitizer",
    "install_sanitizer",
    "sanitizer_active",
    "validate_allocator",
    "validate_machine",
]
