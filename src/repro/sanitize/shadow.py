"""Shadow-heap oracle: an order-preserving reference allocator.

The :class:`ShadowHeap` mirrors every malloc/free/realloc the machine
performs into a trivially correct structure (a dict of live regions plus a
sorted address list), and cross-checks the real allocator against it:

* a returned address must not overlap any region the oracle holds live;
* a free must name a region the oracle holds live (catching double frees
  and wild frees) and must report the size the oracle recorded;
* ``size_of`` must agree with the requested size for every live object.

:class:`SanitizerListener` wires the oracle into a
:class:`~repro.machine.machine.Machine` as an ordinary event listener and
additionally runs the :mod:`~repro.sanitize.invariants` walk every
``check_interval`` heap ops and at phase boundaries.  All checks are
read-only; attaching the listener cannot change a measurement.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterable, Optional

from .. import obs
from ..machine.events import Listener
from .invariants import Finding, SanitizerConfig, SanitizerError, validate_machine


class ShadowHeap:
    """Reference allocator state mirroring the machine's heap ops."""

    def __init__(self) -> None:
        self._sizes: dict[int, int] = {}
        self._addrs: list[int] = []  # sorted live base addresses
        self.ops = 0

    def __len__(self) -> int:
        return len(self._sizes)

    @property
    def live_bytes(self) -> int:
        return sum(self._sizes.values())

    def size_of(self, addr: int) -> Optional[int]:
        """Size the oracle recorded for *addr*, or None if not live."""
        return self._sizes.get(addr)

    def _overlapping(self, addr: int, size: int) -> Optional[int]:
        """Base of a live region overlapping ``[addr, addr+size)``, if any."""
        index = bisect_left(self._addrs, addr)
        if index > 0:
            prev = self._addrs[index - 1]
            if prev + self._sizes[prev] > addr:
                return prev
        if index < len(self._addrs):
            nxt = self._addrs[index]
            if nxt < addr + size:
                return nxt
        return None

    def malloc(self, addr: int, size: int) -> list[Finding]:
        """Record an allocation; report overlap with anything live."""
        self.ops += 1
        if size <= 0:
            return [
                Finding(
                    "shadow.alloc-size",
                    f"allocation at {addr:#x} has non-positive size {size}",
                )
            ]
        clash = self._overlapping(addr, size)
        if clash is not None:
            return [
                Finding(
                    "shadow.alloc-overlap",
                    f"malloc({size}) returned {addr:#x}, overlapping live "
                    f"region {clash:#x} (+{self._sizes[clash]})",
                )
            ]
        self._sizes[addr] = size
        insort(self._addrs, addr)
        return []

    def free(self, addr: int, size: Optional[int] = None) -> list[Finding]:
        """Record a free; report double/wild frees and size disagreement."""
        self.ops += 1
        recorded = self._sizes.pop(addr, None)
        if recorded is None:
            return [
                Finding(
                    "shadow.bad-free",
                    f"free of {addr:#x}, which the oracle does not hold live "
                    f"(double free or wild pointer)",
                )
            ]
        del self._addrs[bisect_left(self._addrs, addr)]
        if size is not None and size != recorded:
            return [
                Finding(
                    "shadow.free-size",
                    f"free({addr:#x}) reported {size} bytes; the oracle "
                    f"recorded {recorded}",
                )
            ]
        return []

    def realloc(self, old_addr: int, new_addr: int, new_size: int) -> list[Finding]:
        """Record a move/resize; the old region dies, the new must not clash."""
        self.ops += 1
        findings: list[Finding] = []
        recorded = self._sizes.pop(old_addr, None)
        if recorded is None:
            findings.append(
                Finding(
                    "shadow.bad-realloc",
                    f"realloc of {old_addr:#x}, which the oracle does not "
                    f"hold live",
                )
            )
        else:
            del self._addrs[bisect_left(self._addrs, old_addr)]
        clash = self._overlapping(new_addr, new_size)
        if clash is not None:
            findings.append(
                Finding(
                    "shadow.realloc-overlap",
                    f"realloc to {new_addr:#x} (+{new_size}) overlaps live "
                    f"region {clash:#x} (+{self._sizes[clash]})",
                )
            )
            return findings
        self._sizes[new_addr] = new_size
        insort(self._addrs, new_addr)
        return findings

    def diff_live(self, regions: Iterable[tuple[int, int]]) -> list[Finding]:
        """Compare the oracle's live set against reported ``(addr, size)``s."""
        reported = dict(regions)
        findings: list[Finding] = []
        for addr in self._addrs:
            size = self._sizes[addr]
            got = reported.pop(addr, None)
            if got is None:
                findings.append(
                    Finding(
                        "shadow.lost-region",
                        f"oracle holds {addr:#x} (+{size}) live but it is "
                        f"not reported",
                    )
                )
            elif got != size:
                findings.append(
                    Finding(
                        "shadow.size-drift",
                        f"region {addr:#x}: oracle recorded {size} bytes, "
                        f"{got} reported",
                    )
                )
        for addr in sorted(reported):
            findings.append(
                Finding(
                    "shadow.leaked-region",
                    f"live region {addr:#x} (+{reported[addr]}) is unknown "
                    f"to the oracle",
                )
            )
        return findings


class SanitizerListener(Listener):
    """Machine listener combining the shadow oracle and the invariant walk.

    ``on_free`` fires *before* the allocator releases the region, so the
    pre-free ``size_of`` cross-check still sees the live region — this is
    exactly where a stale recorded size (e.g. from a buggy realloc shrink)
    surfaces.
    """

    def __init__(self, config: SanitizerConfig) -> None:
        self.config = config
        self.shadow = ShadowHeap() if config.shadow else None
        self.findings: list[Finding] = []
        self.checks = 0
        self._heap_ops = 0

    # -- bookkeeping ---------------------------------------------------

    def _report(self, findings: list[Finding]) -> None:
        if not findings:
            return
        if obs.active_registry() is not None:
            obs.inc("sanitize.findings", len(findings))
        room = self.config.max_findings - len(self.findings)
        if room > 0:
            self.findings.extend(findings[:room])
        if self.config.fail_fast:
            raise SanitizerError(findings)

    def _cross_size(self, machine, obj) -> list[Finding]:
        try:
            size = machine.allocator.size_of(obj.addr)
        except Exception as exc:
            return [
                Finding(
                    "shadow.size-unknown",
                    f"allocator cannot size live object #{obj.oid} at "
                    f"{obj.addr:#x}: {exc}",
                )
            ]
        if size != obj.size:
            return [
                Finding(
                    "shadow.size-mismatch",
                    f"object #{obj.oid} at {obj.addr:#x}: machine records "
                    f"{obj.size} bytes, allocator records {size}",
                )
            ]
        return []

    def _after_op(self, machine) -> None:
        if self.shadow is not None and obs.active_registry() is not None:
            obs.inc("sanitize.shadow.ops", 1)
        self._heap_ops += 1
        interval = self.config.check_interval
        if interval and self._heap_ops % interval == 0:
            self.checkpoint(machine)

    def checkpoint(self, machine) -> None:
        """Full validation: invariants, object cross-check, live-set diff."""
        self.checks += 1
        if obs.active_registry() is not None:
            obs.inc("sanitize.checks", 1)
        findings = validate_machine(machine)
        if self.shadow is not None:
            findings.extend(
                self.shadow.diff_live(
                    (obj.addr, obj.size)
                    for obj in machine.objects.live_objects()
                )
            )
        self._report(findings)

    def final_check(self, machine) -> None:
        """End-of-run checkpoint.

        ``run_measurement`` never calls ``machine.finish()``; the harness
        invokes this explicitly after the workload returns.
        """
        self.checkpoint(machine)

    # -- machine events -------------------------------------------------

    def on_alloc(self, machine, obj) -> None:
        if self.shadow is not None:
            findings = self.shadow.malloc(obj.addr, obj.size)
            findings.extend(self._cross_size(machine, obj))
            self._report(findings)
        self._after_op(machine)

    def on_free(self, machine, obj) -> None:
        # The event fires before the allocator releases the region and
        # before the object table marks it dead; run the size cross-check
        # and any interval checkpoint against that consistent pre-free
        # state, and only then retire the region from the oracle.
        if self.shadow is not None:
            self._report(self._cross_size(machine, obj))
        self._after_op(machine)
        if self.shadow is not None:
            self._report(self.shadow.free(obj.addr, obj.size))

    def on_realloc(self, machine, obj, old_addr: int, old_size: int) -> None:
        if self.shadow is not None:
            findings = self.shadow.realloc(old_addr, obj.addr, obj.size)
            findings.extend(self._cross_size(machine, obj))
            self._report(findings)
        self._after_op(machine)

    def on_finish(self, machine) -> None:
        self.checkpoint(machine)
