"""Batched (columnar) trace-driven measurement engine.

``measure_columnar`` produces the same :class:`Measurement` a per-event
:class:`~repro.trace.replay.TraceReplayer` run would — bit-identical
cycles, per-level cache/TLB miss counts, allocator statistics, peak
live bytes and fragmentation-at-peak — without dispatching one Python
method call per event.  The decomposition exploits three structural
facts of the simulator:

* **Placement is residency-independent.**  Every allocator's placement
  decisions read only the operation sequence (plus, for grouped
  allocators, the state vector / call stack at each allocation), never
  page residency — so heap operations can be replayed in a lean loop
  that skips all page accounting, yielding every object's base address
  up front.
* **The hierarchy factorises per structure.**  L1/L2/L3/TLB are
  independent state machines; the interleaved per-access walk is
  equivalent to running the full line stream through L1, its miss
  stream through L2, and so on — which is what the chunked
  :func:`~repro.columnar.kernel.lru_filter` kernel does over
  precomputed set/tag columns.
* **Fragmentation is only read at one instant.**  The per-event path
  snapshots fragmentation at every new live-byte peak; only the last
  snapshot survives.  The lean pass locates that allocation ordinal,
  and a second pass with page-residency flushes reproduces the snapshot
  exactly once.

Runs with a grouped allocator therefore take two passes (lean, then
residency-tracking); the jemalloc-like baseline and random-pool
configurations need only the lean pass.  The per-event Machine path
remains the differential oracle — see ``tests/test_columnar.py``.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..allocators.base import AddressSpace, Allocator
from ..allocators.group import FragmentationSnapshot, GroupAllocator
from ..cache.hierarchy import HierarchyConfig, HierarchyStats
from ..cache.timing import CostModel
from ..machine.machine import Machine, MachineMetrics
from ..trace.format import OP_ALLOC, OP_CALL, OP_FREE, OP_RETURN, EventTrace
from ..workloads.base import Workload
from .kernel import expand_ranges, lru_filter, validate_geometry


def simulate_hierarchy(
    addr: np.ndarray, size: np.ndarray, config: HierarchyConfig
) -> tuple[HierarchyStats, np.ndarray, np.ndarray]:
    """Run the cache/TLB hierarchy over an (address, size) access stream.

    Returns the hierarchy counters plus the flat page stream and its
    per-access prefix index (``page_starts[i]`` = pages preceding access
    *i*), which the residency pass reuses for page-touch flushing.
    """
    validate_geometry(config)
    line_shift = config.line_size.bit_length() - 1
    page_shift = config.page_size.bit_length() - 1
    end = addr + size - 1
    lines = expand_ranges(addr >> line_shift, end >> line_shift)
    first_page = addr >> page_shift
    last_page = end >> page_shift
    page_spans = last_page - first_page + 1
    pages = expand_ranges(first_page, last_page)
    page_starts = np.empty(addr.shape[0] + 1, dtype=np.int64)
    page_starts[0] = 0
    np.cumsum(page_spans, out=page_starts[1:])
    line = config.line_size
    l1_misses, l1_missed = lru_filter(
        lines, config.l1_size // (config.l1_assoc * line), config.l1_assoc
    )
    l2_misses, l2_missed = lru_filter(
        l1_missed, config.l2_size // (config.l2_assoc * line), config.l2_assoc
    )
    l3_misses, _ = lru_filter(
        l2_missed, config.l3_size // (config.l3_assoc * line), config.l3_assoc
    )
    tlb_misses, _ = lru_filter(pages, 1, config.tlb_entries)
    stats = HierarchyStats(
        accesses=int(lines.shape[0]),
        l1_misses=l1_misses,
        l2_misses=l2_misses,
        l3_misses=l3_misses,
        tlb_misses=tlb_misses,
    )
    return stats, pages, page_starts


def _compute_cycles(works: np.ndarray) -> float:
    """Total compute cycles, bit-identical to sequential ``+=`` accumulation.

    All-integral non-negative streams below 2**53 sum exactly in either
    order (every partial float sum is an exactly-representable integer);
    anything else falls back to the event-order sequential loop.
    """
    if works.size == 0:
        return 0.0
    if (
        np.all(works >= 0)
        and np.all(np.floor(works) == works)
        and float(works.max()) * works.size < float(1 << 62)
    ):
        total = int(works.astype(np.int64).sum(dtype=np.int64))
        if total < (1 << 53):
            return float(total)
    total = 0.0
    for cycles in works.tolist():
        total += cycles
    return total


def _build_machine(
    workload: Workload,
    make_allocator: Callable[[AddressSpace], Allocator],
    seed: int,
    instrumentation: Optional[dict[int, int]],
    state_vector,
    attach: Optional[Callable[[Machine], None]],
) -> Machine:
    """One fresh (space, allocator, machine) triple, attach hooks applied.

    Mirrors ``run_measurement``'s construction order exactly — factory,
    then machine, then attach — so holder-based runtime factories (halo,
    hds, calder) wire their matcher/state-vector into the right pass.
    """
    space = AddressSpace(seed)
    allocator = make_allocator(space)
    machine = Machine(
        workload.program,
        allocator,
        memory=None,
        instrumentation=instrumentation,
        state_vector=state_vector,
    )
    if attach is not None:
        attach(machine)
    return machine


def _heap_pass(cols, machine: Machine) -> tuple[list, list, int, int]:
    """Lean replay of heap operations only (stack/state-independent policy).

    Valid when the allocator never consults the state vector or call
    stack (baseline, random pools): yields object base addresses, realloc
    moves, the live-byte peak, and the instrumentation toggle count.
    """
    allocator = machine.allocator
    stats = allocator.stats
    fallback = getattr(allocator, "fallback", None)
    fb_stats = fallback.stats if fallback is not None else None
    al_malloc = allocator.malloc
    al_free = allocator.free
    al_realloc = allocator.realloc
    bases: list[int] = []
    moves: list[tuple[int, int, int]] = []
    peak_live = 0
    if fb_stats is None and cols.reallocs == 0:
        # Fast path: no fallback means the allocator's own running peak
        # is sampled at exactly the same instants the per-event tracker
        # samples (after each malloc; frees never raise it, and there
        # are no reallocs in the stream), so per-op tracking drops out.
        append_base = bases.append
        for ev in cols.heap_ops:
            if ev[0] == OP_ALLOC:
                append_base(al_malloc(ev[1]))
            else:  # OP_FREE
                al_free(bases[ev[1]])
        cur = bases  # no reallocs: live addresses == base table
        peak_live = stats.peak_live_bytes
    else:
        cur = []
        for op, a, b, ptr in cols.heap_ops:
            if op == OP_ALLOC:
                addr = al_malloc(a)
                cur.append(addr)
                bases.append(addr)
                live = stats.live_bytes
                if fb_stats is not None:
                    live += fb_stats.live_bytes
                if live > peak_live:
                    peak_live = live
            elif op == OP_FREE:
                al_free(cur[a])
            else:  # OP_REALLOC
                old = cur[a]
                new = al_realloc(old, b)
                if new != old:
                    cur[a] = new
                    moves.append((ptr, a, new))
    toggles = 0
    instrumentation = machine.instrumentation
    if instrumentation:
        # Every instrumented call toggles its bit on entry and exit
        # (trailing scopes are auto-closed by the replayer), so the total
        # is exactly two per instrumented call.
        toggles = 2 * sum(1 for addr in cols.call_addrs if addr in instrumentation)
    return bases, moves, peak_live, toggles


def _grouped_pass(
    cols,
    machine: Machine,
    pages: Optional[list] = None,
    page_starts: Optional[np.ndarray] = None,
    bases_check: Optional[list] = None,
    peak_ordinal: int = -1,
) -> tuple[list, list, int, int, int, Optional[FragmentationSnapshot]]:
    """Replay heap *and* control events for state/stack-reading allocators.

    Maintains exactly what a grouped allocator can observe at malloc
    time — the state-vector bits of instrumented sites and (for matchers
    that read it) the live call stack.  Without *pages*, this is the
    lean discovery pass; with *pages*/*page_starts* it additionally
    replays page residency (touching each access's pages before the next
    heap operation, which is when purges can observe them) and captures
    the fragmentation snapshot at allocation *peak_ordinal*.
    """
    allocator = machine.allocator
    stats = allocator.stats
    fb_stats = allocator.fallback.stats
    al_malloc = allocator.malloc
    al_free = allocator.free
    al_realloc = allocator.realloc
    state_vector = machine.state_vector
    instrumentation = machine.instrumentation
    needs_bits = bool(instrumentation)
    matcher = getattr(allocator, "matcher", None)
    needs_stack = matcher is not None and hasattr(matcher, "machine")
    stack = machine.stack
    sites = machine.program.sites
    instr_get = instrumentation.get
    sv_set = state_vector.set
    sv_clear = state_vector.clear
    bases: list[int] = []
    cur: list[int] = []
    moves: list[tuple[int, int, int]] = []
    bit_stack: list = []
    toggles = 0
    peak_live = 0
    peak_at = -1
    frag: Optional[FragmentationSnapshot] = None
    tracking = pages is not None
    touched = allocator.space._touched_pages if tracking else None
    flushed = 0
    for op, a, b, ptr in cols.ctrl_ops:
        if op == OP_CALL:
            if needs_stack:
                stack.append(sites[a])
            if needs_bits:
                bit = instr_get(a)
                bit_stack.append(bit)
                if bit is not None:
                    sv_set(bit)
                    toggles += 1
            continue
        if op == OP_RETURN:
            if needs_bits:
                bit = bit_stack.pop()
                if bit is not None:
                    sv_clear(bit)
                    toggles += 1
            if needs_stack:
                stack.pop()
            continue
        if tracking:
            upto = int(page_starts[ptr])
            if upto > flushed:
                touched.update(pages[flushed:upto])
                flushed = upto
        if op == OP_ALLOC:
            addr = al_malloc(a)
            cur.append(addr)
            bases.append(addr)
            if tracking:
                if addr != bases_check[len(bases) - 1]:
                    raise RuntimeError(
                        "columnar engine: allocator placement diverged between "
                        "passes (non-deterministic allocator?)"
                    )
                if len(bases) - 1 == peak_ordinal:
                    frag = allocator.fragmentation()
            else:
                live = stats.live_bytes + fb_stats.live_bytes
                if live > peak_live:
                    peak_live = live
                    peak_at = len(bases) - 1
        elif op == OP_FREE:
            al_free(cur[a])
        else:  # OP_REALLOC
            old = cur[a]
            new = al_realloc(old, b)
            if new != old:
                cur[a] = new
                moves.append((ptr, a, new))
    while bit_stack:  # truncated traces: auto-closed trailing scopes
        bit = bit_stack.pop()
        if bit is not None:
            sv_clear(bit)
            toggles += 1
    return bases, moves, peak_live, peak_at, toggles, frag


def _address_column(cols, bases: list, moves: list) -> np.ndarray:
    """Absolute address per access: base-table gather plus realloc patches."""
    if cols.accesses == 0:
        return np.empty(0, dtype=np.int64)
    bases_arr = np.asarray(bases, dtype=np.int64)
    addr = bases_arr[cols.acc_oid] + cols.acc_offset
    for ptr, oid, new_base in moves:
        tail_oid = cols.acc_oid[ptr:]
        sel = tail_oid == oid
        addr[ptr:][sel] = new_base + cols.acc_offset[ptr:][sel]
    return addr


def score_trace(
    workload: Workload,
    make_allocator: Callable[[AddressSpace], Allocator],
    trace: EventTrace,
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    hierarchy_config: Optional[HierarchyConfig] = None,
    instrumentation: Optional[dict[int, int]] = None,
    state_vector=None,
    attach: Optional[Callable[[Machine], None]] = None,
) -> float:
    """Cycles-only score of one allocator configuration over *trace*.

    The serving daemon's canary: identical placement and hierarchy
    simulation to :func:`measure_columnar`, but a single lean pass (no
    fragmentation snapshot, which needs the residency replay) and no
    observability publication — scoring candidates must not perturb the
    service's own metrics.  Scores are comparable across calls with the
    same trace, seed, cost model, and hierarchy geometry.
    """
    cost_model = cost_model or CostModel()
    hconfig = hierarchy_config or HierarchyConfig()
    cols = trace.columns()
    machine = _build_machine(
        workload, make_allocator, seed, instrumentation, state_vector, attach
    )
    if isinstance(machine.allocator, GroupAllocator):
        bases, moves, _, _, toggles, _ = _grouped_pass(cols, machine)
    else:
        bases, moves, _, toggles = _heap_pass(cols, machine)
    addr = _address_column(cols, bases, moves)
    size = cols.acc_size if cols.accesses else np.empty(0, dtype=np.int64)
    cache, _, _ = simulate_hierarchy(addr, size, hconfig)
    metrics = MachineMetrics(
        loads=cols.loads,
        stores=cols.stores,
        allocs=cols.allocs,
        frees=cols.frees,
        reallocs=cols.reallocs,
        calls=cols.calls,
        compute_cycles=_compute_cycles(cols.works),
        instrumentation_toggles=toggles,
    )
    return cost_model.cycles(metrics, cache)


def measure_columnar(
    workload: Workload,
    make_allocator: Callable[[AddressSpace], Allocator],
    config: str,
    trace: EventTrace,
    scale: str = "ref",
    seed: int = 0,
    cost_model: Optional[CostModel] = None,
    hierarchy_config: Optional[HierarchyConfig] = None,
    instrumentation: Optional[dict[int, int]] = None,
    state_vector=None,
    attach: Optional[Callable[[Machine], None]] = None,
):
    """Measure one allocator configuration from *trace*, batched.

    Drop-in equivalent of ``run_measurement(..., driver=TraceReplayer(
    trace, workload.program).drive)`` — same Measurement fields, same
    ``measure.*`` observability counters — at a fraction of the cost.
    """
    from ..harness.runner import Measurement, _publish_measurement_metrics

    cost_model = cost_model or CostModel()
    hconfig = hierarchy_config or HierarchyConfig()
    cols = trace.columns()

    machine = _build_machine(
        workload, make_allocator, seed, instrumentation, state_vector, attach
    )
    allocator = machine.allocator
    grouped = isinstance(allocator, GroupAllocator)
    if grouped:
        bases, moves, peak_live, peak_at, toggles, _ = _grouped_pass(cols, machine)
    else:
        bases, moves, peak_live, toggles = _heap_pass(cols, machine)

    addr = _address_column(cols, bases, moves)
    size = cols.acc_size if cols.accesses else np.empty(0, dtype=np.int64)
    cache, pages, page_starts = simulate_hierarchy(addr, size, hconfig)

    frag: Optional[FragmentationSnapshot] = None
    if grouped:
        # Second pass on a fresh, identically-seeded allocator: replay
        # with page residency so the fragmentation snapshot at the peak
        # allocation is exact (purges and header touches included).
        machine = _build_machine(
            workload, make_allocator, seed, instrumentation, state_vector, attach
        )
        allocator = machine.allocator
        _, _, _, _, _, frag = _grouped_pass(
            cols,
            machine,
            pages=pages.tolist(),
            page_starts=page_starts,
            bases_check=bases,
            peak_ordinal=peak_at,
        )

    metrics = MachineMetrics(
        loads=cols.loads,
        stores=cols.stores,
        allocs=cols.allocs,
        frees=cols.frees,
        reallocs=cols.reallocs,
        calls=cols.calls,
        compute_cycles=_compute_cycles(cols.works),
        instrumentation_toggles=toggles,
    )
    _publish_measurement_metrics(
        workload.name, config, metrics, cache, allocator, peak_live
    )
    return Measurement(
        workload=workload.name,
        config=config,
        scale=scale,
        seed=seed,
        cycles=cost_model.cycles(metrics, cache),
        cache=cache,
        accesses=metrics.accesses,
        allocs=metrics.allocs,
        frees=metrics.frees,
        instrumentation_toggles=metrics.instrumentation_toggles,
        peak_live_bytes=peak_live,
        frag_at_peak=frag,
        grouped_allocs=getattr(allocator, "grouped_allocs", 0),
        forwarded_allocs=getattr(allocator, "forwarded_allocs", 0),
        degraded_allocs=getattr(allocator, "degraded_allocs", 0),
    )
