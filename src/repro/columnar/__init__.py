"""Columnar trace-driven simulation core.

A batched measurement backend: instead of dispatching one Python method
call per recorded machine event, the trace is decoded once into flat
columns (:meth:`repro.trace.format.EventTrace.columns`) and the
set-associative cache / TLB simulation runs as chunked passes over
line/page streams — through a small compiled LRU kernel when a C
compiler is available, or an exact pure-Python fallback otherwise.

The per-event :class:`~repro.machine.machine.Machine` path is retained
as the differential oracle: ``measure_columnar`` produces bit-identical
:class:`~repro.harness.runner.Measurement` values (cycles, per-level
misses, TLB misses, fragmentation-at-peak) for every supported allocator
configuration, which the agreement tests assert on every benchmark.
"""

from .engine import measure_columnar, score_trace
from .kernel import kernel_backend

__all__ = ["measure_columnar", "score_trace", "kernel_backend"]
