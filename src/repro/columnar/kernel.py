"""Chunked LRU state-machine kernel behind the columnar engine.

One primitive covers every structure in the simulated hierarchy: an LRU
set-associative array driven by a flat stream of keys (line addresses
for the caches, page numbers for the TLB, which is simply the degenerate
one-set geometry).  :func:`lru_filter` consumes the stream and returns
the miss count plus the missed keys *in stream order*, so the three
cache levels chain exactly like the per-event hierarchy: L2 only sees
what missed L1, L3 only what missed L2.

Two interchangeable backends:

* a small C kernel, compiled on demand into a per-user temp directory
  (keyed by a hash of its source, so stale binaries are never reused)
  and loaded through ``ctypes``;
* a pure-Python replica of :meth:`SetAssociativeCache.access_line`'s
  dict-LRU loop, used when no compiler is available or
  ``REPRO_COLUMNAR_DISABLE_CC`` is set.

Both are exact: victim selection mirrors the insertion-ordered dict
(the least recently touched way is evicted; empty ways fill first), so
miss counts and downstream miss streams are bit-identical to the
per-event simulation regardless of backend.
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from ..cache.cache import CacheConfigError

logger = logging.getLogger(__name__)

_SOURCE = r"""
#include <stdint.h>

/* LRU set-associative filter.
 *
 * keys:      n stream keys (non-negative line/page numbers)
 * tags:      num_sets * assoc slots, initialised to -1 (empty)
 * stamps:    num_sets * assoc last-touch stamps, initialised to 0
 * miss_out:  capacity n; receives missed keys in stream order
 * pow2:      nonzero when num_sets is a power of two (mask indexing)
 *
 * Returns the miss count.  Victim choice replicates the insertion-
 * ordered dict of the per-event simulator: empty ways fill first,
 * otherwise the way with the smallest last-touch stamp is evicted.
 */
int64_t halo_lru_filter(const int64_t *keys, int64_t n,
                        int64_t num_sets, int64_t assoc, int64_t pow2,
                        int64_t *tags, int64_t *stamps, int64_t *epochs,
                        int64_t epoch, int64_t *miss_out)
{
    int64_t misses = 0;
    int64_t stamp = 0;
    int64_t mask = num_sets - 1;
    for (int64_t i = 0; i < n; i++) {
        int64_t key = keys[i];
        int64_t set = pow2 ? (key & mask) : (key % num_sets);
        int64_t *t = tags + set * assoc;
        int64_t *s = stamps + set * assoc;
        int64_t *e = epochs + set * assoc;
        int64_t way = -1;
        for (int64_t w = 0; w < assoc; w++) {
            if (e[w] == epoch && t[w] == key) { way = w; break; }
        }
        if (way >= 0) {
            s[way] = ++stamp;
            continue;
        }
        miss_out[misses++] = key;
        for (int64_t w = 0; w < assoc; w++) {
            if (e[w] != epoch) { way = w; break; }
        }
        if (way < 0) {
            way = 0;
            int64_t oldest = s[0];
            for (int64_t w = 1; w < assoc; w++) {
                if (s[w] < oldest) { oldest = s[w]; way = w; }
            }
        }
        t[way] = key;
        e[way] = epoch;
        s[way] = ++stamp;
    }
    return misses;
}

/* Fully-associative single-set variant (the TLB geometry).
 *
 * ways[] is kept in recency order: ways[0] is the least recently used
 * entry, ways[count-1] the most recent — exactly the insertion order of
 * the per-event dict.  Hits search newest-first (locality), then the
 * entry slides to the back; a miss on a full set evicts ways[0].
 */
int64_t halo_lru_fa(const int64_t *keys, int64_t n, int64_t capacity,
                    int64_t *ways, int64_t *miss_out)
{
    int64_t misses = 0;
    int64_t count = 0;
    for (int64_t i = 0; i < n; i++) {
        int64_t key = keys[i];
        int64_t at = -1;
        for (int64_t w = count - 1; w >= 0; w--) {
            if (ways[w] == key) { at = w; break; }
        }
        if (at < 0) {
            miss_out[misses++] = key;
            if (count < capacity) {
                ways[count++] = key;
                continue;
            }
            at = 0;  /* evict the least recently used entry */
        }
        for (int64_t w = at; w < count - 1; w++) ways[w] = ways[w + 1];
        ways[count - 1] = key;
    }
    return misses;
}
"""

_I64P = ctypes.POINTER(ctypes.c_int64)

#: Memoised compiled entry points; False means "tried and failed".
_kernel = None
_kernel_fa = None

#: Reused scratch state per geometry: ``(num_sets, assoc) -> [tags,
#: stamps, epochs, next_epoch]``.  Slots whose epoch differs from the
#: current call's are treated as empty, so reuse needs no multi-megabyte
#: refill between calls (the L3 arrays alone are ~6 MB).
_scratch: dict[tuple[int, int], list] = {}
_scratch_fa: dict[int, np.ndarray] = {}


def _compile() -> ctypes.CDLL:
    """Build (or reuse) the shared object and load it."""
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache_dir = Path(tempfile.gettempdir()) / f"repro-columnar-{os.getuid()}"
    cache_dir.mkdir(parents=True, exist_ok=True)
    so_path = cache_dir / f"kernel-{digest}.so"
    if not so_path.exists():
        with tempfile.TemporaryDirectory(dir=cache_dir) as build:
            src = Path(build) / "kernel.c"
            src.write_text(_SOURCE)
            out = Path(build) / "kernel.so"
            last_error: Exception | None = None
            for cc in ("cc", "gcc", "clang"):
                try:
                    subprocess.run(
                        [cc, "-O2", "-shared", "-fPIC", "-o", str(out), str(src)],
                        check=True, capture_output=True, timeout=120,
                    )
                    break
                except (OSError, subprocess.SubprocessError) as exc:
                    last_error = exc
            else:
                raise RuntimeError(f"no working C compiler: {last_error!r}")
            os.replace(out, so_path)  # atomic: concurrent builders agree
    return ctypes.CDLL(str(so_path))


def _load():
    """The compiled filter function, or None when unavailable."""
    global _kernel, _kernel_fa
    if _kernel is None:
        if os.environ.get("REPRO_COLUMNAR_DISABLE_CC"):
            _kernel = False
        else:
            try:
                lib = _compile()
                fn = lib.halo_lru_filter
                fn.restype = ctypes.c_int64
                fn.argtypes = [
                    _I64P, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64,
                    ctypes.c_int64, _I64P, _I64P, _I64P, ctypes.c_int64, _I64P,
                ]
                fa = lib.halo_lru_fa
                fa.restype = ctypes.c_int64
                fa.argtypes = [_I64P, ctypes.c_int64, ctypes.c_int64, _I64P, _I64P]
                _kernel, _kernel_fa = fn, fa
            except Exception as exc:  # pragma: no cover - environment-dependent
                logger.warning("columnar C kernel unavailable (%s); using Python fallback", exc)
                _kernel = False
    return _kernel or None


def kernel_backend() -> str:
    """Which backend :func:`lru_filter` runs on: ``"c"`` or ``"python"``."""
    return "c" if _load() is not None else "python"


def _lru_filter_py(keys: np.ndarray, num_sets: int, assoc: int) -> tuple[int, np.ndarray]:
    """Exact dict-LRU replica of the C kernel (and of the event path)."""
    sets: list[dict[int, None]] = [dict() for _ in range(num_sets)]
    pow2 = num_sets & (num_sets - 1) == 0
    mask = num_sets - 1
    missed: list[int] = []
    append = missed.append
    for key in keys.tolist():
        ways = sets[key & mask if pow2 else key % num_sets]
        if key in ways:
            del ways[key]
            ways[key] = None
            continue
        append(key)
        if len(ways) >= assoc:
            ways.pop(next(iter(ways)))
        ways[key] = None
    return len(missed), np.asarray(missed, dtype=np.int64)


def lru_filter(keys: np.ndarray, num_sets: int, assoc: int) -> tuple[int, np.ndarray]:
    """Drive one LRU structure with *keys*; returns ``(misses, missed_keys)``.

    *keys* must be a contiguous non-negative int64 array; the missed keys
    come back in stream order, ready to feed the next cache level.
    """
    if num_sets <= 0 or assoc <= 0:
        raise CacheConfigError(f"impossible geometry: {num_sets} sets x {assoc} ways")
    n = int(keys.shape[0])
    if n == 0:
        return 0, keys[:0]
    fn = _load()
    if fn is None:
        return _lru_filter_py(keys, num_sets, assoc)
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    miss_out = np.empty(n, dtype=np.int64)
    if num_sets == 1:
        ways = _scratch_fa.get(assoc)
        if ways is None:
            ways = _scratch_fa[assoc] = np.empty(assoc, dtype=np.int64)
        misses = _kernel_fa(
            keys.ctypes.data_as(_I64P), n, assoc,
            ways.ctypes.data_as(_I64P), miss_out.ctypes.data_as(_I64P),
        )
        return int(misses), miss_out[:misses]
    state = _scratch.get((num_sets, assoc))
    if state is None:
        slots = num_sets * assoc
        state = _scratch[(num_sets, assoc)] = [
            np.empty(slots, dtype=np.int64),
            np.zeros(slots, dtype=np.int64),
            np.zeros(slots, dtype=np.int64),
            0,
        ]
    tags, stamps, epochs, epoch = state
    state[3] = epoch = epoch + 1
    misses = fn(
        keys.ctypes.data_as(_I64P), n, num_sets, assoc,
        1 if num_sets & (num_sets - 1) == 0 else 0,
        tags.ctypes.data_as(_I64P), stamps.ctypes.data_as(_I64P),
        epochs.ctypes.data_as(_I64P), epoch, miss_out.ctypes.data_as(_I64P),
    )
    return int(misses), miss_out[:misses]


def validate_geometry(config) -> None:
    """Replicate the hierarchy constructors' geometry checks without
    building their (large) per-set state.

    Raises exactly what ``CacheHierarchy(config)`` would: a
    :class:`CacheConfigError` for impossible cache shapes, a
    :class:`ValueError` for bad TLB/page parameters.
    """
    line = config.line_size
    if line <= 0 or line & (line - 1):
        raise CacheConfigError(f"line size must be a power of two, got {line}")
    for name, size, assoc in (
        ("L1D", config.l1_size, config.l1_assoc),
        ("L2", config.l2_size, config.l2_assoc),
        ("L3", config.l3_size, config.l3_assoc),
    ):
        if size % (assoc * line):
            raise CacheConfigError(
                f"{name}: size {size} not divisible by assoc*line ({assoc}*{line})"
            )
    if config.tlb_entries <= 0:
        raise ValueError(f"TLB needs at least one entry, got {config.tlb_entries}")
    page = config.page_size
    if page <= 0 or page & (page - 1):
        raise ValueError(f"page size must be a power of two, got {page}")


def expand_ranges(first: np.ndarray, last: np.ndarray) -> np.ndarray:
    """Flatten inclusive ``[first, last]`` ranges into one ascending stream.

    The vectorised equivalent of the per-event straddle loops: each
    access's lines (or pages) appear consecutively in ascending order, so
    the flattened stream visits structures in exactly per-event order.
    """
    if first.shape[0] == 0:
        return first
    spans = last - first + 1
    if int(spans.max(initial=1)) == 1:
        return first
    total = int(spans.sum())
    starts = np.repeat(first, spans)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(np.cumsum(spans) - spans, spans)
    return starts + offsets
