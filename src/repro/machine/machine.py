"""The simulated machine that executes workloads.

A :class:`Machine` plays the role of the CPU + OS process in the paper's
evaluation: it maintains the call stack, routes allocation requests to the
configured allocator, drives the cache hierarchy with every heap load/store,
toggles group-state bits for instrumented call sites (the work the BOLT pass
injects into the rewritten binary, Section 4.3), and broadcasts every event
to registered listeners (the Pin tool's view, Section 4.1).

Workloads drive the machine through a small explicit API::

    with machine.call(site):          # control transfer through `site`
        obj = machine.malloc(64)      # heap allocation
    machine.load(obj, 0, 8)           # heap access
    machine.work(25)                  # `25` cycles of non-memory compute
    machine.free(obj)

Determinism: given the same workload code, RNG seed and allocator placement,
two runs produce identical event streams and identical cache behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

from .events import Listener
from .heap import HeapError, HeapObject, ObjectTable
from .program import CallSite, Program, ProgramError


@dataclass(slots=True)
class MachineMetrics:
    """Dynamic instruction-level counters for one run."""

    loads: int = 0
    stores: int = 0
    allocs: int = 0
    frees: int = 0
    reallocs: int = 0
    calls: int = 0
    compute_cycles: float = 0.0
    #: Bit set/clear operations executed for instrumented call sites — the
    #: runtime overhead the rewriting pass introduces.
    instrumentation_toggles: int = 0

    @property
    def accesses(self) -> int:
        """Total heap accesses (loads + stores)."""
        return self.loads + self.stores

    def as_counters(self) -> dict[str, int]:
        """Integer counters for the observability harvest (``measure.machine.*``).

        ``compute_cycles`` is deliberately excluded: it is a float, and
        the deterministic ``measure.*`` family guarantees bit-identical
        totals regardless of summation order, which only integers give.
        """
        return {
            "loads": self.loads,
            "stores": self.stores,
            "allocs": self.allocs,
            "frees": self.frees,
            "reallocs": self.reallocs,
            "calls": self.calls,
            "instrumentation_toggles": self.instrumentation_toggles,
        }


class GroupStateVector:
    """The shared 'group state' bit vector from Section 4.3.

    The rewritten binary sets bit *i* when control passes through the *i*-th
    instrumented call site and clears it on the way back out.  The
    specialised allocator reads the whole vector (as an integer) on every
    allocation to evaluate group selectors.
    """

    def __init__(self) -> None:
        self.value = 0

    def set(self, bit: int) -> None:
        """Set bit *bit*."""
        self.value |= 1 << bit

    def clear(self, bit: int) -> None:
        """Clear bit *bit*.

        Faithful to the paper's set-then-unset scheme: a recursive re-entry
        through the same site does not reference-count, so the inner return
        clears the bit even if an outer activation is still live.
        """
        self.value &= ~(1 << bit)

    def test(self, bit: int) -> bool:
        """Return whether bit *bit* is set."""
        return bool(self.value >> bit & 1)


class _ListenerList(list):
    """Listener container that keeps the machine's dispatch fast path fresh.

    The machine skips listener dispatch entirely when none are registered,
    via a cached dispatch tuple (``Machine._dispatch``).  Any mutation of
    the listener list — including a registration made *mid-run*, while
    events are already flowing — must invalidate that cache, or the new
    listener would silently miss every subsequent event.  This subclass
    rebuilds the cache on every mutating operation, so plain
    ``machine.listeners.append(listener)`` stays safe.
    """

    __slots__ = ("_machine",)

    def __init__(self, machine: "Machine", iterable: Iterable[Listener] = ()) -> None:
        super().__init__(iterable)
        self._machine = machine

    def _refresh(self) -> None:
        self._machine._dispatch = tuple(self)

    def append(self, listener: Listener) -> None:
        """Register *listener* and refresh the dispatch fast path."""
        super().append(listener)
        self._refresh()

    def extend(self, listeners: Iterable[Listener]) -> None:
        """Register each listener and refresh the dispatch fast path."""
        super().extend(listeners)
        self._refresh()

    def insert(self, index: int, listener: Listener) -> None:
        """Insert *listener* at *index* and refresh the dispatch fast path."""
        super().insert(index, listener)
        self._refresh()

    def remove(self, listener: Listener) -> None:
        """Deregister *listener* and refresh the dispatch fast path."""
        super().remove(listener)
        self._refresh()

    def pop(self, index: int = -1) -> Listener:
        """Remove and return the listener at *index*, refreshing dispatch."""
        listener = super().pop(index)
        self._refresh()
        return listener

    def clear(self) -> None:
        """Deregister every listener and refresh the dispatch fast path."""
        super().clear()
        self._refresh()

    def __setitem__(self, index, listener) -> None:
        super().__setitem__(index, listener)
        self._refresh()

    def __delitem__(self, index) -> None:
        super().__delitem__(index)
        self._refresh()

    def __iadd__(self, listeners):
        result = super().__iadd__(listeners)
        self._refresh()
        return result


class _CallScope:
    """Context manager for one simulated call through a site.

    All entry work happens in ``__enter__`` (matching the previous
    ``@contextmanager`` semantics: constructing the scope does nothing),
    with hot attributes bound to locals and listener dispatch skipped when
    no listeners are registered.
    """

    __slots__ = ("_machine", "_site", "_resolved", "_bit")

    def __init__(self, machine: "Machine", site: Union[CallSite, int]) -> None:
        self._machine = machine
        self._site = site
        self._resolved: Optional[CallSite] = None
        self._bit: Optional[int] = None

    def __enter__(self) -> None:
        machine = self._machine
        resolved = self._resolved = machine._resolve_site(self._site)
        machine.stack.append(resolved)
        metrics = machine.metrics
        metrics.calls += 1
        instrumentation = machine.instrumentation
        bit = self._bit = (
            instrumentation.get(resolved.addr) if instrumentation else None
        )
        if bit is not None:
            machine.state_vector.set(bit)
            metrics.instrumentation_toggles += 1
        listeners = machine._dispatch
        if listeners:
            for listener in listeners:
                listener.on_call(machine, resolved)

    def __exit__(self, exc_type, exc, tb) -> bool:
        machine = self._machine
        resolved = self._resolved
        listeners = machine._dispatch
        if listeners:
            for listener in listeners:
                listener.on_return(machine, resolved)
        bit = self._bit
        if bit is not None:
            machine.state_vector.clear(bit)
            machine.metrics.instrumentation_toggles += 1
        popped = machine.stack.pop()
        assert popped is resolved
        return False


class Machine:
    """Executes workload code against a program, allocator, and memory model.

    Args:
        program: Static program model; every call site passed to
            :meth:`call` must belong to it.
        allocator: Object implementing the :class:`repro.allocators.base.Allocator`
            interface.  Must expose ``.space`` for residency accounting.
        memory: Optional cache hierarchy; when present, every heap access is
            simulated through it.  Profiling runs omit it for speed.
        listeners: Event observers.
        instrumentation: Optional mapping ``site addr -> state-vector bit``
            produced by the BOLT rewriting pass.  When present, entering and
            leaving those sites toggles bits in ``state_vector``.
        state_vector: The shared group state vector (created on demand).
    """

    def __init__(
        self,
        program: Program,
        allocator,
        memory=None,
        listeners: Iterable[Listener] = (),
        instrumentation: Optional[dict[int, int]] = None,
        state_vector: Optional[GroupStateVector] = None,
    ) -> None:
        self.program = program
        self.allocator = allocator
        self.memory = memory
        #: Dispatch fast path: a tuple snapshot of the listener list, kept
        #: in sync by :class:`_ListenerList` / the ``listeners`` setter so a
        #: mid-run registration can never miss events.
        self._dispatch: tuple[Listener, ...] = ()
        self.listeners = listeners  # property setter wraps + refreshes
        self.instrumentation = dict(instrumentation or {})
        self.state_vector = state_vector if state_vector is not None else GroupStateVector()
        self.objects = ObjectTable()
        self.metrics = MachineMetrics()
        #: The true dynamic call stack, innermost last.
        self.stack: list[CallSite] = []
        #: Simulated hardware thread currently executing.  Multi-tenant
        #: workloads switch it as the mix scheduler interleaves tick
        #: streams; single-threaded workloads never leave thread 0.
        self.thread_id = 0

    # ------------------------------------------------------------------
    # Listener registration
    # ------------------------------------------------------------------

    @property
    def listeners(self) -> "_ListenerList":
        """The registered event observers (mutations stay dispatch-safe)."""
        return self._listeners

    @listeners.setter
    def listeners(self, value: Iterable[Listener]) -> None:
        self._listeners = _ListenerList(self, value)
        self._dispatch = tuple(self._listeners)

    def add_listener(self, listener: Listener) -> Listener:
        """Register *listener* (valid mid-run: it sees all later events)."""
        self._listeners.append(listener)
        return listener

    def remove_listener(self, listener: Listener) -> None:
        """Deregister *listener*; it receives no further events."""
        self._listeners.remove(listener)

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------

    def _resolve_site(self, site: Union[CallSite, int]) -> CallSite:
        if isinstance(site, CallSite):
            if self.program.sites.get(site.addr) != site:
                raise ProgramError(f"site {site.describe()} is not part of {self.program.name}")
            return site
        return self.program.site(site)

    def call(self, site: Union[CallSite, int]) -> "_CallScope":
        """Execute a call through *site*; the body runs inside the callee.

        Returns a context manager: entry pushes the site on the call stack
        (toggling its instrumented bit and notifying listeners), exit pops
        it.  A dedicated slotted object rather than ``@contextmanager`` —
        calls are one of the simulator's hottest events and the generator
        machinery dominated their cost.
        """
        return _CallScope(self, site)

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------

    def set_thread(self, thread_id: int) -> None:
        """Switch the simulated executing thread to *thread_id*.

        Thread-aware allocators (per-thread arenas) are notified so later
        heap ops route to the right arena; thread-oblivious allocators
        ignore the switch entirely.  Deterministic: the mix scheduler
        drives this from a seeded interleave, never from host threads.
        """
        self.thread_id = thread_id
        forward = getattr(self.allocator, "set_thread", None)
        if forward is not None:
            forward(thread_id)

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------

    def malloc(self, size: int) -> HeapObject:
        """Allocate *size* bytes through the configured allocator."""
        if size <= 0:
            raise HeapError(f"invalid allocation size {size}")
        addr = self.allocator.malloc(size)
        obj = self.objects.create(addr, size)
        self.metrics.allocs += 1
        listeners = self._dispatch
        if listeners:
            for listener in listeners:
                listener.on_alloc(self, obj)
        return obj

    def calloc(self, count: int, size: int) -> HeapObject:
        """Allocate and zero ``count * size`` bytes (zeroing touches pages)."""
        obj = self.malloc(count * size)
        # calloc writes the whole region; model the residency effect without
        # charging the workload cache traffic for it.
        self.allocator.space.touch_range(obj.addr, obj.size)
        return obj

    def free(self, obj: HeapObject) -> None:
        """Free *obj*."""
        obj.check_alive()
        for listener in self._dispatch:
            listener.on_free(self, obj)
        self.allocator.free(obj.addr)
        self.objects.destroy(obj)
        self.metrics.frees += 1

    def realloc(self, obj: HeapObject, new_size: int) -> HeapObject:
        """Resize *obj*, possibly moving it.  Returns the same handle."""
        obj.check_alive()
        if new_size <= 0:
            raise HeapError(f"invalid realloc size {new_size}")
        old_addr, old_size = obj.addr, obj.size
        new_addr = self.allocator.realloc(obj.addr, new_size)
        self.objects.move(obj, new_addr, new_size)
        self.metrics.reallocs += 1
        for listener in self._dispatch:
            listener.on_realloc(self, obj, old_addr, old_size)
        return obj

    # ------------------------------------------------------------------
    # Data accesses and compute
    # ------------------------------------------------------------------

    def load(self, obj: HeapObject, offset: int = 0, size: int = 8) -> None:
        """Simulate a load of *size* bytes at *offset* within *obj*."""
        self._access(obj, offset, size, is_store=False)
        self.metrics.loads += 1

    def store(self, obj: HeapObject, offset: int = 0, size: int = 8) -> None:
        """Simulate a store of *size* bytes at *offset* within *obj*."""
        self._access(obj, offset, size, is_store=True)
        self.metrics.stores += 1

    def _access(self, obj: HeapObject, offset: int, size: int, is_store: bool) -> None:
        # The hottest function in the simulator: every workload load/store
        # lands here.  Inline the liveness check and bind attributes to
        # locals; skip listener dispatch entirely when none are registered.
        if not obj.alive:
            raise HeapError(f"use of freed object #{obj.oid}")
        if offset < 0 or size <= 0 or offset + size > obj.size:
            raise HeapError(
                f"out-of-bounds access to object #{obj.oid}: "
                f"[{offset}, {offset + size}) of {obj.size} bytes"
            )
        addr = obj.addr + offset
        self.allocator.space.touch_range(addr, size)
        memory = self.memory
        if memory is not None:
            memory.access(addr, size, is_store)
        listeners = self._dispatch
        if listeners:
            for listener in listeners:
                listener.on_access(self, obj, offset, size, is_store)

    def work(self, cycles: float) -> None:
        """Account *cycles* of non-memory compute (models instruction work)."""
        self.metrics.compute_cycles += cycles
        listeners = self._dispatch
        if listeners:
            for listener in listeners:
                listener.on_work(self, cycles)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def finish(self) -> None:
        """Signal end of run to listeners."""
        for listener in self._dispatch:
            listener.on_finish(self)

    def validate_heap(self) -> list:
        """Cross-check the object table against the allocator's bookkeeping.

        Returns the list of sanitizer :class:`~repro.sanitize.Finding`
        violations (empty when the heap is coherent).  This is the
        on-demand entry point; continuous checking attaches a
        :class:`~repro.sanitize.SanitizerListener` instead.
        """
        from ..sanitize.invariants import validate_machine

        return validate_machine(self)
