"""Heap-object handles used by the simulated machine.

Workload code manipulates :class:`HeapObject` handles rather than raw
addresses; the handle records the address assigned by whichever allocator is
in force, the request size, and bookkeeping the profiler needs (allocation
sequence number, liveness).  This mirrors what the Pin tool in the paper
reconstructs by interposing on the POSIX.1 memory-management functions:
"tracking live data at an object-level granularity" (Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class HeapError(Exception):
    """Raised on invalid heap operations (double free, use-after-free...)."""


@dataclass(slots=True)
class HeapObject:
    """A live (or once-live) heap allocation.

    Attributes:
        oid: Stable object identity, unique per machine run.
        addr: Current base address (changes across ``realloc``).
        size: Current size in bytes.
        alloc_seq: Global allocation sequence number (chronological order of
            allocations; used by the co-allocatability constraint).
        alive: False once freed.
    """

    oid: int
    addr: int
    size: int
    alloc_seq: int
    alive: bool = True

    def check_alive(self) -> None:
        """Raise :class:`HeapError` if this object has been freed."""
        if not self.alive:
            raise HeapError(f"use of freed object #{self.oid}")

    def end(self) -> int:
        """One past the last byte of the object."""
        return self.addr + self.size


class ObjectTable:
    """Tracks live heap objects by address.

    The table enforces basic heap discipline (no double frees, no overlapping
    live objects at the same base address) and provides address → object
    lookup for diagnostics.
    """

    def __init__(self) -> None:
        self._by_addr: dict[int, HeapObject] = {}
        self._next_oid = 0
        self._next_seq = 0
        self.live_count = 0
        self.total_allocated = 0

    def create(self, addr: int, size: int) -> HeapObject:
        """Register a new allocation at *addr* of *size* bytes."""
        if addr in self._by_addr:
            raise HeapError(f"allocator returned in-use address {addr:#x}")
        obj = HeapObject(self._next_oid, addr, size, self._next_seq)
        self._next_oid += 1
        self._next_seq += 1
        self._by_addr[addr] = obj
        self.live_count += 1
        self.total_allocated += 1
        return obj

    def destroy(self, obj: HeapObject) -> None:
        """Mark *obj* freed and release its address slot."""
        obj.check_alive()
        stored = self._by_addr.get(obj.addr)
        if stored is not obj:
            raise HeapError(f"object #{obj.oid} is not registered at {obj.addr:#x}")
        del self._by_addr[obj.addr]
        obj.alive = False
        self.live_count -= 1

    def move(self, obj: HeapObject, new_addr: int, new_size: int) -> None:
        """Relocate *obj* (realloc support)."""
        obj.check_alive()
        if new_addr != obj.addr and new_addr in self._by_addr:
            raise HeapError(f"realloc target {new_addr:#x} is in use")
        del self._by_addr[obj.addr]
        obj.addr = new_addr
        obj.size = new_size
        self._by_addr[new_addr] = obj

    def at(self, addr: int) -> Optional[HeapObject]:
        """Return the live object based at *addr*, if any."""
        return self._by_addr.get(addr)

    def live_objects(self) -> list[HeapObject]:
        """All currently live objects (unspecified order)."""
        return list(self._by_addr.values())
