"""Static program model: the simulated "binary" that HALO optimises.

The real HALO operates on post-link x86-64 executables: it profiles them with
Pin and rewrites them with BOLT.  In this reproduction a *program* is a static
description of the code HALO cares about — functions, the call sites between
them, and linkage information (is a function statically linked into the main
binary? is it an externally traceable allocation routine?).  The dynamic side
(an actual execution) is provided by :class:`repro.machine.machine.Machine`,
which workload code drives through an explicit call-site API.

Addresses are synthetic but behave like real ones: every function gets a
distinct base address in a text segment, and every call site gets a distinct
address inside its caller.  Identification (Section 4.3 of the paper) and
binary rewriting key off these addresses exactly as the real system keys off
instruction addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

#: Base of the simulated text segment for the main executable (non-PIE).
TEXT_BASE = 0x400000

#: Base of the simulated text segment for shared-library code.
LIBRARY_BASE = 0x7F00_0000_0000

#: Spacing between function base addresses.
FUNCTION_STRIDE = 0x1000

#: Spacing between call-site addresses within a function.
SITE_STRIDE = 0x10

#: Names conventionally treated as externally traceable allocation routines
#: (the "handful of externally traceable routines like malloc or free" from
#: Section 4.1).
TRACEABLE_ROUTINES = frozenset(
    {"malloc", "calloc", "realloc", "free", "posix_memalign", "aligned_alloc",
     "operator new", "operator delete"}
)


class ProgramError(Exception):
    """Raised for malformed program construction or lookups."""


@dataclass(frozen=True)
class Function:
    """A function in the target program.

    Attributes:
        name: Symbol name (unique within a program).
        addr: Base address of the function's code.
        in_main_binary: True when the function is statically linked into the
            main executable.  Only such functions appear on the shadow stack
            (Section 4.1) and only their call sites may be rewritten by the
            BOLT pass (Section 4.3).
        traceable: True for externally traceable memory-management routines
            (``malloc`` and friends), which enter the shadow stack even
            though they live outside the main binary.
    """

    name: str
    addr: int
    in_main_binary: bool = True
    traceable: bool = False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class CallSite:
    """A static call site: one call instruction inside a caller function.

    Attributes:
        addr: Address of the call instruction.
        caller: Name of the containing function.
        callee: Name of the called function (for indirect calls this is the
            dominant dynamic target; the profiler only uses the callee's
            linkage, so this is sufficient).
        indirect: True when the call is through a pointer / PLT stub.
        label: Optional human-readable label for reports.
    """

    addr: int
    caller: str
    callee: str
    indirect: bool = False
    label: str = ""

    def describe(self) -> str:
        """Return a short human-readable description of this site."""
        text = f"{self.caller}->{self.callee}@{self.addr:#x}"
        if self.label:
            text += f" ({self.label})"
        return text

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


class Program:
    """An immutable collection of functions and call sites.

    Use :class:`ProgramBuilder` to construct one.
    """

    def __init__(
        self,
        name: str,
        functions: dict[str, Function],
        sites: dict[int, CallSite],
        entry: str = "main",
        pie: bool = False,
    ) -> None:
        if entry not in functions:
            raise ProgramError(f"entry function {entry!r} is not defined")
        self.name = name
        self.functions = dict(functions)
        self.sites = dict(sites)
        self.entry = entry
        #: Position-independent executables cannot currently be rewritten by
        #: the HALO BOLT pass (the paper builds everything ``-no-pie``).
        self.pie = pie
        self._sites_by_caller: dict[str, list[CallSite]] = {}
        for site in sites.values():
            self._sites_by_caller.setdefault(site.caller, []).append(site)

    def function(self, name: str) -> Function:
        """Look up a function by name."""
        try:
            return self.functions[name]
        except KeyError:
            raise ProgramError(f"unknown function {name!r}") from None

    def site(self, addr: int) -> CallSite:
        """Look up a call site by address."""
        try:
            return self.sites[addr]
        except KeyError:
            raise ProgramError(f"no call site at address {addr:#x}") from None

    def sites_in(self, function_name: str) -> list[CallSite]:
        """Return the call sites contained in *function_name*."""
        return list(self._sites_by_caller.get(function_name, ()))

    def describe_site(self, addr: int) -> str:
        """Human-readable description of the site at *addr* (or the raw hex)."""
        site = self.sites.get(addr)
        return site.describe() if site is not None else f"{addr:#x}"

    def __contains__(self, addr: int) -> bool:
        return addr in self.sites

    def __iter__(self) -> Iterator[CallSite]:
        return iter(self.sites.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Program({self.name!r}, {len(self.functions)} functions, "
            f"{len(self.sites)} call sites)"
        )


class ProgramBuilder:
    """Incrementally build a :class:`Program`.

    Example::

        b = ProgramBuilder("povray")
        b.function("main")
        b.function("pov_malloc")
        b.function("malloc", in_main_binary=False)
        parse = b.call_site("main", "pov_malloc", label="parse loop")
        program = b.build()
    """

    def __init__(self, name: str, pie: bool = False) -> None:
        self.name = name
        self.pie = pie
        self._functions: dict[str, Function] = {}
        self._sites: dict[int, CallSite] = {}
        self._next_main_addr = TEXT_BASE
        self._next_lib_addr = LIBRARY_BASE
        self._site_counts: dict[str, int] = {}

    def function(
        self,
        name: str,
        in_main_binary: bool = True,
        traceable: Optional[bool] = None,
    ) -> Function:
        """Define a function; returns the existing one when redefined identically.

        ``traceable`` defaults to True for conventional allocation-routine
        names (``malloc`` etc.) when the function is outside the main binary.
        """
        if name in self._functions:
            return self._functions[name]
        if traceable is None:
            traceable = name in TRACEABLE_ROUTINES and not in_main_binary
        if in_main_binary:
            addr = self._next_main_addr
            self._next_main_addr += FUNCTION_STRIDE
        else:
            addr = self._next_lib_addr
            self._next_lib_addr += FUNCTION_STRIDE
        fn = Function(name, addr, in_main_binary=in_main_binary, traceable=traceable)
        self._functions[name] = fn
        return fn

    def call_site(
        self,
        caller: str,
        callee: str,
        indirect: bool = False,
        label: str = "",
    ) -> CallSite:
        """Define a new call site from *caller* to *callee* and return it.

        Both functions are implicitly defined (in the main binary) if they do
        not exist yet; declare library functions explicitly first if the
        defaults are wrong.
        """
        caller_fn = self.function(caller)
        self.function(callee)
        index = self._site_counts.get(caller, 0) + 1
        self._site_counts[caller] = index
        addr = caller_fn.addr + index * SITE_STRIDE
        if addr in self._sites:  # pragma: no cover - defensive
            raise ProgramError(f"call-site address collision at {addr:#x}")
        site = CallSite(addr, caller, callee, indirect=indirect, label=label)
        self._sites[addr] = site
        return site

    def build(self, entry: str = "main") -> Program:
        """Finalise and return the program."""
        if entry not in self._functions:
            self.function(entry)
        return Program(self.name, self._functions, self._sites, entry=entry, pie=self.pie)
