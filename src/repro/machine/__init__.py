"""Program + execution substrate: the simulated binary and CPU."""

from .events import Listener
from .heap import HeapError, HeapObject, ObjectTable
from .machine import GroupStateVector, Machine, MachineMetrics
from .program import (
    CallSite,
    Function,
    Program,
    ProgramBuilder,
    ProgramError,
    TRACEABLE_ROUTINES,
)

__all__ = [
    "CallSite",
    "Function",
    "GroupStateVector",
    "HeapError",
    "HeapObject",
    "Listener",
    "Machine",
    "MachineMetrics",
    "ObjectTable",
    "Program",
    "ProgramBuilder",
    "ProgramError",
    "TRACEABLE_ROUTINES",
]
