"""Execution-event interface between the machine and its observers.

The Pin tool in the paper observes three kinds of program behaviour: calls to
memory-management functions, cross-function control transfers, and heap loads
and stores.  The :class:`Machine` delivers exactly these to any number of
registered listeners.  The profiler (:mod:`repro.profiling`) is one listener;
the measurement harness installs others (e.g. peak-memory trackers).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .heap import HeapObject
    from .machine import Machine
    from .program import CallSite


class Listener:
    """Base class for machine-event observers.  All hooks default to no-ops.

    Subclass and override the hooks of interest.  Hooks receive the machine
    so they can inspect the live call stack (the profiler reads it to form
    allocation contexts).
    """

    def on_call(self, machine: "Machine", site: "CallSite") -> None:
        """Control entered *site* (the call instruction executed)."""

    def on_return(self, machine: "Machine", site: "CallSite") -> None:
        """Control returned past *site*."""

    def on_alloc(self, machine: "Machine", obj: "HeapObject") -> None:
        """A heap object was allocated."""

    def on_free(self, machine: "Machine", obj: "HeapObject") -> None:
        """A heap object was freed (still carries its final addr/size)."""

    def on_realloc(
        self, machine: "Machine", obj: "HeapObject", old_addr: int, old_size: int
    ) -> None:
        """A heap object was reallocated (obj already has its new placement)."""

    def on_access(
        self,
        machine: "Machine",
        obj: "HeapObject",
        offset: int,
        size: int,
        is_store: bool,
    ) -> None:
        """A load or store hit *size* bytes at *offset* within *obj*."""

    def on_work(self, machine: "Machine", cycles: float) -> None:
        """The workload accounted *cycles* of non-memory compute.

        Needed by observers that reconstruct complete executions (the
        event-trace recorder): compute cycles are part of the cost model, so
        a replay that dropped them could not reproduce measured cycle
        counts.
        """

    def on_finish(self, machine: "Machine") -> None:
        """The workload finished executing."""
