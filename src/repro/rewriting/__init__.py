"""BOLT-style post-link rewriting (instrumentation plans)."""

from .bolt import BoltRewriter, InstrumentationPlan, RewriteError

__all__ = ["BoltRewriter", "InstrumentationPlan", "RewriteError"]
