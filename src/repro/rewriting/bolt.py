"""Post-link binary rewriting (the paper's custom BOLT pass, Section 4.3).

The real HALO constructs a BOLT pass that "inserts instructions around every
point of interest in the target binary, setting and then unsetting a single
bit in a shared 'group state' bit vector".  In this reproduction the
"binary" is a :class:`~repro.machine.program.Program`; rewriting produces an
:class:`InstrumentationPlan` that assigns one state-vector bit to each
monitored call site, and the :class:`~repro.machine.machine.Machine` executes
the inserted set/clear operations whenever control passes through a planned
site.

The pass enforces the real system's legality constraints:

* only call sites inside the main executable's statically linked code can
  be rewritten (library code is off limits);
* position-independent executables are rejected (the paper compiles
  everything ``-no-pie`` "in accordance with current limitations of our
  BOLT pass").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..machine.program import Program


class RewriteError(Exception):
    """Raised when the requested instrumentation is not legal."""


@dataclass(frozen=True)
class InstrumentationPlan:
    """Assignment of state-vector bits to instrumented call sites."""

    bit_for_site: dict[int, int]

    @property
    def sites(self) -> frozenset[int]:
        return frozenset(self.bit_for_site)

    @property
    def bits_used(self) -> int:
        return len(self.bit_for_site)

    def describe(self, program: Program) -> list[str]:
        """Human-readable plan listing, ordered by bit index."""
        ordered = sorted(self.bit_for_site.items(), key=lambda kv: kv[1])
        return [f"bit {bit:2d}: {program.describe_site(addr)}" for addr, bit in ordered]


class BoltRewriter:
    """Builds instrumentation plans against a target program."""

    def __init__(self, program: Program) -> None:
        if program.pie:
            raise RewriteError(
                f"{program.name}: position-independent executables are not "
                "supported by the HALO BOLT pass (build with -no-pie)"
            )
        self.program = program

    def can_instrument(self, addr: int) -> bool:
        """Whether the call site at *addr* may legally be rewritten."""
        site = self.program.sites.get(addr)
        if site is None:
            return False
        return self.program.functions[site.caller].in_main_binary

    def instrument(self, sites: Iterable[int]) -> InstrumentationPlan:
        """Assign bits to *sites*, validating legality.

        Bits are assigned in ascending site-address order so plans are
        deterministic for a given site set.
        """
        unique = sorted(set(sites))
        plan: dict[int, int] = {}
        for bit, addr in enumerate(unique):
            site = self.program.sites.get(addr)
            if site is None:
                raise RewriteError(
                    f"{self.program.name}: no call site at {addr:#x} to instrument"
                )
            if not self.program.functions[site.caller].in_main_binary:
                raise RewriteError(
                    f"{self.program.name}: cannot rewrite {site.describe()} — "
                    "caller is not statically linked into the main binary"
                )
            plan[addr] = bit
        return InstrumentationPlan(plan)
