"""Name-based co-allocation pipeline (Calder et al. replication).

The scheme profiles a *temporal relationship graph* over allocation names
(the XOR of the last four return addresses), clusters it, and enforces the
placement with a specialised allocator that re-derives the name on every
allocation by walking the dynamic call stack.

To keep the comparison apples-to-apples with HALO and the hot-data-streams
replication, the temporal graph is built by the same affinity recorder
(same window, same four constraints) and the clusters are formed by the
same Figure-6 grouping — only the *identification* differs: fixed-depth
stack names instead of full reduced contexts and selectors.  That isolates
exactly the variable the HALO paper criticises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..allocators.base import AddressSpace, PAGE_SIZE
from ..allocators.group import GroupAllocator
from ..allocators.size_class import SizeClassAllocator
from ..core.grouping import Group, GroupingParams, assign_groups, group_contexts
from ..machine.events import Listener
from ..machine.heap import HeapObject
from ..machine.machine import GroupStateVector, Machine
from ..machine.program import Program
from ..profiling.affinity import AffinityParams, AffinityRecorder
from .naming import NAME_DEPTH, NameTable, name_of


@dataclass(frozen=True)
class CalderParams:
    """Knobs of the replication."""

    affinity: AffinityParams = field(default_factory=AffinityParams)
    grouping: GroupingParams = field(default_factory=GroupingParams)
    name_depth: int = NAME_DEPTH
    chunk_size: int = 1 << 20
    slab_size: int = 16 << 20
    max_spare_chunks: int = 1
    max_grouped_size: int = PAGE_SIZE


class CalderProfiler(Listener):
    """Profiling listener keyed on fixed-depth allocation names."""

    def __init__(self, program: Program, params: CalderParams | None = None) -> None:
        self.program = program
        self.params = params or CalderParams()
        self.names = NameTable()
        self.recorder = AffinityRecorder(self.params.affinity)

    def on_alloc(self, machine: Machine, obj: HeapObject) -> None:
        """Attribute the allocation to its XOR name."""
        nid = self.names.intern(name_of(machine.stack, self.params.name_depth))
        self.recorder.on_alloc(obj.oid, nid, obj.size, obj.alloc_seq)

    def on_access(
        self, machine: Machine, obj: HeapObject, offset: int, size: int, is_store: bool
    ) -> None:
        """Feed the access through the temporal-relationship recorder."""
        self.recorder.record_access(obj.oid, size)


@dataclass
class CalderArtifacts:
    """Offline results: the name graph, its groups, and the name mapping."""

    program: Program
    names: NameTable
    groups: list[Group]
    group_of_name: dict[int, int]
    params: CalderParams

    @property
    def distinct_names(self) -> int:
        """Allocation names observed during profiling."""
        return len(self.names)


class NameMatcher:
    """Runtime identification: re-derive the name by walking the stack.

    This is the expensive part the HALO paper contrasts with its bit-vector
    selectors ("much of the existing work in this area relies on the
    dynamic call stack for this purpose").
    """

    def __init__(self, group_of_name: dict[int, int], name_depth: int) -> None:
        self._group_of_name = dict(group_of_name)
        self._depth = name_depth
        self.machine: Optional[Machine] = None

    def attach(self, machine: Machine) -> None:
        """Bind the matcher to the machine whose stack it will walk."""
        self.machine = machine

    def match(self, state: int) -> Optional[int]:
        """Group of the current stack's XOR name (state vector unused)."""
        machine = self.machine
        if machine is None:
            return None
        return self._group_of_name.get(name_of(machine.stack, self._depth))


@dataclass
class CalderRuntime:
    """Online half: the shared group allocator + the stack-walking matcher."""

    allocator: GroupAllocator
    matcher: NameMatcher
    state_vector: GroupStateVector

    def attach(self, machine: Machine) -> None:
        """Wire the matcher to the measurement machine."""
        self.matcher.attach(machine)


def profile_workload(
    workload, params: CalderParams | None = None, scale: str = "test", seed: int = 0
) -> CalderArtifacts:
    """Profile *workload* under name-based attribution and cluster the graph."""
    params = params or CalderParams()
    program = workload.program
    space = AddressSpace(seed)
    profiler = CalderProfiler(program, params)
    machine = Machine(program, SizeClassAllocator(space), listeners=[profiler])
    workload.run(machine, scale)

    graph = profiler.recorder.filtered_graph()
    groups = group_contexts(graph, params.grouping)
    assignment = assign_groups(groups)
    group_of_name = {
        profiler.names.name(nid): gid for nid, gid in assignment.items()
    }
    return CalderArtifacts(
        program=program,
        names=profiler.names,
        groups=groups,
        group_of_name=group_of_name,
        params=params,
    )


def make_runtime(artifacts: CalderArtifacts, space: AddressSpace) -> CalderRuntime:
    """Instantiate the specialised allocator for a Calder measurement run."""
    params = artifacts.params
    state_vector = GroupStateVector()
    matcher = NameMatcher(artifacts.group_of_name, params.name_depth)
    fallback = SizeClassAllocator(space)
    allocator = GroupAllocator(
        space,
        fallback,
        matcher,
        state_vector,
        chunk_size=params.chunk_size,
        slab_size=params.slab_size,
        max_spare_chunks=params.max_spare_chunks,
        max_grouped_size=params.max_grouped_size,
    )
    return CalderRuntime(allocator=allocator, matcher=matcher, state_vector=state_vector)
