"""Allocation naming à la Calder et al. (ASPLOS 1998).

Section 2.2.3 of the HALO paper: their cache-conscious data placement
scheme "identifies heap allocations by XORing the last four return
addresses on the stack at any given allocation site to derive a unique
'name' around which heap objects are analysed".

The name is cheap to compute but sees only a fixed-depth suffix of the
stack — precisely the limitation HALO's full-context identification
removes.  Programs whose allocation paths differ only above the window
(xalanc's deep allocator plumbing) collapse onto one name.
"""

from __future__ import annotations

from typing import Sequence

from ..machine.program import CallSite

#: The paper's window: "the last four return addresses".
NAME_DEPTH = 4


def name_of(stack: Sequence[CallSite], depth: int = NAME_DEPTH) -> int:
    """XOR the innermost *depth* call-site addresses into an allocation name.

    Uses the raw dynamic stack (no shadow-stack filtering or origin
    tracing): the scheme predates those refinements.
    """
    name = 0
    for site in stack[-depth:]:
        name ^= site.addr
    return name


class NameTable:
    """Interns allocation names to dense ids (the graph's node space)."""

    def __init__(self) -> None:
        self._ids: dict[int, int] = {}
        self._names: list[int] = []

    def intern(self, name: int) -> int:
        """Return the dense id for *name*, assigning one if new."""
        nid = self._ids.get(name)
        if nid is None:
            nid = len(self._names)
            self._ids[name] = nid
            self._names.append(name)
        return nid

    def name(self, nid: int) -> int:
        """The raw XOR name behind dense id *nid*."""
        return self._names[nid]

    def lookup(self, name: int) -> int | None:
        """Dense id of *name* if seen during profiling."""
        return self._ids.get(name)

    def __len__(self) -> int:
        return len(self._names)
