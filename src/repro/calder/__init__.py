"""Calder et al. (ASPLOS 1998) name-based placement — §2.2.3 replication."""

from .naming import NAME_DEPTH, NameTable, name_of
from .pipeline import (
    CalderArtifacts,
    CalderParams,
    CalderProfiler,
    CalderRuntime,
    NameMatcher,
    make_runtime,
    profile_workload,
)

__all__ = [
    "CalderArtifacts",
    "CalderParams",
    "CalderProfiler",
    "CalderRuntime",
    "NAME_DEPTH",
    "NameMatcher",
    "NameTable",
    "make_runtime",
    "name_of",
    "profile_workload",
]
