"""The non-degradation claim: HALO on a placement-insensitive program."""

import pytest

from repro.core import HaloParams, optimise_profile, profile_workload
from repro.harness.runner import (
    measure_baseline,
    measure_halo,
    measure_random_pools,
)
from repro.workloads import get_workload, workload_names


def test_control_registered_after_paper_benchmarks():
    names = workload_names()
    assert names[:11] == [
        "health", "ft", "analyzer", "ammp", "art", "equake",
        "povray", "omnetpp", "xalanc", "leela", "roms",
    ]
    assert "deepsjeng" in names[11:]


class TestNoEffectNoDegradation:
    @pytest.fixture(scope="class")
    def runs(self):
        workload = get_workload("deepsjeng")
        profile = profile_workload(
            workload, HaloParams(), scale="test", record_trace=True
        )
        halo = optimise_profile(profile, HaloParams())
        base = measure_baseline(workload, scale="test", seed=1)
        halo_m = measure_halo(workload, halo, scale="test", seed=1)
        rand_m = measure_random_pools(workload, scale="test", seed=1)
        return profile, base, halo_m, rand_m

    def test_halo_has_essentially_no_effect(self, runs):
        _, base, halo_m, _ = runs
        speedup = base.cycles / halo_m.cycles - 1.0
        assert abs(speedup) < 0.02

    def test_halo_does_not_degrade(self, runs):
        _, base, halo_m, _ = runs
        assert halo_m.cycles <= base.cycles * 1.02

    def test_random_pools_unfazed(self, runs):
        """Figure 15's 'unfazed' set: placement of small objects is moot."""
        _, base, _, rand_m = runs
        speedup = base.cycles / rand_m.cycles - 1.0
        assert abs(speedup) < 0.035  # noise band at the small test scale

    def test_traffic_is_table_dominated(self, runs):
        profile, _, _, _ = runs
        # The big tables take essentially all accesses; groupable contexts
        # are a rounding error.
        small_accesses = sum(
            profile.graph.accesses_of(cid)
            for cid in profile.graph.nodes
            if profile.context_stats[cid].max_object_size < 4096
        )
        assert small_accesses < 0.05 * profile.total_accesses
