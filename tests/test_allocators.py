"""Unit tests for the address space and all allocator policies."""

import pytest

from repro.allocators import (
    AddressSpace,
    AllocationError,
    BumpAllocator,
    GroupAllocator,
    PAGE_SIZE,
    RandomPoolAllocator,
    SizeClassAllocator,
    align_up,
    build_size_classes,
)
from repro.allocators.size_class import MAX_SMALL
from repro.core.selectors import NeverMatch
from repro.machine import GroupStateVector


class TestAlignUp:
    def test_already_aligned(self):
        assert align_up(64, 64) == 64

    def test_rounds_up(self):
        assert align_up(65, 64) == 128

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            align_up(10, 12)


class TestAddressSpace:
    def test_reservations_do_not_overlap(self):
        space = AddressSpace(0)
        spans = []
        for size in (100, PAGE_SIZE, 3 * PAGE_SIZE + 1):
            base = space.reserve(size)
            spans.append((base, base + align_up(size, PAGE_SIZE)))
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end <= start

    def test_reserve_respects_alignment(self):
        space = AddressSpace(0)
        base = space.reserve(PAGE_SIZE, alignment=1 << 20)
        assert base % (1 << 20) == 0

    def test_seed_randomises_base(self):
        assert AddressSpace(1).reserve(64) != AddressSpace(2).reserve(64)

    def test_residency_tracks_touches(self):
        space = AddressSpace(0)
        base = space.reserve(4 * PAGE_SIZE)
        assert space.resident_bytes_in(base, 4 * PAGE_SIZE) == 0
        space.touch_range(base, 10)
        assert space.resident_bytes_in(base, 4 * PAGE_SIZE) == PAGE_SIZE
        space.touch_range(base + PAGE_SIZE - 1, 2)  # straddles two pages
        assert space.resident_bytes_in(base, 4 * PAGE_SIZE) == 2 * PAGE_SIZE

    def test_release_discards_pages(self):
        space = AddressSpace(0)
        base = space.reserve(PAGE_SIZE)
        space.touch_range(base, PAGE_SIZE)
        space.release(base)
        assert space.resident_bytes == 0

    def test_release_unknown_base_raises(self):
        with pytest.raises(AllocationError):
            AddressSpace(0).release(0x1234000)

    def test_purge_keeps_reservation(self):
        space = AddressSpace(0)
        base = space.reserve(PAGE_SIZE)
        space.touch_range(base, 8)
        space.purge(base, PAGE_SIZE)
        assert space.resident_bytes_in(base, PAGE_SIZE) == 0
        assert space.reserved_bytes == PAGE_SIZE


class TestSizeClasses:
    def test_ascending_and_bounded(self):
        classes = build_size_classes()
        assert classes == sorted(classes)
        assert classes[0] == 8
        assert classes[-1] <= MAX_SMALL

    def test_jemalloc_prefix(self):
        classes = build_size_classes()
        assert classes[:13] == [8, 16, 32, 48, 64, 80, 96, 112, 128, 160, 192, 224, 256]

    def test_lookup_matches_linear_scan(self):
        allocator = SizeClassAllocator(AddressSpace(0))
        classes = allocator.size_classes
        for size in list(range(1, 600)) + [4096, MAX_SMALL]:
            expected = next(c for c in classes if c >= size)
            assert allocator.size_class(size) == expected

    def test_large_sizes_have_no_class(self):
        allocator = SizeClassAllocator(AddressSpace(0))
        assert allocator.size_class(MAX_SMALL + 1) is None


class TestSizeClassAllocator:
    def test_same_class_objects_are_contiguous(self):
        allocator = SizeClassAllocator(AddressSpace(0))
        addrs = [allocator.malloc(30) for _ in range(8)]
        deltas = {b - a for a, b in zip(addrs, addrs[1:])}
        assert deltas == {32}

    def test_different_classes_use_different_runs(self):
        allocator = SizeClassAllocator(AddressSpace(0))
        a = allocator.malloc(30)
        b = allocator.malloc(200)
        assert abs(a - b) >= PAGE_SIZE

    def test_freed_slot_reused_lowest_first(self):
        allocator = SizeClassAllocator(AddressSpace(0))
        addrs = [allocator.malloc(32) for _ in range(10)]
        allocator.free(addrs[7])
        allocator.free(addrs[2])
        assert allocator.malloc(32) == addrs[2]
        assert allocator.malloc(32) == addrs[7]

    def test_large_allocation_is_page_aligned_and_released(self):
        space = AddressSpace(0)
        allocator = SizeClassAllocator(space)
        addr = allocator.malloc(1 << 20)
        assert addr % PAGE_SIZE == 0
        reserved = space.reserved_bytes
        allocator.free(addr)
        assert space.reserved_bytes == reserved - (1 << 20)

    def test_free_unknown_address_raises(self):
        with pytest.raises(AllocationError):
            SizeClassAllocator(AddressSpace(0)).free(0xABC)

    def test_size_of_reports_requested_size(self):
        allocator = SizeClassAllocator(AddressSpace(0))
        addr = allocator.malloc(33)
        assert allocator.size_of(addr) == 33

    def test_realloc_in_place_within_class(self):
        allocator = SizeClassAllocator(AddressSpace(0))
        addr = allocator.malloc(33)
        assert allocator.realloc(addr, 40) == addr

    def test_realloc_moves_across_classes(self):
        allocator = SizeClassAllocator(AddressSpace(0))
        addr = allocator.malloc(33)
        new = allocator.realloc(addr, 500)
        assert new != addr
        assert allocator.size_of(new) == 500
        with pytest.raises(AllocationError):
            allocator.size_of(addr)

    def test_stats_track_liveness(self):
        allocator = SizeClassAllocator(AddressSpace(0))
        a = allocator.malloc(100)
        allocator.malloc(50)
        allocator.free(a)
        assert allocator.stats.live_bytes == 50
        assert allocator.stats.live_blocks == 1
        assert allocator.stats.peak_live_bytes == 150

    def test_run_cycling_exhausts_and_extends(self):
        allocator = SizeClassAllocator(AddressSpace(0))
        # Fill more than one run of the 32-byte class.
        addrs = [allocator.malloc(32) for _ in range(1000)]
        assert len(set(addrs)) == 1000


class TestBumpAllocator:
    def test_sequential_addresses(self):
        bump = BumpAllocator(AddressSpace(0))
        a = bump.malloc(24)
        b = bump.malloc(24)
        assert b == a + 24

    def test_alignment_minimum_eight(self):
        bump = BumpAllocator(AddressSpace(0))
        a = bump.malloc(20)
        b = bump.malloc(20)
        assert b - a == 24
        assert b % 8 == 0

    def test_free_never_reuses(self):
        bump = BumpAllocator(AddressSpace(0))
        a = bump.malloc(64)
        bump.free(a)
        assert bump.malloc(64) != a

    def test_pool_rollover(self):
        bump = BumpAllocator(AddressSpace(0), pool_size=PAGE_SIZE)
        first = bump.malloc(PAGE_SIZE // 2)
        second = bump.malloc(PAGE_SIZE // 2 + 64)
        assert len(bump.pools) == 2
        assert second >= first + PAGE_SIZE // 2

    def test_oversized_request_rejected(self):
        bump = BumpAllocator(AddressSpace(0), pool_size=PAGE_SIZE)
        with pytest.raises(AllocationError):
            bump.malloc(2 * PAGE_SIZE)


class TestRandomPoolAllocator:
    def _make(self, seed=0):
        space = AddressSpace(0)
        fallback = SizeClassAllocator(space)
        return RandomPoolAllocator(space, fallback, pools=4, seed=seed), fallback

    def test_small_objects_land_in_pools(self):
        allocator, fallback = self._make()
        allocator.malloc(64)
        assert allocator.stats.total_allocs == 1
        assert fallback.stats.total_allocs == 0

    def test_large_objects_forwarded(self):
        allocator, fallback = self._make()
        allocator.malloc(PAGE_SIZE)
        assert fallback.stats.total_allocs == 1

    def test_free_routes_to_owner(self):
        allocator, fallback = self._make()
        small = allocator.malloc(64)
        large = allocator.malloc(PAGE_SIZE)
        assert allocator.free(small) == 64
        assert allocator.free(large) == PAGE_SIZE
        assert fallback.stats.live_bytes == 0

    def test_scatter_actually_uses_multiple_pools(self):
        allocator, _ = self._make(seed=3)
        addrs = [allocator.malloc(32) for _ in range(64)]
        gaps = [b - a for a, b in zip(addrs, addrs[1:])]
        assert any(abs(gap) > PAGE_SIZE for gap in gaps)


class TestGroupAllocatorBasics:
    def _make(self, matcher=None, **kwargs):
        space = AddressSpace(0)
        fallback = SizeClassAllocator(space)
        allocator = GroupAllocator(
            space, fallback, matcher or NeverMatch(), GroupStateVector(), **kwargs
        )
        return allocator, fallback

    def test_unmatched_requests_forwarded(self):
        allocator, fallback = self._make()
        allocator.malloc(64)
        assert allocator.forwarded_allocs == 1
        assert fallback.stats.total_allocs == 1

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(AllocationError):
            self._make(chunk_size=3000)

    def test_slab_smaller_than_chunk_rejected(self):
        with pytest.raises(AllocationError):
            self._make(chunk_size=1 << 20, slab_size=1 << 19)


class _AlwaysGroup:
    """Matcher assigning everything to one group (for allocator tests)."""

    def __init__(self, gid=0):
        self.gid = gid

    def match(self, state):
        return self.gid


class _AlternatingGroups:
    """Matcher cycling through group ids."""

    def __init__(self, count):
        self.count = count
        self.calls = 0

    def match(self, state):
        self.calls += 1
        return self.calls % self.count


class TestGroupAllocatorGrouping:
    def _make(self, matcher, **kwargs):
        space = AddressSpace(0)
        fallback = SizeClassAllocator(space)
        return (
            GroupAllocator(space, fallback, matcher, GroupStateVector(), **kwargs),
            fallback,
        )

    def test_grouped_allocations_are_contiguous(self):
        allocator, _ = self._make(_AlwaysGroup())
        a = allocator.malloc(40)
        b = allocator.malloc(24)
        c = allocator.malloc(16)
        assert b == a + 40
        assert c == b + 24

    def test_groups_use_separate_chunks(self):
        allocator, _ = self._make(_AlternatingGroups(2), chunk_size=1 << 16)
        a = allocator.malloc(32)  # group 1
        b = allocator.malloc(32)  # group 0
        c = allocator.malloc(32)  # group 1
        assert c == a + 32
        assert abs(b - a) >= 1 << 15  # different chunk

    def test_large_requests_bypass_groups(self):
        allocator, fallback = self._make(_AlwaysGroup())
        allocator.malloc(PAGE_SIZE)
        assert allocator.grouped_allocs == 0
        assert fallback.stats.total_allocs == 1

    def test_chunk_located_by_masking_on_free(self):
        allocator, _ = self._make(_AlwaysGroup())
        addr = allocator.malloc(64)
        assert allocator.free(addr) == 64
        assert allocator.grouped_live_bytes == 0

    def test_ungrouped_free_forwarded(self):
        allocator, fallback = self._make(NeverMatch())
        addr = allocator.malloc(64)
        allocator.free(addr)
        assert fallback.stats.live_bytes == 0

    def test_empty_chunk_reused(self):
        allocator, _ = self._make(_AlwaysGroup(), chunk_size=1 << 16)
        first = [allocator.malloc(1024) for _ in range(80)]  # > one chunk
        assert allocator.chunks_created >= 2
        for addr in first:
            allocator.free(addr)
        created = allocator.chunks_created
        for _ in range(80):
            allocator.malloc(1024)
        assert allocator.chunks_reused > 0
        assert allocator.chunks_created <= created + 1

    def test_current_chunk_not_retired_while_current(self):
        allocator, _ = self._make(_AlwaysGroup())
        addr = allocator.malloc(64)
        allocator.free(addr)
        # The (now empty) current chunk stays current; the next allocation
        # bump-allocates from it again.
        again = allocator.malloc(64)
        assert again >= addr  # same chunk, cursor moved on

    def test_chunk_alignment(self):
        allocator, _ = self._make(_AlwaysGroup(), chunk_size=1 << 18)
        addr = allocator.malloc(64)
        chunk_base = addr & ~((1 << 18) - 1)
        assert addr - chunk_base >= 64  # header space reserved

    def test_min_alignment_is_eight(self):
        allocator, _ = self._make(_AlwaysGroup())
        for size in (1, 7, 13, 63):
            assert allocator.malloc(size) % 8 == 0

    def test_realloc_grouped(self):
        allocator, _ = self._make(_AlwaysGroup())
        addr = allocator.malloc(64)
        assert allocator.realloc(addr, 32) == addr
        new = allocator.realloc(addr, 256)
        assert new != addr
        assert allocator.size_of(new) == 256

    def test_fragmentation_snapshot(self):
        allocator, _ = self._make(_AlwaysGroup())
        space = allocator.space
        addrs = [allocator.malloc(512) for _ in range(16)]
        for addr in addrs:
            space.touch_range(addr, 512)
        frag = allocator.fragmentation()
        assert frag.live_bytes == 16 * 512
        assert frag.resident_bytes >= frag.live_bytes
        for addr in addrs[:8]:
            allocator.free(addr)
        frag = allocator.fragmentation()
        assert frag.live_bytes == 8 * 512
        assert frag.wasted_bytes > 0
        assert 0.0 < frag.fraction < 1.0


class TestGroupAllocatorDegradation:
    """Pool exhaustion degrades to the fallback — never an allocation failure."""

    def _make(self, matcher=None, **kwargs):
        space = AddressSpace(0)
        fallback = SizeClassAllocator(space)
        allocator = GroupAllocator(
            space, fallback, matcher or _AlwaysGroup(), GroupStateVector(), **kwargs
        )
        return allocator, fallback

    def test_exact_chunk_capacity_boundary(self):
        # chunk_size 4096 minus the 64-byte header leaves exactly 4032
        # usable bytes; a request of that size fills the chunk to the brim.
        allocator, _ = self._make(chunk_size=4096, slab_size=1 << 16)
        addr = allocator.malloc(4032)
        assert allocator.chunks_created == 1
        assert allocator.degraded_allocs == 0
        # The chunk is exactly full: the next grouped request needs a new one.
        allocator.malloc(8)
        assert allocator.chunks_created == 2
        assert allocator.free(addr) == 4032

    def test_oversized_for_empty_chunk_degrades(self):
        # Under the grouping threshold but over what any chunk can hold
        # (header overhead): must be served by the fallback, not fail.
        allocator, fallback = self._make(chunk_size=4096, slab_size=1 << 16)
        addr = allocator.malloc(4040)  # < PAGE_SIZE, > 4096 - 64
        assert allocator.degraded_allocs == 1
        assert fallback.stats.total_allocs == 1
        assert allocator.size_of(addr) == fallback.size_of(addr)

    def test_chunk_budget_exhaustion_serves_all_requests(self):
        allocator, fallback = self._make(
            chunk_size=4096, slab_size=1 << 16, max_total_chunks=1
        )
        addrs = [allocator.malloc(1024) for _ in range(64)]  # >> one chunk
        assert len(set(addrs)) == len(addrs)
        assert allocator.chunks_created == 1
        assert allocator.degraded_allocs > 0
        assert allocator.grouped_allocs + allocator.degraded_allocs == 64
        assert fallback.stats.total_allocs == allocator.degraded_allocs
        # Every address remains freeable regardless of which side owns it.
        for addr in addrs:
            allocator.free(addr)
        assert allocator.grouped_live_bytes == 0
        assert fallback.stats.live_bytes == 0

    def test_fallback_owned_address_free_realloc_size_of(self):
        allocator, fallback = self._make(
            chunk_size=4096, slab_size=1 << 16, max_total_chunks=0
        )
        addr = allocator.malloc(256)  # degraded straight to the fallback
        assert allocator.degraded_allocs == 1
        assert allocator.size_of(addr) == fallback.size_of(addr)
        new = allocator.realloc(addr, 512)
        assert allocator.size_of(new) >= 512
        assert allocator.free(new) > 0
        assert fallback.stats.live_bytes == 0

    def test_spares_reused_before_budget_applies(self):
        # An exhausted budget still recycles retired chunks, so grouping
        # continues at steady state instead of degrading forever.
        allocator, _ = self._make(
            chunk_size=4096, slab_size=1 << 16, max_total_chunks=2,
        )
        first = [allocator.malloc(1024) for _ in range(3)]  # fills chunk 1
        allocator.malloc(1024)  # spills into chunk 2, which becomes current
        assert allocator.chunks_created == 2
        for addr in first:
            allocator.free(addr)  # chunk 1 empties and is retired as a spare
        # A fresh group needs a chunk; the budget is spent, so it must come
        # from the spare list rather than degrading.
        allocator.matcher = _AlwaysGroup(gid=7)
        allocator.malloc(512)
        assert allocator.chunks_reused == 1
        assert allocator.chunks_created == 2
        assert allocator.degraded_allocs == 0

    def test_fault_plan_caps_chunks(self):
        from repro.faults import FaultPlan, fault_plan_active

        allocator, fallback = self._make(chunk_size=4096, slab_size=1 << 16)
        with fault_plan_active(FaultPlan(group_max_chunks=1)):
            addrs = [allocator.malloc(1024) for _ in range(16)]
        assert allocator.chunks_created == 1
        assert allocator.degraded_allocs > 0
        assert len(addrs) == 16
        # Outside the plan the budget lifts again.
        allocator.malloc(1024)
        assert allocator.chunks_created == 2

    def test_fault_plan_flips_selector_state(self):
        from repro.faults import FaultPlan, fault_plan_active

        class _MatchBitZero:
            def match(self, state):
                return 0 if state & 1 else None

        allocator, _ = self._make(matcher=_MatchBitZero())
        with fault_plan_active(FaultPlan(state_flip_rate=1.0, state_flip_bits=1)):
            for _ in range(8):
                allocator.malloc(64)
        # Every consult saw bit 0 flipped (window is one bit wide), so the
        # never-matching state 0 misclassified into group 0 each time.
        assert allocator.faulted_matches == 8
        assert allocator.grouped_allocs == 8
