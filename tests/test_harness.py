"""Tests for the measurement harness and trial methodology."""

import pytest

from repro.cache import CostModel
from repro.core import HaloParams, optimise_profile, profile_workload
from repro.harness import (
    TrialStats,
    measure_baseline,
    measure_halo,
    measure_random_pools,
    miss_reduction,
    run_trials,
    speedup,
)
from repro.harness.reproduce import halo_params_for, hds_params_for
from repro.hds import HdsParams, analyse_profile
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def health_setup():
    workload = get_workload("health")
    profile = profile_workload(workload, HaloParams(), scale="test", record_trace=True)
    halo = optimise_profile(profile, HaloParams())
    hds = analyse_profile(profile, HdsParams())
    return workload, halo, hds


class TestMeasurements:
    def test_baseline_measurement_fields(self, health_setup):
        workload, _, _ = health_setup
        m = measure_baseline(workload, scale="test", seed=1)
        assert m.workload == "health"
        assert m.config == "baseline"
        assert m.cycles > 0
        assert m.accesses > 0
        assert m.cache.l1_misses > 0
        assert m.peak_live_bytes > 0
        assert m.grouped_allocs == 0

    def test_halo_measurement_groups_allocations(self, health_setup):
        workload, halo, _ = health_setup
        m = measure_halo(workload, halo, scale="test", seed=1)
        assert m.grouped_allocs > 0
        assert m.instrumentation_toggles > 0
        assert m.frag_at_peak is not None

    def test_same_seed_reproducible(self, health_setup):
        workload, _, _ = health_setup
        a = measure_baseline(workload, scale="test", seed=2)
        b = measure_baseline(workload, scale="test", seed=2)
        assert a.cycles == b.cycles
        assert a.cache == b.cache

    def test_different_seed_changes_placement_only(self, health_setup):
        workload, _, _ = health_setup
        a = measure_baseline(workload, scale="test", seed=1)
        b = measure_baseline(workload, scale="test", seed=2)
        assert a.accesses == b.accesses  # same program behaviour
        assert a.cycles != b.cycles  # different placement noise

    def test_random_pools_measurement(self, health_setup):
        workload, _, _ = health_setup
        m = measure_random_pools(workload, scale="test", seed=1)
        assert m.config == "random-pools"
        assert m.cycles > 0

    def test_custom_cost_model(self, health_setup):
        workload, _, _ = health_setup
        cheap = measure_baseline(
            workload, scale="test", seed=1, cost_model=CostModel(memory=50.0)
        )
        dear = measure_baseline(
            workload, scale="test", seed=1, cost_model=CostModel(memory=500.0)
        )
        assert dear.cycles > cheap.cycles


class TestTrials:
    def test_trial_stats_quartiles(self):
        stats = TrialStats.of([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.median == 3.0
        assert stats.q25 <= stats.median <= stats.q75

    def test_trial_stats_empty_rejected(self):
        with pytest.raises(ValueError):
            TrialStats.of([])

    def test_run_trials_discards_first(self, health_setup):
        workload, _, _ = health_setup
        seen = []

        def measure(seed):
            seen.append(seed)
            return measure_baseline(workload, scale="test", seed=seed)

        result = run_trials(measure, trials=2)
        assert seen == [0, 1, 2]
        assert len(result.measurements) == 2

    def test_run_trials_invalid_count(self):
        with pytest.raises(ValueError):
            run_trials(lambda seed: None, trials=0)

    def test_representative_is_median_like(self, health_setup):
        workload, _, _ = health_setup
        result = run_trials(
            lambda seed: measure_baseline(workload, scale="test", seed=seed), trials=3
        )
        cycles = sorted(m.cycles for m in result.measurements)
        assert result.representative.cycles == cycles[1]

    def test_reduction_and_speedup_orientation(self, health_setup):
        workload, halo, _ = health_setup
        base = run_trials(
            lambda seed: measure_baseline(workload, scale="test", seed=seed), trials=2
        )
        opt = run_trials(
            lambda seed: measure_halo(workload, halo, scale="test", seed=seed), trials=2
        )
        assert miss_reduction(base, opt) > 0
        assert speedup(base, opt) > 0


class TestParamHelpers:
    def test_quirks_honoured(self):
        omnetpp = get_workload("omnetpp")
        params = halo_params_for(omnetpp)
        assert params.chunk_size == 131072
        assert params.max_spare_chunks == 0
        assert params.always_reuse_chunks

    def test_roms_max_groups(self):
        roms = get_workload("roms")
        assert halo_params_for(roms).max_groups == 4
        assert hds_params_for(roms).max_groups == 4

    def test_overrides_compose(self):
        omnetpp = get_workload("omnetpp")
        params = halo_params_for(omnetpp, chunk_size=1 << 20)
        assert params.chunk_size == 1 << 20
        assert params.max_spare_chunks == 0

    def test_affinity_distance_override(self):
        health = get_workload("health")
        params = halo_params_for(health).with_affinity_distance(64)
        assert params.affinity.distance == 64
