"""Tests for the differential fuzz harness and its CLI entry point."""

import pytest

from repro.cli import main
from repro.sanitize import (
    FAMILIES,
    FuzzConfig,
    default_scenarios,
    format_ops,
    generate_ops,
    run_fuzz,
    run_ops,
    shrink_ops,
)

FAST = {"ops": 1500, "check_interval": 128}


class TestGenerateOps:
    def test_deterministic(self):
        config = FuzzConfig(family="group", seed=3, ops=500)
        assert generate_ops(config) == generate_ops(config)

    def test_seed_changes_sequence(self):
        a = generate_ops(FuzzConfig(family="group", seed=0, ops=500))
        b = generate_ops(FuzzConfig(family="group", seed=1, ops=500))
        assert a != b

    def test_bump_family_never_reallocs(self):
        for family in ("bump", "random-pools"):
            ops = generate_ops(FuzzConfig(family=family, seed=0, ops=2000))
            assert not any(op[0] == "realloc" for op in ops)

    def test_group_family_reallocs(self):
        ops = generate_ops(FuzzConfig(family="group", seed=0, ops=2000))
        assert any(op[0] == "realloc" for op in ops)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            FuzzConfig(family="buddy")


class TestRunOps:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_families_run_clean(self, family):
        config = FuzzConfig(family=family, seed=0, **FAST)
        assert run_ops(generate_ops(config), config) == []

    def test_group_variants_run_clean(self):
        for variant in (
            FuzzConfig(family="group", colour_stride=128, **FAST),
            FuzzConfig(family="group", always_reuse_chunks=True, **FAST),
            FuzzConfig(family="sharded", chunk_budget=6, **FAST),
        ):
            assert run_ops(generate_ops(variant), variant) == []

    def test_corruptor_is_detected(self):
        config = FuzzConfig(family="group", seed=0, **FAST)

        def drift(allocator):
            # No-op on an empty heap so the minimal reproducer must keep
            # one allocation alive.
            for addr in allocator._region_sizes:
                allocator._region_sizes[addr] += 32
                break

        ops = generate_ops(config)
        ops.insert(200, ("corrupt", "drift"))
        findings = run_ops(ops, config, corruptors={"drift": drift})
        assert findings
        assert any(f.rule.startswith("group.") for f in findings)


class TestShrinking:
    def _corruptors(self):
        def drift(allocator):
            # No-op on an empty heap so the minimal reproducer must keep
            # one allocation alive.
            for addr in allocator._region_sizes:
                allocator._region_sizes[addr] += 32
                break

        return {"drift": drift}

    def test_shrinks_to_minimal_reproducer(self):
        config = FuzzConfig(family="group", seed=0, **FAST)
        ops = generate_ops(config)
        ops.insert(300, ("corrupt", "drift"))
        minimal = shrink_ops(ops, config, self._corruptors())
        # One allocation plus the corruption is the smallest failing case.
        assert len(minimal) == 2
        assert minimal[0][0] == "malloc"
        assert minimal[1] == ("corrupt", "drift")
        assert run_ops(minimal, config, self._corruptors())

    def test_run_fuzz_reports_reproducer(self):
        config = FuzzConfig(family="group", seed=0, ops=400, check_interval=64)
        report = run_fuzz(
            config,
            corruptors=self._corruptors(),
            extra_ops=[("malloc", 64, 0), ("corrupt", "drift")],
        )
        assert not report.ok
        assert report.reproducer is not None
        assert len(report.reproducer) == 2
        assert "group." in report.findings[0].rule

    def test_run_fuzz_clean_has_no_reproducer(self):
        config = FuzzConfig(family="size-class", seed=0, ops=600)
        report = run_fuzz(config)
        assert report.ok
        assert report.reproducer is None
        assert report.executed == 600

    def test_format_ops(self):
        text = format_ops([("malloc", 64, 0), ("free", 1)])
        assert "('malloc', 64, 0)" in text
        assert text.count("\n") == 1


class TestScenarioMatrix:
    def test_all_families_covered(self):
        scenarios = default_scenarios(seed=0, ops=100)
        assert {s.family for s in scenarios} == set(FAMILIES)
        # group + sharded each add colouring, always-reuse, and fault-budget
        # variants on top of the plain run; the free-list families and the
        # arenas built on them each add a coalescing-stress (small pool) run.
        assert len(scenarios) == len(FAMILIES) + 6 + 3

    def test_single_family_selection(self):
        scenarios = default_scenarios(seed=0, ops=100, family="bump")
        assert [s.family for s in scenarios] == ["bump"]


class TestCli:
    def test_fuzz_command_clean(self, capsys):
        code = main(
            ["sanitize", "fuzz", "--seed", "0", "--ops", "400", "--family", "size-class"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "all scenarios clean" in captured.out

    def test_fuzz_command_covers_matrix(self, capsys):
        code = main(["sanitize", "fuzz", "--seed", "1", "--ops", "200"])
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.count("ok") >= len(FAMILIES)
