"""Parallel evaluation engine: serial equivalence and trial aggregation.

The engine's contract is that fanning the evaluation matrix over worker
processes changes wall-clock time and nothing else — identical seeds,
identical measurements, identical aggregates.  These tests pin that
contract on the cheapest workload (deepsjeng at test scale).
"""

import pytest

from repro.core.artifact_cache import ArtifactCache
from repro.harness.experiment import (
    TrialStats,
    aggregate_trials,
    nearest_rank,
    run_trials,
    trial_seeds,
)
from repro.harness.parallel import evaluate_all_parallel, run_trials_parallel
from repro.harness.prepare import PhaseTimes
from repro.harness.reproduce import evaluate_workload
from repro.harness.runner import measure_baseline
from repro.workloads.base import get_workload

BENCH = "deepsjeng"


class TestNearestRank:
    def test_median_of_odd(self):
        assert nearest_rank([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_quartiles_are_symmetric(self):
        # Historically q25 truncated its rank while q75 rounded, so a
        # reversed distribution produced asymmetric quartiles.  Both ends
        # must use the same rounding now.
        values = [1.0, 2.0, 3.0, 4.0]
        stats = TrialStats.of(values)
        mirrored = TrialStats.of([5.0 - v for v in values])
        assert stats.q25 == 5.0 - mirrored.q75
        assert stats.q75 == 5.0 - mirrored.q25

    def test_bounds_clamped(self):
        assert nearest_rank([1.0, 2.0], 0.0) == 1.0
        assert nearest_rank([1.0, 2.0], 1.0) == 2.0
        assert nearest_rank([7.0], 0.25) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            nearest_rank([], 0.5)

    def test_unsorted_input_matters_not_for_trialstats(self):
        assert TrialStats.of([3.0, 1.0, 2.0]) == TrialStats.of([1.0, 2.0, 3.0])


class TestTrialSeeds:
    def test_discard_first_adds_warmup_seed(self):
        assert list(trial_seeds(3)) == [0, 1, 2, 3]
        assert list(trial_seeds(3, discard_first=False)) == [0, 1, 2]

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError):
            trial_seeds(0)

    def test_aggregate_drops_first(self):
        workload = get_workload(BENCH)
        measurements = [
            measure_baseline(workload, scale="test", seed=seed) for seed in trial_seeds(2)
        ]
        result = aggregate_trials(measurements)
        assert len(result.measurements) == 2
        assert result.measurements[0] is measurements[1]

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_trials([])


class TestSerialParallelEquivalence:
    def test_baseline_trials_identical(self):
        workload = get_workload(BENCH)
        serial = run_trials(
            lambda seed: measure_baseline(workload, scale="test", seed=seed), trials=2
        )
        parallel = run_trials_parallel(BENCH, "baseline", trials=2, scale="test", jobs=2)
        assert serial.cycles == parallel.cycles
        assert serial.l1_misses == parallel.l1_misses
        assert [m.cycles for m in serial.measurements] == [
            m.cycles for m in parallel.measurements
        ]
        assert [m.cache.l1_misses for m in serial.measurements] == [
            m.cache.l1_misses for m in parallel.measurements
        ]

    def test_full_evaluation_identical(self, tmp_path):
        # The whole engine: prepare wave (profile + analyse through the
        # shared cache) then one task per (config, seed).
        cache = ArtifactCache(tmp_path / "cache")
        times = PhaseTimes()
        serial = evaluate_workload(BENCH, trials=2, scale="test", include_random=True)
        parallel = evaluate_all_parallel(
            [BENCH], trials=2, scale="test", include_random=True,
            jobs=2, cache=cache, phase_times=times,
        )[BENCH]
        for config in ("baseline", "halo", "hds", "random_pools"):
            s, p = getattr(serial, config), getattr(parallel, config)
            assert s.cycles == p.cycles, config
            assert s.l1_misses == p.l1_misses, config
        assert serial.halo_groups == parallel.halo_groups
        assert serial.hds_groups == parallel.hds_groups
        assert serial.hds_streams == parallel.hds_streams
        assert serial.graph_nodes == parallel.graph_nodes
        # The phase report saw real work and exactly two cache misses
        # (the single benchmark's event trace plus its prepared artifacts,
        # each produced once despite two workers).
        assert times.measure > 0.0
        assert times.profile > 0.0
        assert times.cache_misses == 2
        assert times.trace_records == 1
        assert times.trace_replays == 1

    def test_warm_cache_skips_profiling(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        run_trials_parallel(
            BENCH, "halo", trials=1, scale="test", jobs=2, cache=cache
        )
        warm = PhaseTimes()
        rerun = run_trials_parallel(
            BENCH, "halo", trials=1, scale="test", jobs=2, cache=cache,
            phase_times=warm,
        )
        cold = run_trials_parallel(BENCH, "halo", trials=1, scale="test", jobs=2)
        assert warm.profile == 0.0
        assert warm.cache_hits >= 1
        assert warm.cache_misses == 0
        # And the cached artifacts still reproduce the uncached measurement.
        assert rerun.cycles == cold.cycles
        assert rerun.l1_misses == cold.l1_misses

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            evaluate_all_parallel([BENCH], trials=1, scale="test", jobs=0)


class TestResilience:
    """The engine fails per cell, not per matrix — and recovers workers."""

    def test_killed_worker_cell_retried_to_identical_result(self):
        from repro.faults import FaultPlan
        from repro.harness.parallel import run_trials_parallel

        clean = run_trials_parallel(BENCH, "baseline", trials=2, scale="test", jobs=2)
        times = PhaseTimes()
        failures = []
        plan = FaultPlan(
            kill_tasks=(f"measure:{BENCH}:baseline:test:1",), max_kill_attempts=1
        )
        survived = run_trials_parallel(
            BENCH, "baseline", trials=2, scale="test", jobs=2,
            fault_plan=plan, phase_times=times, failures=failures,
        )
        assert failures == []
        assert times.task_retries >= 1
        assert survived.cycles == clean.cycles
        assert survived.l1_misses == clean.l1_misses

    def test_permanent_failure_becomes_failed_measurement(self):
        from repro.faults import FaultPlan
        from repro.harness.parallel import FailedMeasurement, run_trials_parallel

        failures = []
        plan = FaultPlan(
            kill_tasks=(f"measure:{BENCH}:baseline:test:2",), max_kill_attempts=99
        )
        result = run_trials_parallel(
            BENCH, "baseline", trials=2, scale="test", jobs=2,
            fault_plan=plan, max_retries=1, failures=failures,
        )
        assert len(failures) == 1
        failure = failures[0]
        assert isinstance(failure, FailedMeasurement)
        assert (failure.workload, failure.config, failure.seed) == (BENCH, "baseline", 2)
        assert failure.attempts == 2
        # The surviving seeds still aggregate (seed 0 discarded, seed 1 kept).
        assert len(result.measurements) == 1
        assert result.measurements[0].seed == 1

    def test_all_cells_failing_raises(self):
        from repro.faults import FaultPlan
        from repro.harness.parallel import run_trials_parallel

        plan = FaultPlan(worker_kill_rate=1.0)
        with pytest.raises(RuntimeError, match="every trial"):
            run_trials_parallel(
                BENCH, "baseline", trials=1, scale="test", jobs=2,
                fault_plan=plan, max_retries=0,
            )

    def test_stalled_worker_times_out_and_retries(self):
        from repro.faults import FaultPlan
        from repro.harness.parallel import run_trials_parallel

        clean = run_trials_parallel(BENCH, "baseline", trials=1, scale="test", jobs=2)
        times = PhaseTimes()
        failures = []
        plan = FaultPlan(
            stall_tasks=(f"measure:{BENCH}:baseline:test:1",),
            worker_stall_seconds=60.0,
            max_kill_attempts=1,  # the retry does not stall
        )
        survived = run_trials_parallel(
            BENCH, "baseline", trials=1, scale="test", jobs=2,
            fault_plan=plan, task_timeout=8.0, phase_times=times, failures=failures,
        )
        assert failures == []
        assert times.task_retries >= 1
        assert survived.cycles == clean.cycles

    def test_keyboard_interrupt_aborts_quickly(self):
        import os
        import signal
        import threading
        import time as time_mod

        from repro.faults import FaultPlan
        from repro.harness.parallel import run_trials_parallel

        plan = FaultPlan(worker_stall_rate=1.0, worker_stall_seconds=60.0)
        timer = threading.Timer(1.0, os.kill, (os.getpid(), signal.SIGINT))
        timer.start()
        started = time_mod.monotonic()
        try:
            with pytest.raises(KeyboardInterrupt):
                run_trials_parallel(
                    BENCH, "baseline", trials=2, scale="test", jobs=2, fault_plan=plan
                )
        finally:
            timer.cancel()
        # Without cancellation the coordinator would sit on 60s stalls.
        assert time_mod.monotonic() - started < 20.0

    def test_evaluate_all_reports_prepare_failure_and_keeps_rest(self, tmp_path):
        from repro.faults import FaultPlan
        from repro.harness.parallel import evaluate_all_parallel

        failures = []
        plan = FaultPlan(kill_tasks=(f"prepare:{BENCH}",), max_kill_attempts=99)
        evaluations = evaluate_all_parallel(
            [BENCH], trials=1, scale="test", include_random=False, jobs=2,
            cache=ArtifactCache(tmp_path / "cache"),
            fault_plan=plan, max_retries=1, failures=failures,
        )
        assert evaluations == {}
        assert any(f.kind == "prepare" and f.workload == BENCH for f in failures)


class TestResumeMetrics:
    def test_resumed_run_does_not_double_count_journal_cells(self, tmp_path):
        """Obs counters after ``--resume`` reflect only fresh work.

        Completed cells loaded from the checkpoint journal land in the
        result dict, but must not fold into the metrics registry again —
        a resumed matrix that re-counted its journal would inflate
        ``harness.tasks`` (and every derived throughput number) versus
        the uninterrupted run it is supposed to be indistinguishable from.
        """
        from repro import obs
        from repro.harness.checkpoint import CheckpointJournal

        journal = CheckpointJournal(tmp_path / "ckpt.journal")
        with obs.collecting() as first_registry:
            first = evaluate_all_parallel(
                [BENCH], trials=1, scale="test", include_random=False, jobs=2,
                cache=ArtifactCache(tmp_path / "cache"), checkpoint=journal,
            )[BENCH]
        first_tasks = first_registry.snapshot().sum_counter("harness.tasks")
        completed = len(journal.load())
        assert first_tasks == completed > 0  # every cell ran exactly once

        with obs.collecting() as registry:
            resumed = evaluate_all_parallel(
                [BENCH], trials=1, scale="test", include_random=False, jobs=2,
                cache=ArtifactCache(tmp_path / "cache"), checkpoint=journal,
                resume=True,
            )[BENCH]
        snapshot = registry.snapshot()
        # Nothing was fresh, so no task (or retry) counters moved at all.
        assert snapshot.sum_counter("harness.tasks") == 0
        assert snapshot.sum_counter("harness.task_retries") == 0
        # And the journal did not grow: the resume re-ran nothing.
        assert len(journal.load()) == completed
        assert resumed.baseline.cycles == first.baseline.cycles
        assert resumed.halo.cycles == first.halo.cycles
