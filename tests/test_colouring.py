"""Tests for cache-index-aware group colouring (§4.4 extension)."""

import pytest

from repro.allocators import (
    AddressSpace,
    AllocationError,
    GroupAllocator,
    SizeClassAllocator,
)
from repro.cache import SetAssociativeCache
from repro.machine import GroupStateVector


class _FixedGroup:
    def __init__(self):
        self.gid = 0

    def match(self, state):
        return self.gid


def make(colour_stride=0, chunk_size=1 << 20):
    space = AddressSpace(0)
    matcher = _FixedGroup()
    allocator = GroupAllocator(
        space,
        SizeClassAllocator(space),
        matcher,
        GroupStateVector(),
        chunk_size=chunk_size,
        colour_stride=colour_stride,
    )
    return allocator, matcher


class TestColouring:
    def test_disabled_by_default(self):
        allocator, matcher = make()
        firsts = []
        for gid in range(4):
            matcher.gid = gid
            firsts.append(allocator.malloc(64) % (1 << 20))
        assert len(set(firsts)) == 1  # all groups start at the same offset

    def test_stride_staggers_groups(self):
        allocator, matcher = make(colour_stride=576)
        offsets = []
        for gid in range(4):
            matcher.gid = gid
            offsets.append(allocator.malloc(64) % (1 << 20))
        assert len(set(offsets)) == 4
        assert offsets[1] - offsets[0] == 576

    def test_reused_spare_chunk_gets_new_groups_colour(self):
        allocator, matcher = make(colour_stride=576, chunk_size=1 << 16)
        matcher.gid = 3
        addrs = [allocator.malloc(1024) for _ in range(80)]  # spills to chunk 2
        assert allocator.chunks_created >= 2
        for addr in addrs:
            allocator.free(addr)  # chunk 1 retires to the spare list
        matcher.gid = 5
        again = allocator.malloc(1024)
        assert allocator.chunks_reused == 1
        assert again % (1 << 16) == 64 + 5 * 576

    def test_invalid_stride_rejected(self):
        with pytest.raises(AllocationError):
            make(colour_stride=100)  # not 8-aligned
        with pytest.raises(AllocationError):
            make(colour_stride=-8)

    def test_conflict_misses_reduced(self):
        """16 same-aligned hot prefixes thrash an 8-way L1; colouring fixes it."""

        def misses(colour_stride):
            allocator, matcher = make(colour_stride=colour_stride)
            prefixes = []
            for gid in range(16):
                matcher.gid = gid
                prefixes.append(allocator.malloc(64))
            cache = SetAssociativeCache(32 * 1024, 8, 64)
            for _ in range(50):
                for addr in prefixes:
                    cache.access_line(cache.line_of(addr))
            return cache.stats.misses

        aligned = misses(0)
        coloured = misses(576)
        # Uncoloured: 16 ways contending for 8 -> near-total thrash.
        assert aligned > 16 * 40
        # Coloured: each prefix maps to its own set -> only compulsory misses.
        assert coloured == 16
