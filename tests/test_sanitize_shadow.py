"""Unit tests for the shadow-heap oracle and the machine listener."""

import pytest

from repro import obs
from repro.allocators import AddressSpace, SizeClassAllocator
from repro.machine import Machine, ProgramBuilder
from repro.sanitize import (
    SanitizerConfig,
    SanitizerError,
    ShadowHeap,
)
from repro.sanitize.shadow import SanitizerListener


def rules_of(findings):
    return {finding.rule for finding in findings}


class TestShadowHeap:
    def test_clean_lifecycle(self):
        shadow = ShadowHeap()
        assert shadow.malloc(0x1000, 64) == []
        assert shadow.malloc(0x2000, 32) == []
        assert len(shadow) == 2
        assert shadow.live_bytes == 96
        assert shadow.size_of(0x1000) == 64
        assert shadow.free(0x1000, 64) == []
        assert shadow.size_of(0x1000) is None
        assert shadow.free(0x2000) == []  # size optional
        assert len(shadow) == 0

    def test_non_positive_alloc(self):
        shadow = ShadowHeap()
        assert rules_of(shadow.malloc(0x1000, 0)) == {"shadow.alloc-size"}

    def test_overlap_with_predecessor(self):
        shadow = ShadowHeap()
        shadow.malloc(0x1000, 64)
        assert rules_of(shadow.malloc(0x1020, 16)) == {"shadow.alloc-overlap"}

    def test_overlap_with_successor(self):
        shadow = ShadowHeap()
        shadow.malloc(0x1040, 64)
        assert rules_of(shadow.malloc(0x1000, 0x50)) == {"shadow.alloc-overlap"}

    def test_adjacent_regions_do_not_overlap(self):
        shadow = ShadowHeap()
        assert shadow.malloc(0x1000, 0x40) == []
        assert shadow.malloc(0x1040, 0x40) == []

    def test_double_free(self):
        shadow = ShadowHeap()
        shadow.malloc(0x1000, 64)
        shadow.free(0x1000)
        assert rules_of(shadow.free(0x1000)) == {"shadow.bad-free"}

    def test_wild_free(self):
        shadow = ShadowHeap()
        assert rules_of(shadow.free(0xDEAD)) == {"shadow.bad-free"}

    def test_free_size_disagreement(self):
        shadow = ShadowHeap()
        shadow.malloc(0x1000, 64)
        assert rules_of(shadow.free(0x1000, 48)) == {"shadow.free-size"}

    def test_realloc_moves_region(self):
        shadow = ShadowHeap()
        shadow.malloc(0x1000, 64)
        assert shadow.realloc(0x1000, 0x2000, 128) == []
        assert shadow.size_of(0x1000) is None
        assert shadow.size_of(0x2000) == 128

    def test_realloc_in_place(self):
        shadow = ShadowHeap()
        shadow.malloc(0x1000, 64)
        assert shadow.realloc(0x1000, 0x1000, 32) == []
        assert shadow.size_of(0x1000) == 32

    def test_realloc_of_dead_region(self):
        shadow = ShadowHeap()
        assert rules_of(shadow.realloc(0x1000, 0x2000, 64)) == {
            "shadow.bad-realloc"
        }

    def test_realloc_overlap(self):
        shadow = ShadowHeap()
        shadow.malloc(0x1000, 64)
        shadow.malloc(0x3000, 64)
        found = shadow.realloc(0x1000, 0x3020, 64)
        assert rules_of(found) == {"shadow.realloc-overlap"}

    def test_diff_live_clean(self):
        shadow = ShadowHeap()
        shadow.malloc(0x1000, 64)
        assert shadow.diff_live([(0x1000, 64)]) == []

    def test_diff_live_all_rules(self):
        shadow = ShadowHeap()
        shadow.malloc(0x1000, 64)  # reported with wrong size -> drift
        shadow.malloc(0x2000, 32)  # not reported -> lost
        found = shadow.diff_live([(0x1000, 80), (0x3000, 16)])  # extra -> leaked
        assert rules_of(found) == {
            "shadow.size-drift",
            "shadow.lost-region",
            "shadow.leaked-region",
        }

    def test_ops_counter(self):
        shadow = ShadowHeap()
        shadow.malloc(0x1000, 64)
        shadow.realloc(0x1000, 0x1000, 32)
        shadow.free(0x1000)
        assert shadow.ops == 3


def make_machine(listener=None):
    builder = ProgramBuilder("sanity")
    builder.call_site("main", "malloc")
    listeners = [listener] if listener is not None else None
    return Machine(
        builder.build(), SizeClassAllocator(AddressSpace(0)), listeners=listeners
    )


class TestSanitizerListener:
    def test_clean_run_has_no_findings(self):
        listener = SanitizerListener(SanitizerConfig(check_interval=1))
        machine = make_machine(listener)
        objs = [machine.malloc(64) for _ in range(8)]
        machine.realloc(objs[0], 128)
        for obj in objs:
            machine.free(obj)
        machine.finish()
        assert listener.findings == []
        # interval checkpoints on every op plus the on_finish one
        assert listener.checks == 18

    def test_free_with_interval_one_is_not_a_false_positive(self):
        # Regression: ``on_free`` fires before the object table marks the
        # object dead; a checkpoint taken inside the free event must compare
        # the oracle against the *pre-free* live set, so the oracle entry
        # must still be present when the checkpoint runs.
        listener = SanitizerListener(SanitizerConfig(check_interval=1))
        machine = make_machine(listener)
        obj = machine.malloc(64)
        machine.free(obj)  # would raise shadow.lost-region before the fix
        assert listener.findings == []

    def test_shadow_tracks_machine_heap(self):
        listener = SanitizerListener(SanitizerConfig(check_interval=0))
        machine = make_machine(listener)
        keep = machine.malloc(96)
        machine.free(machine.malloc(32))
        assert len(listener.shadow) == 1
        assert listener.shadow.size_of(keep.addr) == 96

    def test_corruption_raises_when_fail_fast(self):
        listener = SanitizerListener(SanitizerConfig(check_interval=1))
        machine = make_machine(listener)
        obj = machine.malloc(64)
        machine.allocator.stats.live_bytes += 8
        with pytest.raises(SanitizerError) as err:
            machine.malloc(64)
        assert "size-class.stats-live-bytes" in rules_of(err.value.findings)
        assert listener.findings  # recorded before raising

    def test_findings_accumulate_without_fail_fast(self):
        listener = SanitizerListener(
            SanitizerConfig(check_interval=1, fail_fast=False, max_findings=3)
        )
        machine = make_machine(listener)
        machine.malloc(64)
        machine.allocator.stats.live_bytes += 8
        for _ in range(5):
            machine.malloc(64)  # each interval checkpoint re-reports
        assert len(listener.findings) == 3  # capped at max_findings

    def test_shadow_disabled(self):
        listener = SanitizerListener(SanitizerConfig(check_interval=1, shadow=False))
        machine = make_machine(listener)
        machine.free(machine.malloc(64))
        assert listener.shadow is None
        assert listener.findings == []
        assert listener.checks == 2

    def test_final_check_counts_as_checkpoint(self):
        listener = SanitizerListener(SanitizerConfig(check_interval=0))
        machine = make_machine(listener)
        machine.malloc(64)
        assert listener.checks == 0
        listener.final_check(machine)
        assert listener.checks == 1

    def test_metrics_flow_into_registry(self):
        listener = SanitizerListener(SanitizerConfig(check_interval=2))
        with obs.collecting() as registry:
            machine = make_machine(listener)
            for _ in range(4):
                machine.malloc(64)
        counters = registry.snapshot().counters
        assert counters["sanitize.shadow.ops"] == 4
        assert counters["sanitize.checks"] == 2
        assert "sanitize.findings" not in counters
