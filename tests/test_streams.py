"""Unit tests for hot-data-stream extraction and co-allocation packing."""

import pytest

from repro.hds import (
    CoallocationSet,
    HotStream,
    Sequitur,
    StreamParams,
    coallocation_set,
    extract_hot_streams,
    pack_sets,
    site_assignment,
)
from repro.hds.coalloc import merge_identical_sets
from repro.hds.streams import rule_frequencies


class TestStreamParams:
    def test_defaults_match_paper(self):
        params = StreamParams()
        assert params.min_elements == 2
        assert params.max_elements == 20
        assert params.coverage == 0.90

    def test_invalid(self):
        with pytest.raises(ValueError):
            StreamParams(min_elements=1)
        with pytest.raises(ValueError):
            StreamParams(min_elements=5, max_elements=4)
        with pytest.raises(ValueError):
            StreamParams(coverage=0.0)


class TestRuleFrequencies:
    def test_start_rule_has_frequency_one(self):
        g = Sequitur.from_sequence("abcabdabcabd")
        freq = rule_frequencies(g)
        assert freq[g.start.rid] == 1

    def test_nested_frequencies_multiply(self):
        g = Sequitur.from_sequence("abcabdabcabd")
        freq = rule_frequencies(g)
        bodies = {rule.rid: rule.body() for rule in g.rules}
        ab_rid = next(rid for rid, body in bodies.items() if body == ["a", "b"])
        # 'ab' occurs four times in the input.
        assert freq[ab_rid] == 4


class TestExtractHotStreams:
    def test_repeated_pair_found(self):
        trace = [1, 2, 99] * 10 + [50, 51]
        analysis = extract_hot_streams(trace)
        elements = {stream.elements for stream in analysis.streams}
        assert any(set(e) >= {1, 2} for e in elements)

    def test_long_rules_chopped_into_windows(self):
        block = list(range(100))
        trace = block * 6
        analysis = extract_hot_streams(trace, StreamParams(max_elements=20))
        assert analysis.streams
        assert all(len(s.elements) <= 20 for s in analysis.streams)
        # A 100-element pattern needs at least 5 windows.
        assert analysis.stream_count >= 5

    def test_unique_breaker_symbols_terminate_streams(self):
        trace = []
        breaker = -1
        for rep in range(10):
            for i in range(5):
                trace.extend([i * 2, i * 2 + 1, breaker])
                breaker -= 1
        analysis = extract_hot_streams(trace)
        for stream in analysis.streams:
            assert all(element >= 0 for element in stream.elements)
            assert len(stream.elements) == 2

    def test_coverage_controls_selection(self):
        trace = ([1, 2] * 30) + ([3, 4] * 3) + list(range(100, 130))
        high = extract_hot_streams(trace, StreamParams(coverage=0.9))
        low = extract_hot_streams(trace, StreamParams(coverage=0.3))
        assert low.stream_count <= high.stream_count

    def test_heat_property(self):
        stream = HotStream((1, 2, 3), 7)
        assert stream.heat == 21

    def test_minimality_skips_supersets_of_selected(self):
        # 'ab' is hot and inside 'abcd'; once selected, the containing rule
        # is skipped.
        trace = ("ab" * 20) + ("abcd" * 5)
        analysis = extract_hot_streams(list(trace), StreamParams(coverage=1.0))
        selected = [''.join(s.elements) for s in analysis.streams]
        assert "ab" in selected
        assert all("ab" not in s or s == "ab" for s in selected)

    def test_empty_trace(self):
        analysis = extract_hot_streams([])
        assert analysis.streams == []
        assert analysis.coverage_achieved == 0.0

    def test_mixed_type_trace_with_tied_windows(self):
        # Chopping a long rule over a trace of mixed int/str symbols yields
        # several equal-heat windows whose tuples are mutually incomparable
        # ((1, "a") vs ("b", 2) compares 1 against "b").  The candidate sort
        # used the raw window tuple as its final tie-break, which raised
        # TypeError here; ties must resolve by insertion order instead.
        block = [1, "a", "b", 2, 3, "c", "d", 4]
        trace = block * 8
        analysis = extract_hot_streams(trace, StreamParams(max_elements=2))
        assert analysis.streams
        assert all(len(stream.elements) == 2 for stream in analysis.streams)
        kinds = {
            type(element)
            for stream in analysis.streams
            for element in stream.elements
        }
        assert kinds == {int, str}

    def test_mixed_type_tie_break_is_deterministic(self):
        block = [1, "a", "b", 2, 3, "c", "d", 4]
        trace = block * 8
        first = extract_hot_streams(trace, StreamParams(max_elements=2))
        second = extract_hot_streams(trace, StreamParams(max_elements=2))
        assert [s.elements for s in first.streams] == [
            s.elements for s in second.streams
        ]


class TestCoallocationSets:
    def _sites(self):
        return {1: 0x10, 2: 0x20, 3: 0x10, 4: None}

    def _sizes(self):
        return {1: 32, 2: 16, 3: 32, 4: 64}

    def test_multi_site_set_built(self):
        stream = HotStream((1, 2), 10)
        cs = coallocation_set(stream, self._sites(), self._sizes())
        assert cs is not None
        assert cs.sites == frozenset({0x10, 0x20})
        assert cs.benefit > 0

    def test_single_site_set_rejected(self):
        stream = HotStream((1, 3), 10)  # both from site 0x10
        assert coallocation_set(stream, self._sites(), self._sizes()) is None

    def test_unattributable_object_rejects_set(self):
        stream = HotStream((1, 4), 10)
        assert coallocation_set(stream, self._sites(), self._sizes()) is None

    def test_no_benefit_when_objects_span_many_lines(self):
        sites = {1: 0x10, 2: 0x20}
        sizes = {1: 256, 2: 256}
        stream = HotStream((1, 2), 10)
        assert coallocation_set(stream, sites, sizes) is None

    def test_benefit_scales_with_frequency(self):
        hot = coallocation_set(HotStream((1, 2), 100), self._sites(), self._sizes())
        cold = coallocation_set(HotStream((1, 2), 1), self._sites(), self._sizes())
        assert hot.benefit > cold.benefit


class TestMergeAndPack:
    def _set(self, sites, benefit):
        return CoallocationSet(frozenset(sites), benefit, HotStream(tuple(sites), 1))

    def test_merge_identical_sets_sums_benefit(self):
        merged = merge_identical_sets([self._set({1, 2}, 5.0), self._set({1, 2}, 7.0)])
        assert len(merged) == 1
        assert merged[0].benefit == 12.0

    def test_merge_keeps_distinct_sets(self):
        merged = merge_identical_sets([self._set({1, 2}, 5.0), self._set({3, 4}, 7.0)])
        assert len(merged) == 2

    def test_pack_prefers_high_priority(self):
        a = self._set({1, 2}, 100.0)
        b = self._set({2, 3}, 10.0)  # conflicts with a
        chosen = pack_sets([b, a])
        assert chosen == [a]

    def test_pack_disjoint_sets_all_chosen(self):
        a = self._set({1, 2}, 100.0)
        b = self._set({3, 4}, 10.0)
        assert set(map(lambda c: c.sites, pack_sets([a, b]))) == {a.sites, b.sites}

    def test_pack_respects_max_groups(self):
        sets = [self._set({i * 2, i * 2 + 1}, 10.0) for i in range(5)]
        assert len(pack_sets(sets, max_groups=2)) == 2

    def test_priority_normalises_by_sqrt_size(self):
        small = self._set({1, 2}, 10.0)
        big = self._set({3, 4, 5, 6, 7, 8, 9, 10}, 11.0)
        assert small.priority > big.priority

    def test_site_assignment(self):
        chosen = [self._set({1, 2}, 5.0), self._set({3}, 2.0)]
        assert site_assignment(chosen) == {1: 0, 2: 0, 3: 1}
