"""Tests for profile serialisation (the offline/online file boundary)."""

import json

import pytest

from repro.core import HaloParams, optimise_profile, profile_workload
from repro.profiling import (
    ProfileFormatError,
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def profiled():
    workload = get_workload("ft")
    profile = profile_workload(workload, HaloParams(), scale="test", record_trace=True)
    return workload, profile


class TestRoundTrip:
    def test_graph_survives(self, profiled):
        workload, profile = profiled
        data = profile_to_dict(profile)
        rebuilt = profile_from_dict(data, workload.program)
        assert rebuilt.graph.node_accesses == profile.graph.node_accesses
        assert rebuilt.graph.edges == profile.graph.edges
        assert rebuilt.full_graph.total_accesses == profile.full_graph.total_accesses

    def test_contexts_survive(self, profiled):
        workload, profile = profiled
        rebuilt = profile_from_dict(profile_to_dict(profile), workload.program)
        for cid in profile.contexts:
            assert rebuilt.contexts.chain(cid) == profile.contexts.chain(cid)

    def test_context_stats_survive(self, profiled):
        workload, profile = profiled
        rebuilt = profile_from_dict(profile_to_dict(profile), workload.program)
        assert rebuilt.context_stats == profile.context_stats

    def test_trace_excluded_by_default(self, profiled):
        workload, profile = profiled
        data = profile_to_dict(profile)
        assert "trace" not in data
        rebuilt = profile_from_dict(data, workload.program)
        assert rebuilt.trace is None

    def test_trace_included_on_request(self, profiled):
        workload, profile = profiled
        data = profile_to_dict(profile, include_trace=True)
        rebuilt = profile_from_dict(data, workload.program)
        assert rebuilt.trace == profile.trace
        assert rebuilt.object_site == profile.object_site

    def test_json_compatible(self, profiled):
        _, profile = profiled
        json.dumps(profile_to_dict(profile, include_trace=True))

    def test_file_round_trip(self, profiled, tmp_path):
        workload, profile = profiled
        path = tmp_path / "ft.profile.json"
        save_profile(profile, path)
        rebuilt = load_profile(path, workload.program)
        assert rebuilt.total_accesses == profile.total_accesses


class TestReusability:
    def test_optimise_from_reloaded_profile(self, profiled):
        workload, profile = profiled
        rebuilt = profile_from_dict(profile_to_dict(profile), workload.program)
        fresh = optimise_profile(rebuilt, HaloParams())
        original = optimise_profile(profile, HaloParams())
        assert [g.members for g in fresh.groups] == [g.members for g in original.groups]
        assert fresh.plan.bit_for_site == original.plan.bit_for_site

    def test_hds_from_reloaded_profile_with_trace(self, profiled):
        from repro.hds import HdsParams, analyse_profile

        workload, profile = profiled
        data = profile_to_dict(profile, include_trace=True)
        rebuilt = profile_from_dict(data, workload.program)
        fresh = analyse_profile(rebuilt, HdsParams())
        original = analyse_profile(profile, HdsParams())
        assert fresh.group_of_site == original.group_of_site


class TestValidation:
    def test_wrong_program_rejected(self, profiled):
        _, profile = profiled
        other = get_workload("art")
        with pytest.raises(ProfileFormatError):
            profile_from_dict(profile_to_dict(profile), other.program)

    def test_wrong_version_rejected(self, profiled):
        workload, profile = profiled
        data = profile_to_dict(profile)
        data["version"] = 99
        with pytest.raises(ProfileFormatError):
            profile_from_dict(data, workload.program)
