"""Unit tests for the alternative clusterers (§4.2 comparison)."""

import pytest

from repro.clustering import cut_groups, hcs_groups, modularity_groups
from repro.profiling import AffinityGraph


def two_communities():
    """Two dense 3-cliques linked by one weak edge."""
    g = AffinityGraph()
    for node in range(6):
        g.add_access(node, 10)
    for block in (range(3), range(3, 6)):
        nodes = list(block)
        for i in nodes:
            for j in nodes:
                if i < j:
                    g.add_edge_weight(i, j, 50.0)
    g.add_edge_weight(2, 3, 1.0)
    g.add_edge_weight(0, 0, 5.0)  # loop must be tolerated
    return g


@pytest.mark.parametrize("cluster", [modularity_groups, hcs_groups, cut_groups])
class TestAlternativeClusterers:
    def test_finds_two_communities(self, cluster):
        groups = cluster(two_communities())
        memberships = sorted(sorted(g.members) for g in groups)
        assert [0, 1, 2] in memberships
        assert [3, 4, 5] in memberships

    def test_groups_disjoint(self, cluster):
        groups = cluster(two_communities())
        seen = set()
        for group in groups:
            assert not (group.members & seen)
            seen |= group.members

    def test_empty_graph(self, cluster):
        assert cluster(AffinityGraph()) == []

    def test_group_ids_dense(self, cluster):
        groups = cluster(two_communities())
        assert [g.gid for g in groups] == list(range(len(groups)))

    def test_weight_metadata(self, cluster):
        for group in cluster(two_communities()):
            assert group.weight >= 0.0
            assert group.accesses > 0


class TestHaloVsAlternatives:
    def test_halo_grouping_respects_co_allocation_better(self):
        """The paper's claim in §4.2, checked on a loop-heavy graph.

        Modularity ignores self-loops entirely, so it happily merges a
        heavy-loop node with a weakly-related neighbour; the HALO score
        function refuses because the combined density drops.
        """
        from repro.core import GroupingParams, group_contexts

        g = AffinityGraph()
        for node in range(3):
            g.add_access(node, 10)
        g.add_edge_weight(0, 0, 100.0)
        g.add_edge_weight(1, 1, 100.0)
        g.add_edge_weight(0, 1, 3.0)
        g.add_edge_weight(1, 2, 3.0)
        halo_groups = group_contexts(
            g, GroupingParams(min_weight=0.0, group_threshold=0.0)
        )
        for group in halo_groups:
            assert not {0, 1} <= group.members  # kept apart: weak cross edge
        mod_groups = modularity_groups(g)
        merged = any({0, 1} <= g_.members for g_ in mod_groups)
        assert merged  # modularity merges what HALO keeps apart
