"""Tests for the free-list-sharded group allocator (§6 extension)."""

import pytest

from repro.allocators import (
    AddressSpace,
    AllocationError,
    GroupAllocator,
    ShardedGroupAllocator,
    SizeClassAllocator,
)
from repro.machine import GroupStateVector


class _AlwaysGroup:
    def match(self, state):
        return 0


def make(cls=ShardedGroupAllocator, **kwargs):
    space = AddressSpace(0)
    return cls(space, SizeClassAllocator(space), _AlwaysGroup(), GroupStateVector(), **kwargs)


class TestShardedRecycling:
    def test_freed_region_is_recycled(self):
        allocator = make()
        addr = allocator.malloc(48)
        allocator.free(addr)
        assert allocator.malloc(48) == addr

    def test_recycling_is_shard_local(self):
        allocator = make()
        small = allocator.malloc(16)
        allocator.free(small)
        big = allocator.malloc(128)  # different shard: must not reuse
        assert big != small
        assert allocator.malloc(16) == small

    def test_shard_rounding_allows_close_sizes(self):
        allocator = make()
        addr = allocator.malloc(48)
        allocator.free(addr)
        # 33..48 bytes share the 48-byte shard.
        assert allocator.malloc(40) == addr

    def test_lifo_reuse_within_shard(self):
        allocator = make()
        a = allocator.malloc(32)
        b = allocator.malloc(32)
        allocator.free(a)
        allocator.free(b)
        assert allocator.malloc(32) == b
        assert allocator.malloc(32) == a

    def test_no_overlap_under_churn(self):
        import random

        rng = random.Random(0)
        allocator = make(chunk_size=1 << 16)
        live = {}
        for step in range(3000):
            if live and rng.random() < 0.45:
                addr = rng.choice(list(live))
                size = live.pop(addr)
                assert allocator.free(addr) == size
            else:
                size = rng.choice([16, 24, 32, 48, 64, 96])
                addr = allocator.malloc(size)
                shard = (size + 15) & ~15
                for other, other_size in live.items():
                    other_shard = (other_size + 15) & ~15
                    assert addr + shard <= other or other + other_shard <= addr
                live[addr] = size
        for addr, size in live.items():
            assert allocator.size_of(addr) == size

    def test_alignment_beyond_shard_rejected(self):
        allocator = make()
        with pytest.raises(AllocationError):
            allocator.malloc(64, alignment=64)

    def test_accounting_matches_bump_variant(self):
        sizes = [16, 48, 96, 32, 48]
        sharded = make()
        bump = make(GroupAllocator)
        for allocator in (sharded, bump):
            addrs = [allocator.malloc(size) for size in sizes]
            for addr in addrs:
                allocator.free(addr)
            assert allocator.stats.live_bytes == 0
            assert allocator.grouped_allocs == len(sizes)


class TestShardedFragmentation:
    def test_churn_fragmentation_beats_bump(self):
        """The §6 claim: sharding bounds dead space under churn."""

        def churn(allocator):
            space = allocator.space
            live = []
            for wave in range(40):
                for _ in range(200):
                    addr = allocator.malloc(96)
                    space.touch_range(addr, 96)
                    live.append(addr)
                # Free all but one object per wave (the chunk-pinning case).
                for addr in live[:-1]:
                    allocator.free(addr)
                live = live[-1:]
            return allocator.fragmentation()

        bump_frag = churn(make(GroupAllocator, chunk_size=1 << 16))
        sharded_frag = churn(make(ShardedGroupAllocator, chunk_size=1 << 16))
        assert sharded_frag.resident_bytes <= bump_frag.resident_bytes
        assert sharded_frag.wasted_bytes < bump_frag.wasted_bytes

    def test_chunk_retirement_still_works(self):
        allocator = make(chunk_size=1 << 16)
        addrs = [allocator.malloc(1024) for _ in range(100)]
        for addr in addrs:
            allocator.free(addr)
        assert allocator.grouped_live_bytes == 0
        # Chunks emptied and retired for reuse.
        again = [allocator.malloc(1024) for _ in range(100)]
        assert allocator.chunks_reused > 0 or allocator.chunks_created <= 2
