"""Differential tests for the columnar simulation core.

The per-event :class:`~repro.machine.machine.Machine` replay is the
oracle: every test here asserts the batched engine reproduces its
measurements bit-for-bit — across all benchmark workloads, all allocator
configurations, both kernel backends, serial and parallel evaluation —
plus property-style checks of the LRU kernel on random streams.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.cache import CacheConfigError
from repro.cache.hierarchy import CacheHierarchy, HierarchyConfig
from repro.columnar import kernel_backend
from repro.columnar.kernel import (
    _lru_filter_py,
    expand_ranges,
    lru_filter,
    validate_geometry,
)
from repro.core.pipeline import HaloParams, optimise_profile, profile_workload
from repro.harness.prepare import get_or_record_trace
from repro.harness.runner import (
    ENGINES,
    measure_baseline,
    measure_halo,
    measure_hds,
    measure_random_pools,
    resolve_engine,
)
from repro.hds.pipeline import HdsParams, analyse_profile
from repro.trace.access import AccessTrace
from repro.workloads.base import get_workload

#: The benchmark sweep the acceptance criteria name.
BENCHMARKS = ("deepsjeng", "roms", "povray", "ammp")

CONFIGS = ("baseline", "halo", "hds", "random-pools")


def _measurement_fields(m):
    """Everything a Measurement reports, as a comparable tuple."""
    return (
        m.workload, m.config, m.scale, m.seed,
        m.cycles, m.cache, m.accesses, m.allocs, m.frees,
        m.instrumentation_toggles, m.peak_live_bytes, m.frag_at_peak,
        m.grouped_allocs, m.forwarded_allocs, m.degraded_allocs,
    )


@pytest.fixture(scope="module")
def prepared():
    """Per-benchmark (workload, trace, halo, hds) inputs, built once."""
    out = {}
    for name in BENCHMARKS:
        workload = get_workload(name)
        trace = get_or_record_trace(name, workload=workload)
        profile = profile_workload(workload, HaloParams(), scale="test", record_trace=True)
        halo = optimise_profile(profile, HaloParams())
        hds = analyse_profile(profile, HdsParams())
        out[name] = (workload, trace, halo, hds)
    return out


def _measure(prepared, name, config, engine, seed=1):
    workload, trace, halo, hds = prepared[name]
    kwargs = dict(scale="test", seed=seed, trace=trace, engine=engine)
    if config == "baseline":
        return measure_baseline(workload, **kwargs)
    if config == "halo":
        return measure_halo(workload, halo, **kwargs)
    if config == "hds":
        return measure_hds(workload, hds, **kwargs)
    return measure_random_pools(workload, **kwargs)


class TestEngineAgreement:
    """The differential oracle: columnar == per-event, field for field."""

    @pytest.mark.parametrize("name", BENCHMARKS)
    @pytest.mark.parametrize("config", CONFIGS)
    def test_bit_identical_measurements(self, prepared, name, config):
        event = _measure(prepared, name, config, "event")
        columnar = _measure(prepared, name, config, "columnar")
        assert _measurement_fields(columnar) == _measurement_fields(event)

    def test_columnar_matches_direct_execution(self, prepared):
        """Trace-driven columnar equals executing the workload outright."""
        workload, trace, _, _ = prepared["deepsjeng"]
        direct = measure_baseline(workload, scale="test", seed=1)
        columnar = measure_baseline(
            workload, scale="test", seed=1, trace=trace, engine="columnar"
        )
        assert _measurement_fields(columnar) == _measurement_fields(direct)

    def test_engines_track_across_seeds(self, prepared):
        """Whatever placement each ASLR seed yields, the engines agree."""
        for seed in (1, 2, 3):
            event = _measure(prepared, "roms", "baseline", "event", seed=seed)
            columnar = _measure(prepared, "roms", "baseline", "columnar", seed=seed)
            assert _measurement_fields(columnar) == _measurement_fields(event)

    def test_python_kernel_backend_agrees(self, prepared, monkeypatch):
        """The pure-Python LRU fallback is as exact as the C kernel."""
        from repro.columnar import kernel

        columnar_c = _measure(prepared, "deepsjeng", "halo", "columnar")
        monkeypatch.setattr(kernel, "_kernel", False)
        assert kernel_backend() == "python"
        columnar_py = _measure(prepared, "deepsjeng", "halo", "columnar")
        assert _measurement_fields(columnar_py) == _measurement_fields(columnar_c)

    def test_engine_metrics_labelled_and_totals_comparable(self, prepared):
        """engine.measure.* carries the engine label; measure.* totals match."""
        from repro import obs

        with obs.collecting() as registry:
            _measure(prepared, "deepsjeng", "baseline", "event")
        event_snap = registry.snapshot()
        with obs.collecting() as registry:
            _measure(prepared, "deepsjeng", "baseline", "columnar")
        columnar_snap = registry.snapshot()

        assert event_snap.sum_counter_where(
            "engine.measure.runs", engine="event") == 1
        assert columnar_snap.sum_counter_where(
            "engine.measure.runs", engine="columnar") == 1
        assert columnar_snap.sum_counter_where(
            "engine.measure.events", engine="columnar"
        ) == event_snap.sum_counter_where("engine.measure.events", engine="event")
        # The deterministic measure.* family stays engine-agnostic.
        for family in ("measure.runs", "measure.cache.l1_misses",
                       "measure.machine.allocs", "measure.peak_live_bytes"):
            assert columnar_snap.sum_counter(family) == event_snap.sum_counter(family)


class TestParallelAgreement:
    """Serial event vs ``--jobs N`` columnar: identical evaluations."""

    def test_evaluate_all_jobs_columnar_matches_serial_event(self, tmp_path):
        from repro.core.artifact_cache import ArtifactCache
        from repro.harness.reproduce import evaluate_all

        benchmarks = ["deepsjeng", "roms"]
        cache = ArtifactCache(tmp_path / "cache")
        serial = evaluate_all(
            benchmarks, trials=2, scale="test", include_random=True,
            cache=cache, engine="event",
        )
        parallel = evaluate_all(
            benchmarks, trials=2, scale="test", include_random=True,
            jobs=2, cache=cache, engine="columnar",
        )
        for name in benchmarks:
            for config in ("baseline", "halo", "hds", "random_pools"):
                s = getattr(serial[name], config)
                p = getattr(parallel[name], config)
                assert (s.cycles, s.l1_misses) == (p.cycles, p.l1_misses), (
                    name, config)


class TestEngineResolution:
    def test_no_trace_is_direct(self):
        assert resolve_engine("auto", None) == "direct"

    def test_auto_picks_columnar(self, prepared):
        _, trace, _, _ = prepared["deepsjeng"]
        assert resolve_engine("auto", trace) == "columnar"
        assert resolve_engine("event", trace) == "event"
        assert resolve_engine("columnar", trace) == "columnar"

    def test_unknown_engine_rejected(self, prepared):
        _, trace, _, _ = prepared["deepsjeng"]
        with pytest.raises(ValueError, match="unknown measurement engine"):
            resolve_engine("vectorised", trace)
        assert "vectorised" not in ENGINES

    def test_trace_and_driver_are_exclusive(self, prepared):
        workload, trace, _, _ = prepared["deepsjeng"]
        with pytest.raises(ValueError, match="not both"):
            measure_baseline(
                workload, scale="test", trace=trace, driver=lambda m: None
            )

    def test_sanitizer_forces_event(self, prepared):
        from repro.sanitize import SanitizerConfig, sanitizer_active

        _, trace, _, _ = prepared["deepsjeng"]
        with sanitizer_active(SanitizerConfig()):
            assert resolve_engine("auto", trace) == "event"
            assert resolve_engine("columnar", trace) == "event"
        assert resolve_engine("auto", trace) == "columnar"


class TestLruKernelProperties:
    """Property-style checks of the chunked LRU kernel on random streams."""

    @pytest.mark.parametrize("seed", range(4))
    def test_backends_agree_on_random_streams(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(8):
            n = int(rng.integers(1, 3000))
            key_space = int(rng.integers(4, 4000))
            keys = rng.integers(0, key_space, size=n).astype(np.int64)
            num_sets = int(rng.choice([1, 2, 3, 8, 64, 512, 36864]))
            assoc = int(rng.integers(1, 65))
            c_misses, c_missed = lru_filter(keys, num_sets, assoc)
            p_misses, p_missed = _lru_filter_py(keys, num_sets, assoc)
            assert c_misses == p_misses
            assert np.array_equal(c_missed, p_missed)

    @pytest.mark.parametrize("seed", range(4))
    def test_filter_matches_per_event_cache(self, seed):
        """One lru_filter pass == SetAssociativeCache.access_line per key."""
        from repro.cache.cache import SetAssociativeCache

        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(200, 2000))
        keys = rng.integers(0, 700, size=n).astype(np.int64)
        line = 64
        assoc = int(rng.choice([1, 2, 4, 8, 11]))
        num_sets = int(rng.choice([16, 64, 36]))  # pow2 and non-pow2
        cache = SetAssociativeCache(num_sets * assoc * line, assoc, line, "T")
        event_missed = [int(k) for k in keys.tolist() if not cache.access_line(k)]
        misses, missed = lru_filter(keys, num_sets, assoc)
        assert misses == cache.stats.misses == len(event_missed)
        assert missed.tolist() == event_missed

    def test_fully_associative_matches_tlb(self):
        from repro.cache.tlb import TLB

        rng = np.random.default_rng(7)
        pages = rng.integers(0, 120, size=4000).astype(np.int64)
        tlb = TLB(64, 4096)
        for page in pages.tolist():
            tlb.access_page(page)
        misses, _ = lru_filter(pages, 1, 64)
        assert misses == tlb.stats.misses

    def test_rejects_impossible_geometry(self):
        keys = np.arange(4, dtype=np.int64)
        with pytest.raises(CacheConfigError):
            lru_filter(keys, 0, 4)
        with pytest.raises(CacheConfigError):
            lru_filter(keys, 16, 0)

    def test_validate_geometry_mirrors_hierarchy_errors(self):
        validate_geometry(HierarchyConfig())
        for bad, exc in (
            (HierarchyConfig(line_size=48), CacheConfigError),
            (HierarchyConfig(l1_size=1000), CacheConfigError),
            (HierarchyConfig(tlb_entries=0), ValueError),
            (HierarchyConfig(page_size=1000), ValueError),
        ):
            with pytest.raises(exc):
                CacheHierarchy(bad)
            with pytest.raises(exc):
                validate_geometry(bad)

    def test_expand_ranges(self):
        first = np.array([3, 10, 20], dtype=np.int64)
        last = np.array([5, 10, 22], dtype=np.int64)
        assert expand_ranges(first, last).tolist() == [3, 4, 5, 10, 20, 21, 22]
        same = np.array([1, 2], dtype=np.int64)
        assert expand_ranges(same, same) is same  # no straddles: zero-copy
        empty = np.empty(0, dtype=np.int64)
        assert expand_ranges(empty, empty).shape == (0,)


class TestHierarchySimulation:
    @pytest.mark.parametrize("seed", range(3))
    def test_random_access_stream_matches_event_hierarchy(self, seed):
        """simulate_hierarchy == CacheHierarchy.access over random streams."""
        from repro.columnar.engine import simulate_hierarchy

        rng = np.random.default_rng(200 + seed)
        n = 3000
        addr = (rng.integers(0, 1 << 24, size=n) + (1 << 36)).astype(np.int64)
        size = rng.choice([1, 2, 4, 8, 64, 100, 300], size=n).astype(np.int64)
        config = HierarchyConfig(
            l1_size=16 * 1024, l2_size=256 * 1024, l3_size=2 * 1024 * 1024,
            l3_assoc=8, tlb_entries=16,
        )
        hierarchy = CacheHierarchy(config)
        for a, s in zip(addr.tolist(), size.tolist()):
            hierarchy.access(a, s)
        stats, pages, page_starts = simulate_hierarchy(addr, size, config)
        assert stats == hierarchy.snapshot()
        assert int(page_starts[-1]) == int(pages.shape[0])

    @pytest.mark.parametrize("seed", range(3))
    def test_access_trace_replay_engines_agree(self, seed):
        rng = np.random.default_rng(300 + seed)
        n = 2500
        addrs = (rng.integers(0, 1 << 26, size=n) + (1 << 36)).astype(np.int64)
        sizes = rng.choice([1, 8, 64, 200], size=n).astype(np.int32)
        trace = AccessTrace(addrs, sizes)
        for config in (HierarchyConfig(), HierarchyConfig(l1_size=8 * 1024, tlb_entries=8)):
            assert trace.replay(config) == trace.replay(config, engine="event")

    def test_access_trace_replay_rejects_unknown_engine(self):
        trace = AccessTrace(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int32)
        )
        with pytest.raises(ValueError, match="unknown replay engine"):
            trace.replay(engine="warp")


class TestTraceColumns:
    def test_read_all_matches_events(self, prepared, tmp_path):
        from repro.trace.format import EventTrace, TraceReader

        _, trace, _, _ = prepared["deepsjeng"]
        assert trace.read_all() == trace.events()
        path = trace.save(tmp_path / "dj.trace")
        assert TraceReader(path).read_all() == trace.events()
        assert EventTrace.load(path).read_all() == trace.events()

    def test_column_counts_match_header(self, prepared):
        from repro.trace.format import OP_ALLOC, OP_FREE, OP_LOAD, OP_STORE

        _, trace, _, _ = prepared["roms"]
        cols = trace.columns()
        events = trace.events()
        assert cols.loads == sum(1 for e in events if e[0] == OP_LOAD)
        assert cols.stores == sum(1 for e in events if e[0] == OP_STORE)
        assert cols.allocs == sum(1 for e in events if e[0] == OP_ALLOC)
        assert cols.frees == sum(1 for e in events if e[0] == OP_FREE)
        assert cols.accesses == cols.loads + cols.stores
        assert cols.acc_oid.shape[0] == cols.accesses
        assert trace.columns() is cols  # cached
