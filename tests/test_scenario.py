"""Tests for the config-driven scenario generator and multi-tenant mixes.

Covers the DSL validators and canonical serialisation, the
self-describing name grammar (``scn-<seed>``, ``mix-<seed>x<n>[-sched]``),
registry integration (lazy resolution, helpful unknown-name errors,
central scale validation), determinism (bit-identical event traces,
engine parity event vs columnar, serial vs ``--jobs 2`` evaluation),
the shipped corpus golden hashes, the fuzz-matrix bridge, and the
``halo scenario`` CLI surface.
"""

from __future__ import annotations

import json

import pytest

from repro.core.pipeline import HaloParams, optimise_profile, profile_workload
from repro.harness.prepare import get_or_record_trace
from repro.harness.runner import measure_baseline, measure_halo
from repro.scenario import (
    CorpusEntry,
    KindSpec,
    MixSpec,
    PhaseSpec,
    ScenarioError,
    ScenarioSpec,
    SizeDist,
    build_corpus,
    corpus_digest,
    corpus_names,
    load_config,
    load_manifest,
    load_spec,
    materialise_corpus,
    parse_name,
    register_scenario,
    sample_mix,
    sample_spec,
    scenario_fuzz_entries,
    scenario_ops,
    verify_manifest,
    write_manifest,
)
from repro.trace.record import record_workload
from repro.workloads.base import (
    WorkloadError,
    get_workload,
    resolve_scale,
    workload_names,
)

#: The generated names the integration tests exercise end to end.
SCENARIO = "scn-3"
MIX = "mix-5x3-rr"


def _demo_spec(name: str = "demo-spec") -> ScenarioSpec:
    """A tiny hand-written spec for unit tests (fast to execute)."""
    return ScenarioSpec(
        name=name,
        kinds=(
            KindSpec(
                label="hot",
                base_count=20,
                size=SizeDist("fixed", lo=48, hi=48),
                access="chase",
                hot_passes=2,
                site_group="shared",
            ),
            KindSpec(
                label="cold",
                base_count=10,
                size=SizeDist("uniform", lo=16, hi=64),
                access="none",
                lifetime="churn",
                site_group="shared",
            ),
        ),
        phases=(
            PhaseSpec(label="p0", weights=(("hot", 1.0), ("cold", 1.0))),
            PhaseSpec(label="p1", weights=(("hot", 2.0),)),
        ),
        table_kb=0,
    )


class TestSpecDsl:
    """Validators and canonical serialisation of the declarative DSL."""

    def test_size_dist_families_sample_in_bounds(self):
        import random

        rng = random.Random("dsl")
        assert SizeDist("fixed", lo=32, hi=32).sample(rng) == 32
        for _ in range(50):
            assert 16 <= SizeDist("uniform", lo=16, hi=64).sample(rng) <= 64
            assert SizeDist("choice", values=(24, 48)).sample(rng) in (24, 48)
            assert 16 <= SizeDist("pareto", lo=16, hi=256).sample(rng) <= 256

    def test_size_dist_rejects_bad_configs(self):
        with pytest.raises(ScenarioError, match="unknown size distribution"):
            SizeDist("gaussian")
        with pytest.raises(ScenarioError, match="needs values"):
            SizeDist("choice")
        with pytest.raises(ScenarioError, match="weights"):
            SizeDist("choice", values=(8, 16), weights=(1.0,))
        with pytest.raises(ScenarioError, match="lo <= hi"):
            SizeDist("uniform", lo=64, hi=16)
        with pytest.raises(ScenarioError, match="alpha"):
            SizeDist("pareto", lo=16, hi=64, alpha=0.0)

    def test_kind_and_phase_validators(self):
        size = SizeDist("fixed", lo=32)
        with pytest.raises(ScenarioError, match="lifetime"):
            KindSpec(label="k", base_count=1, size=size, lifetime="eternal")
        with pytest.raises(ScenarioError, match="access mode"):
            KindSpec(label="k", base_count=1, size=size, access="random")
        with pytest.raises(ScenarioError, match="cell_size"):
            KindSpec(label="k", base_count=1, size=size, cells=2)
        with pytest.raises(ScenarioError, match="positive"):
            PhaseSpec(label="p", weights=(("k", 0.0),))

    def test_scenario_cross_validation(self):
        spec = _demo_spec()
        with pytest.raises(ScenarioError, match="unknown.*kind 'ghost'"):
            ScenarioSpec(
                name="bad",
                kinds=spec.kinds,
                phases=(PhaseSpec(label="p", weights=(("ghost", 1.0),)),),
            )
        with pytest.raises(ScenarioError, match="duplicate kind labels"):
            ScenarioSpec(
                name="bad", kinds=(spec.kinds[0], spec.kinds[0]), phases=spec.phases
            )

    def test_round_trip_preserves_digest(self):
        spec = _demo_spec()
        from repro.scenario import spec_from_dict

        clone = spec_from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.digest() == spec.digest()

    def test_digest_tracks_config_changes(self):
        spec = _demo_spec()
        changed = ScenarioSpec(
            name=spec.name, kinds=spec.kinds, phases=spec.phases, table_kb=64
        )
        assert changed.digest() != spec.digest()

    def test_load_spec_json(self, tmp_path):
        path = tmp_path / "demo.json"
        path.write_text(_demo_spec().to_json())
        assert load_spec(path).digest() == _demo_spec().digest()

    def test_load_spec_toml(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "demo.toml"
        path.write_text(
            "\n".join(
                [
                    'name = "toml-demo"',
                    "[[kinds]]",
                    'label = "hot"',
                    "base_count = 8",
                    'size = { kind = "fixed", lo = 32, hi = 32 }',
                    "[[phases]]",
                    'label = "p0"',
                    'weights = [["hot", 1.0]]',
                ]
            )
        )
        spec = load_spec(path)
        assert spec.name == "toml-demo"
        assert spec.kind("hot").size.lo == 32

    def test_load_config_detects_mixes(self, tmp_path):
        mix = sample_mix(5, tenants=2, scheduler="weighted", name="cfg-mix")
        path = tmp_path / "mix.json"
        path.write_text(json.dumps(mix.to_dict()))
        loaded = load_config(path)
        assert isinstance(loaded, MixSpec)
        assert loaded.digest() == mix.digest()


class TestNameGrammar:
    """Self-describing names: the spec is a pure function of the name."""

    def test_sample_spec_is_pure(self):
        assert sample_spec(7).digest() == sample_spec(7).digest()
        assert sample_spec(7).digest() != sample_spec(8).digest()

    def test_parse_scenario_name(self):
        spec = parse_name("scn-7")
        assert isinstance(spec, ScenarioSpec)
        assert spec.name == "scn-7"
        assert spec.digest() == sample_spec(7).digest()

    @pytest.mark.parametrize(
        "code,scheduler",
        [("rr", "round-robin"), ("wtd", "weighted"), ("burst", "bursty")],
    )
    def test_mix_scheduler_codes(self, code, scheduler):
        mix = parse_name(f"mix-5x3-{code}")
        assert isinstance(mix, MixSpec)
        assert mix.scheduler == scheduler
        assert len(mix.tenants) == 3

    def test_scheduler_does_not_change_tenants(self):
        rr = parse_name("mix-5x3-rr")
        wtd = parse_name("mix-5x3-wtd")
        assert [t.spec.digest() for t in rr.tenants] == [
            t.spec.digest() for t in wtd.tenants
        ]
        assert rr.digest() != wtd.digest()

    def test_bare_mix_name_samples_scheduler(self):
        assert parse_name("mix-5x3").scheduler == parse_name("mix-5x3").scheduler

    def test_tenants_are_runnable_standalone(self):
        mix = parse_name("mix-5x2")
        for tenant in mix.tenants:
            assert tenant.spec.name.startswith("scn-")
            assert parse_name(tenant.spec.name).digest() == tenant.spec.digest()

    def test_malformed_names_rejected(self):
        for name in ("scn-", "mix-5", "mix-5x", "scn-x1"):
            with pytest.raises(ScenarioError, match="malformed"):
                parse_name(name)
        with pytest.raises(ScenarioError, match="scheduler code"):
            parse_name("mix-5x3-zzz")


class TestRegistry:
    """Workload-registry integration and the error-reporting satellites."""

    def test_unknown_workload_lists_names_and_closest_match(self):
        with pytest.raises(WorkloadError) as excinfo:
            get_workload("healt")
        message = str(excinfo.value)
        assert "healt" in message
        assert "health" in message
        assert "closest match" in message

    def test_unknown_workload_without_close_match(self):
        with pytest.raises(WorkloadError) as excinfo:
            get_workload("zzzzzz")
        assert "closest match" not in str(excinfo.value)

    def test_generated_names_resolve_lazily(self):
        workload = get_workload(SCENARIO)
        assert workload.name == SCENARIO
        assert SCENARIO in workload_names()
        # Second lookup hits the registry, not a recompile.
        assert type(get_workload(SCENARIO)) is type(workload)

    def test_malformed_generated_name_is_workload_error(self):
        with pytest.raises(WorkloadError, match="cannot build generated"):
            get_workload("scn-notanumber")

    def test_registration_is_idempotent_for_identical_spec(self):
        spec = sample_spec(90001)
        assert register_scenario(spec) is register_scenario(spec)

    def test_conflicting_redefinition_rejected(self):
        register_scenario(_demo_spec("conflict-demo"))
        changed = ScenarioSpec(
            name="conflict-demo",
            kinds=_demo_spec().kinds,
            phases=_demo_spec().phases,
            table_kb=128,
        )
        with pytest.raises(ScenarioError, match="different definition"):
            register_scenario(changed)

    def test_resolve_scale_validates_centrally(self):
        assert resolve_scale("test") == 0.25
        with pytest.raises(WorkloadError) as excinfo:
            resolve_scale("huge")
        message = str(excinfo.value)
        assert "huge" in message
        for key in ("test", "train", "ref"):
            assert key in message

    def test_workload_run_rejects_unknown_scale(self):
        from repro.allocators import AddressSpace, SizeClassAllocator
        from repro.machine import Machine

        workload = get_workload("health")
        machine = Machine(workload.program, SizeClassAllocator(AddressSpace(seed=0)))
        with pytest.raises(WorkloadError, match="unknown scale"):
            workload.run(machine, "gigantic")


@pytest.fixture(scope="module")
def prepared():
    """(workload, trace, halo) per generated benchmark, built once."""
    out = {}
    for name in (SCENARIO, MIX):
        workload = get_workload(name)
        trace = get_or_record_trace(name, workload=workload)
        profile = profile_workload(
            workload, HaloParams(), scale="test", record_trace=True
        )
        halo = optimise_profile(profile, HaloParams())
        out[name] = (workload, trace, halo)
    return out


def _measurement_fields(m):
    """Everything a Measurement reports, as a comparable tuple."""
    return (
        m.workload, m.config, m.scale, m.seed,
        m.cycles, m.cache, m.accesses, m.allocs, m.frees,
        m.instrumentation_toggles, m.peak_live_bytes, m.frag_at_peak,
        m.grouped_allocs, m.forwarded_allocs, m.degraded_allocs,
    )


class TestDeterminism:
    """Same (config, seed) => bit-identical behaviour everywhere."""

    @pytest.mark.parametrize("name", [SCENARIO, MIX])
    def test_recorded_traces_are_bit_identical(self, name):
        first = record_workload(name, scale="test", seed=0)
        second = record_workload(name, scale="test", seed=0)
        assert first.to_bytes() == second.to_bytes()
        assert first.header.events > 0

    def test_trace_save_load_round_trip(self, prepared, tmp_path):
        from repro.trace.format import EventTrace

        _, trace, _ = prepared[SCENARIO]
        path = trace.save(tmp_path / "scn.trace")
        assert EventTrace.load(path).read_all() == trace.events()

    def test_replay_matches_direct_execution(self, prepared):
        workload, trace, _ = prepared[SCENARIO]
        direct = measure_baseline(workload, scale="test", seed=1)
        replayed = measure_baseline(
            workload, scale="test", seed=1, trace=trace, engine="columnar"
        )
        assert _measurement_fields(replayed) == _measurement_fields(direct)

    @pytest.mark.parametrize("name", [SCENARIO, MIX])
    @pytest.mark.parametrize("config", ["baseline", "halo"])
    def test_engine_parity(self, prepared, name, config):
        workload, trace, halo = prepared[name]
        kwargs = dict(scale="test", seed=1, trace=trace)
        if config == "baseline":
            event = measure_baseline(workload, engine="event", **kwargs)
            columnar = measure_baseline(workload, engine="columnar", **kwargs)
        else:
            event = measure_halo(workload, halo, engine="event", **kwargs)
            columnar = measure_halo(workload, halo, engine="columnar", **kwargs)
        assert _measurement_fields(columnar) == _measurement_fields(event)

    def test_halo_groups_generated_structures(self, prepared):
        """Grouping finds structure in generated scenarios (not a no-op)."""
        workload, trace, halo = prepared[SCENARIO]
        measured = measure_halo(
            workload, halo, scale="test", seed=1, trace=trace, engine="columnar"
        )
        assert measured.grouped_allocs > 0

    def test_evaluate_all_serial_matches_jobs(self, tmp_path):
        from repro.core.artifact_cache import ArtifactCache
        from repro.harness.reproduce import evaluate_all

        cache = ArtifactCache(tmp_path / "cache")
        kwargs = dict(
            trials=1, scale="test", include_random=False,
            cache=cache, engine="columnar",
        )
        serial = evaluate_all([SCENARIO], **kwargs)
        parallel = evaluate_all([SCENARIO], jobs=2, **kwargs)
        for config in ("baseline", "halo", "hds"):
            s = getattr(serial[SCENARIO], config)
            p = getattr(parallel[SCENARIO], config)
            assert (s.cycles, s.l1_misses) == (p.cycles, p.l1_misses), config


class TestCorpus:
    """Seeded corpora and the shipped golden hashes."""

    def test_corpus_names_deterministic(self):
        assert corpus_names(0) == corpus_names(0)
        assert corpus_names(0) != corpus_names(1)

    def test_corpus_digest_stable(self):
        entries = build_corpus(corpus_names(0, scenarios=2, mixes=1))
        again = build_corpus(corpus_names(0, scenarios=2, mixes=1))
        assert corpus_digest(entries) == corpus_digest(again)
        assert all(isinstance(e, CorpusEntry) for e in entries)

    def test_shipped_manifest_verifies_clean(self):
        """The golden config hashes in corpora/default.json reproduce."""
        assert verify_manifest("corpora/default.json") == []

    def test_shipped_manifest_matches_seed_zero(self):
        manifest = load_manifest("corpora/default.json")
        assert manifest["seed"] == 0
        names = [entry["name"] for entry in manifest["entries"]]
        assert names == list(corpus_names(0))

    def test_verify_reports_drift(self, tmp_path):
        entries = build_corpus(corpus_names(3, scenarios=1, mixes=1))
        path = tmp_path / "m.json"
        write_manifest(path, entries, seed=3)
        assert verify_manifest(path) == []
        tampered = json.loads(path.read_text())
        tampered["entries"][0]["digest"] = "0" * 16
        path.write_text(json.dumps(tampered))
        problems = verify_manifest(path)
        assert len(problems) == 1
        assert entries[0].name in problems[0]

    def test_materialise_writes_loadable_specs(self, tmp_path):
        entries = build_corpus(corpus_names(4, scenarios=1, mixes=1))
        materialise_corpus(tmp_path, entries, seed=4)
        assert verify_manifest(tmp_path / "manifest.json") == []
        for entry in entries:
            loaded = load_config(tmp_path / f"{entry.name}.json")
            assert loaded.digest() == entry.digest


class TestFuzzBridge:
    """Scenario-derived entries for the sanitizer fuzz matrix."""

    def test_scenario_ops_deterministic(self):
        spec = sample_spec(11)
        assert scenario_ops(spec, 200, seed=1) == scenario_ops(spec, 200, seed=1)
        assert scenario_ops(spec, 200, seed=1) != scenario_ops(spec, 200, seed=2)

    def test_scenario_ops_draw_from_declared_sizes(self):
        spec = _demo_spec("fuzz-sizes")
        ops = scenario_ops(spec, 300, seed=0, reallocs=False)
        sizes = {op[1] for op in ops if op[0] == "malloc"}
        assert sizes <= set(range(16, 65))  # hot fixed 48, cold uniform 16..64
        assert any(op[0] == "free" for op in ops)

    def test_entries_rotate_families_and_run_clean(self):
        from repro.sanitize.fuzz import FAMILIES, run_fuzz

        entries = scenario_fuzz_entries(seed=0, count=len(FAMILIES), ops=120)
        assert [config.family for config, _ in entries] == list(FAMILIES)
        assert entries == scenario_fuzz_entries(seed=0, count=len(FAMILIES), ops=120)
        config, extra_ops = entries[0]
        report = run_fuzz(config, extra_ops=extra_ops)
        assert report.findings == []
        assert report.executed == len(extra_ops)


class TestScenarioCli:
    """The ``halo scenario`` command surface."""

    def test_gen_is_reproducible(self, tmp_path, capsys):
        from repro.cli import main

        out_a, out_b = tmp_path / "a", tmp_path / "b"
        for out in (out_a, out_b):
            assert main([
                "scenario", "gen", "--seed", "9", "--scenarios", "2",
                "--mixes", "1", "--out", str(out),
            ]) == 0
        capsys.readouterr()
        manifest_a = (out_a / "manifest.json").read_text()
        manifest_b = (out_b / "manifest.json").read_text()
        assert manifest_a == manifest_b
        assert json.loads(manifest_a)["corpus_digest"]

    def test_info_reports_spec(self, capsys):
        from repro.cli import main

        assert main(["scenario", "info", "scn-7"]) == 0
        out = capsys.readouterr().out
        assert "scn-7" in out
        assert sample_spec(7).digest() in out

    def test_info_json_round_trips(self, capsys):
        from repro.cli import main

        assert main(["scenario", "info", "scn-7", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        from repro.scenario import spec_from_dict

        assert spec_from_dict(data).digest() == sample_spec(7).digest()

    def test_corpus_checks_shipped_manifest(self, capsys):
        from repro.cli import main

        assert main(["scenario", "corpus"]) == 0
        assert "reproduce" in capsys.readouterr().out

    def test_run_executes_generated_scenario(self, capsys):
        from repro.cli import main

        assert main(["scenario", "run", SCENARIO, "--scale", "test"]) == 0
        assert SCENARIO in capsys.readouterr().out

    def test_run_from_config_file(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "file-demo.json"
        path.write_text(_demo_spec("file-demo").to_json())
        assert main(["scenario", "run", str(path), "--scale", "test"]) == 0
        assert "file-demo" in capsys.readouterr().out

    def test_bad_scale_fails_fast(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["baseline", "-b", "health", "--scale", "bogus"])

    def test_unknown_benchmark_fails_fast(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["baseline", "-b", "healt", "--scale", "test"])

    def test_generated_benchmark_accepted_by_measure_commands(self, capsys):
        from repro.cli import main

        assert main(["baseline", "-b", SCENARIO, "--scale", "test"]) == 0
        assert SCENARIO in capsys.readouterr().out

    def test_generated_tenants_drive_the_serving_daemon(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "serve", "run", "--seed", "5", "--requests", "12",
            "--epoch-requests", "6", "--request-factor", "0.02",
            "--state-dir", str(tmp_path / "state"),
            "--phase", f"0:{SCENARIO}=2,health=1",
            "--phase", f"6:{MIX}=1",
        ]) == 0
        out = capsys.readouterr().out
        assert "12" in out
