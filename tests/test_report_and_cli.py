"""Tests for report rendering and the halo CLI."""

import json

import pytest

from repro.analysis import bar_chart, format_table, to_json
from repro.cli import main


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "v"], [["long-name", 1], ["x", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[2]
        header_positions = lines[0].index("v")
        assert lines[2][header_positions:].strip().startswith("1") or "1" in lines[2]

    def test_title(self):
        assert format_table(["a"], [], title="hello").splitlines()[0] == "hello"


class TestBarChart:
    def test_positive_and_negative_bars(self):
        chart = bar_chart({"up": 0.25, "down": -0.25})
        lines = chart.splitlines()
        assert "+25.0%" in lines[0]
        assert "-25.0%" in lines[1]
        up_bar = lines[0].index("#")
        down_bar = lines[1].index("#")
        assert down_bar < up_bar  # negative grows left of the axis

    def test_empty(self):
        assert bar_chart({}, title="t") == "t"

    def test_baseline_note(self):
        assert "(baseline = 1,000)" in bar_chart({"a": 0.1}, baseline=1000.0)


class TestToJson:
    def test_dataclass_roundtrip(self):
        from repro.harness.reproduce import FragmentationRow

        payload = [FragmentationRow("health", 0.01, 1024)]
        data = json.loads(to_json(payload))
        assert data[0]["benchmark"] == "health"

    def test_unserialisable_rejected(self):
        with pytest.raises(TypeError):
            to_json(object())


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "povray" in out and "roms" in out

    def test_baseline(self, capsys):
        assert main(["baseline", "-b", "ft", "--scale", "test"]) == 0
        out = capsys.readouterr().out
        assert "L1D misses" in out

    def test_run_with_flags(self, capsys):
        code = main([
            "run", "-b", "ft", "--scale", "test",
            "--affinity-distance", "128", "--max-groups", "2", "--show-groups",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "L1D miss reduction" in out
        assert "group 0" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["baseline", "-b", "nonexistent"])

    def test_profile_and_reuse(self, capsys, tmp_path):
        path = tmp_path / "ft.profile.json"
        assert main(["profile", "-b", "ft", "-o", str(path)]) == 0
        assert path.exists()
        assert main(["run", "-b", "ft", "--scale", "test", "--profile", str(path)]) == 0
        out = capsys.readouterr().out
        assert "L1D miss reduction" in out

    def test_dump_graph(self, capsys, tmp_path):
        path = tmp_path / "graph.dot"
        assert main(["run", "-b", "ft", "--scale", "test", "--dump-graph", str(path)]) == 0
        assert path.read_text().startswith("graph")
