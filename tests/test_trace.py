"""Tests for the event-trace record/replay subsystem (repro.trace).

The load-bearing property is *equivalence*: replaying a recorded trace
must be bit-identical to direct execution — same affinity graphs, same
machine metrics, same cache counters — on real workloads, because the
whole harness now substitutes replays for executions wherever a trace is
available.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.allocators import AddressSpace, SizeClassAllocator
from repro.cache.hierarchy import CacheHierarchy
from repro.core.artifact_cache import ArtifactCache
from repro.core.pipeline import HaloParams, optimise_profile, profile_workload
from repro.machine import Machine
from repro.machine.events import Listener
from repro.trace import (
    AccessTraceRecorder,
    EventTrace,
    TraceFormatError,
    TraceReader,
    TraceRecorder,
    TraceReplayer,
    derive_access_trace,
    record_workload,
    replay_profile,
    sweep_affinity_distances,
    sweep_merge_tolerances,
)
from repro.trace.format import (
    OP_ALLOC,
    OP_CALL,
    OP_END,
    OP_FREE,
    OP_LOAD,
    OP_REALLOC,
    OP_RETURN,
    OP_STORE,
    OP_WORK,
    TraceWriter,
    encode_uvarint,
    unzigzag,
    zigzag,
)
from repro.workloads import get_workload

from conftest import alloc_via

#: The equivalence workloads the acceptance criteria name.
WORKLOADS = ("health", "art", "omnetpp")


@pytest.fixture(scope="module")
def traces() -> dict[str, EventTrace]:
    """One recorded test-scale trace per equivalence workload."""
    return {name: record_workload(name, scale="test") for name in WORKLOADS}


class TestEncoding:
    def test_uvarint_round_trip_boundaries(self):
        writer = TraceWriter()
        values = [0, 1, 127, 128, 255, 300, 1 << 14, (1 << 35) + 7]
        for value in values:
            writer._emit_uvarint(value)
        data = bytes(writer._buffer)
        # Decode by hand with the reference encoder as the oracle.
        assert data == b"".join(encode_uvarint(v) for v in values)

    def test_uvarint_rejects_negative(self):
        with pytest.raises(ValueError):
            encode_uvarint(-1)

    def test_zigzag_round_trip(self):
        for value in (0, 1, -1, 63, -64, 1 << 20, -(1 << 20)):
            assert unzigzag(zigzag(value)) == value


class TestFormat:
    def _synthetic_trace(self) -> tuple[EventTrace, list[tuple]]:
        writer = TraceWriter(workload="synthetic", scale="test", program="demo")
        writer.call(0x401010)
        writer.alloc(64)  # oid 0
        writer.access(0, 8, 4, is_store=True)
        writer.access(0, 8, 4, is_store=False)
        writer.realloc(0, 128)
        writer.work(100.0)
        writer.work(0.625)  # non-integral: float64 path
        writer.alloc(32)  # oid 1
        writer.access(1, 0, 8, is_store=False)
        writer.free(0)
        writer.ret()
        writer.end()
        expected = [
            (OP_CALL, 0x401010),
            (OP_ALLOC, 64),
            (OP_STORE, 0, 8, 4),
            (OP_LOAD, 0, 8, 4),
            (OP_REALLOC, 0, 128),
            (OP_WORK, 100.0),
            (OP_WORK, 0.625),
            (OP_ALLOC, 32),
            (OP_LOAD, 1, 0, 8),
            (OP_FREE, 0),
            (OP_RETURN,),
            (OP_END,),
        ]
        return writer.close(), expected

    def test_writer_decodes_to_emitted_events(self):
        trace, expected = self._synthetic_trace()
        assert trace.events() == expected
        assert trace.header.events == len(expected)
        assert trace.header.allocs == 2
        assert trace.header.alloc_bytes == 96
        assert trace.header.reallocs == 1
        assert trace.header.works == 2

    def test_container_round_trip(self):
        trace, expected = self._synthetic_trace()
        back = EventTrace.from_bytes(trace.to_bytes())
        assert back.events() == expected
        assert back.header.to_json() == trace.header.to_json()

    def test_save_load_and_streaming_reader(self, tmp_path):
        trace, expected = self._synthetic_trace()
        path = trace.save(tmp_path / "t.trace")
        assert EventTrace.load(path).events() == expected
        reader = TraceReader(path, chunk_size=3)  # force partial-event rewinds
        assert reader.header.workload == "synthetic"
        assert list(reader) == expected

    def test_iter_events_matches_in_small_chunks(self):
        trace, expected = self._synthetic_trace()
        fresh = EventTrace.from_bytes(trace.to_bytes())
        assert list(fresh.iter_events(chunk_size=2)) == expected

    def test_bad_magic_rejected(self):
        with pytest.raises(TraceFormatError):
            EventTrace.from_bytes(b"NOTATRACE")

    def test_event_count_mismatch_rejected(self):
        trace, _ = self._synthetic_trace()
        corrupt = EventTrace(trace.header, trace.body[:-4], flags=trace.flags)
        with pytest.raises(Exception):  # zlib or format error, never silence
            corrupt.events()

    def test_close_is_idempotent(self):
        trace, _ = self._synthetic_trace()
        writer = TraceWriter()
        writer.end()
        first = writer.close()
        assert writer.close() is first


class TestRecorder:
    def test_records_machine_events(self, demo):
        recorder = TraceRecorder(workload="demo", program=demo.program.name)
        machine = Machine(
            demo.program, SizeClassAllocator(AddressSpace(0)), listeners=[recorder]
        )
        obj = alloc_via(machine, [demo.main_a, demo.a_malloc], size=48)
        machine.store(obj, 0, 8)
        machine.work(7.0)
        machine.realloc(obj, 96)
        machine.free(obj)
        machine.finish()
        events = recorder.trace.events()
        assert events == [
            (OP_CALL, demo.main_a.addr),
            (OP_CALL, demo.a_malloc.addr),
            (OP_ALLOC, 48),
            (OP_RETURN,),
            (OP_RETURN,),
            (OP_STORE, 0, 0, 8),
            (OP_WORK, 7.0),
            (OP_REALLOC, 0, 96),
            (OP_FREE, 0),
            (OP_END,),
        ]

    def test_double_finish_records_one_end(self, demo):
        recorder = TraceRecorder()
        machine = Machine(
            demo.program, SizeClassAllocator(AddressSpace(0)), listeners=[recorder]
        )
        machine.finish()
        machine.finish()  # profile_workload's extra finish must be a no-op
        events = recorder.trace.events()
        assert events == [(OP_END,)]

    def test_finish_returns_same_trace_object(self, demo):
        """Regression: a second finish (or close) must not re-finalise.

        The serving daemon and the profiling driver both fire ``finish``
        on shared machines; re-finalising would tear the completed trace.
        """
        recorder = TraceRecorder()
        machine = Machine(
            demo.program, SizeClassAllocator(AddressSpace(0)), listeners=[recorder]
        )
        alloc_via(machine, [demo.main_a, demo.a_malloc], size=32)
        machine.finish()
        first = recorder.trace
        assert first is not None
        machine.finish()
        assert recorder.trace is first
        assert recorder.close() is first
        assert first.verify()

    def test_finish_after_midstream_fault(self, demo):
        """A fault mid-run, then the driver's cleanup ``finish``: the
        trace must finalise exactly once, decode, and carry one END."""
        recorder = TraceRecorder()
        machine = Machine(
            demo.program, SizeClassAllocator(AddressSpace(0)), listeners=[recorder]
        )
        try:
            obj = alloc_via(machine, [demo.main_a, demo.a_malloc], size=32)
            machine.store(obj, 0, 8)
            raise RuntimeError("injected mid-stream fault")
        except RuntimeError:
            machine.finish()  # cleanup path (e.g. a finally block)
        machine.finish()  # outer driver's normal finish
        events = recorder.trace.events()
        assert events.count((OP_END,)) == 1
        assert events[-1] == (OP_END,)
        assert (OP_ALLOC, 32) in events
        assert recorder.trace.verify()

    def test_close_without_finish_yields_partial_trace(self, demo):
        """A recorder abandoned before any ``finish`` (hard mid-stream
        death) still closes to a decodable, END-less trace."""
        recorder = TraceRecorder()
        machine = Machine(
            demo.program, SizeClassAllocator(AddressSpace(0)), listeners=[recorder]
        )
        alloc_via(machine, [demo.main_a, demo.a_malloc], size=48)
        partial = recorder.close()
        assert recorder.close() is partial
        events = partial.events()
        assert (OP_END,) not in events
        assert (OP_ALLOC, 48) in events
        assert partial.verify()


class TestProfileReplayEquivalence:
    """Acceptance: replayed profiles are bit-identical on ≥3 workloads."""

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_profile_bit_identical(self, traces, name):
        workload = get_workload(name)
        params = HaloParams()
        direct = profile_workload(workload, params, scale="test", record_trace=True)
        replayed = replay_profile(
            traces[name], workload.program, params, record_trace=True
        )
        assert direct.graph == replayed.graph
        assert direct.full_graph == replayed.full_graph
        assert direct.object_context == replayed.object_context
        assert direct.object_site == replayed.object_site
        assert direct.object_sizes == replayed.object_sizes
        assert direct.context_stats == replayed.context_stats
        assert direct.trace == replayed.trace  # the HDS reference trace
        assert direct.machine_accesses == replayed.machine_accesses
        assert direct.total_accesses == replayed.total_accesses

    def test_downstream_grouping_identical(self, traces):
        workload = get_workload("health")
        params = HaloParams()
        direct = optimise_profile(
            profile_workload(workload, params, scale="test"), params
        )
        replayed = optimise_profile(
            replay_profile(traces["health"], workload.program, params), params
        )
        assert [sorted(g.members) for g in direct.groups] == [
            sorted(g.members) for g in replayed.groups
        ]
        assert direct.plan.bit_for_site == replayed.plan.bit_for_site


class TestMeasurementReplayEquivalence:
    """Acceptance: replayed measurements match direct cache counters."""

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_machine_metrics_and_cache_identical(self, traces, name):
        workload = get_workload(name)
        # Seed 1 differs from the recording's seed 0: the event stream is
        # placement-independent, so replay must still match a direct run
        # under the new placement exactly.
        direct = Machine(
            workload.program, SizeClassAllocator(AddressSpace(1)), memory=CacheHierarchy()
        )
        workload.run(direct, "test")
        replay = Machine(
            workload.program, SizeClassAllocator(AddressSpace(1)), memory=CacheHierarchy()
        )
        TraceReplayer(traces[name], workload.program).drive(replay)
        assert direct.metrics == replay.metrics
        assert direct.memory.snapshot() == replay.memory.snapshot()

    def test_run_measurement_driver(self, traces):
        from repro.harness.runner import measure_baseline

        workload = get_workload("health")
        direct = measure_baseline(workload, scale="test", seed=1)
        replayer = TraceReplayer(traces["health"], workload.program)
        replayed = measure_baseline(
            workload, scale="test", seed=1, driver=replayer.drive
        )
        assert direct.cycles == replayed.cycles
        assert direct.cache == replayed.cache
        assert direct.accesses == replayed.accesses
        assert direct.allocs == replayed.allocs
        assert direct.peak_live_bytes == replayed.peak_live_bytes

    def test_program_mismatch_rejected(self, traces):
        other = get_workload("art")
        machine = Machine(other.program, SizeClassAllocator(AddressSpace(0)))
        with pytest.raises(TraceFormatError):
            TraceReplayer(traces["health"], get_workload("health").program).drive(machine)


class TestSweeps:
    def test_merge_tolerance_sweep_matches_direct(self, traces):
        workload = get_workload("health")
        tolerances = (0.01, 0.2)
        swept = sweep_merge_tolerances(
            traces["health"], workload.program, tolerances
        )
        for tolerance in tolerances:
            base = HaloParams()
            params = dataclasses.replace(
                base,
                grouping=dataclasses.replace(base.grouping, merge_tolerance=tolerance),
            )
            direct = optimise_profile(
                profile_workload(workload, params, scale="test"), params
            )
            assert [sorted(g.members) for g in swept[tolerance].groups] == [
                sorted(g.members) for g in direct.groups
            ]

    def test_affinity_sweep_produces_distinct_profiles(self, traces):
        workload = get_workload("health")
        swept = sweep_affinity_distances(
            traces["health"], workload.program, (64, 4096)
        )
        assert swept[64].profile.params.distance == 64
        assert swept[4096].profile.params.distance == 4096
        # A 64× wider window must not yield the identical edge multiset.
        assert swept[64].profile.full_graph != swept[4096].profile.full_graph


class TestListenerRegistration:
    """Regression: the no-listener dispatch fast path must not let a
    listener registered mid-run miss events."""

    class _Counter(Listener):
        def __init__(self):
            self.events = []

        def on_call(self, machine, site):
            self.events.append(("call", site.addr))

        def on_alloc(self, machine, obj):
            self.events.append(("alloc", obj.oid))

        def on_access(self, machine, obj, offset, size, is_store):
            self.events.append(("access", obj.oid))

        def on_work(self, machine, cycles):
            self.events.append(("work", cycles))

        def on_finish(self, machine):
            self.events.append(("finish",))

    def test_listener_appended_mid_run_sees_later_events(self, demo):
        machine = Machine(demo.program, SizeClassAllocator(AddressSpace(0)))
        # Warm the no-listener fast path with real traffic first.
        first = alloc_via(machine, [demo.main_a, demo.a_malloc])
        machine.load(first, 0, 8)
        listener = self._Counter()
        machine.listeners.append(listener)
        second = alloc_via(machine, [demo.main_b, demo.b_malloc])
        machine.store(second, 0, 8)
        machine.work(3.0)
        machine.finish()
        assert listener.events == [
            ("call", demo.main_b.addr),
            ("call", demo.b_malloc.addr),
            ("alloc", second.oid),
            ("access", second.oid),
            ("work", 3.0),
            ("finish",),
        ]

    def test_add_and_remove_listener(self, demo):
        machine = Machine(demo.program, SizeClassAllocator(AddressSpace(0)))
        listener = machine.add_listener(self._Counter())
        obj = alloc_via(machine, [demo.main_a, demo.a_malloc])
        machine.remove_listener(listener)
        machine.load(obj, 0, 8)  # after removal: not observed
        assert ("alloc", obj.oid) in listener.events
        assert ("access", obj.oid) not in listener.events

    @pytest.mark.parametrize("mutate", ["extend", "iadd", "insert", "setter"])
    def test_every_mutation_path_refreshes_dispatch(self, demo, mutate):
        machine = Machine(demo.program, SizeClassAllocator(AddressSpace(0)))
        listener = self._Counter()
        if mutate == "extend":
            machine.listeners.extend([listener])
        elif mutate == "iadd":
            machine.listeners += [listener]
        elif mutate == "insert":
            machine.listeners.insert(0, listener)
        else:
            machine.listeners = [listener]
        obj = alloc_via(machine, [demo.main_a, demo.a_malloc])
        assert ("alloc", obj.oid) in listener.events

    def test_clear_and_pop_stop_dispatch(self, demo):
        machine = Machine(demo.program, SizeClassAllocator(AddressSpace(0)))
        listener = machine.add_listener(self._Counter())
        machine.listeners.clear()
        alloc_via(machine, [demo.main_a, demo.a_malloc])
        assert listener.events == []


class TestHarnessIntegration:
    def test_prepare_caches_trace_across_param_configs(self, tmp_path):
        from repro.harness.prepare import prepare_workload

        cache = ArtifactCache(tmp_path / "cache")
        cold = prepare_workload("health", include_hds=False, cache=cache)
        assert cold.times.trace_records == 1
        assert cold.times.trace_replays == 1
        # A different parameter set hits the shared trace: no re-recording.
        params = HaloParams().with_affinity_distance(256)
        warm = prepare_workload(
            "health", halo_params=params, include_hds=False, cache=cache
        )
        assert warm.times.trace_records == 0
        assert warm.times.trace_replays == 1
        assert warm.times.record == 0.0

    def test_trace_path_matches_direct_preparation(self, tmp_path):
        from repro.harness.prepare import prepare_workload

        cache = ArtifactCache(tmp_path / "cache")
        via_trace = prepare_workload("health", include_hds=False, cache=cache)
        direct = prepare_workload("health", include_hds=False, use_trace=False)
        assert via_trace.profile.graph == direct.profile.graph
        assert via_trace.profile.trace == direct.profile.trace
        assert [sorted(g.members) for g in via_trace.halo.groups] == [
            sorted(g.members) for g in direct.halo.groups
        ]

    def test_access_trace_derivation_matches_live_capture(self, traces):
        import numpy as np

        workload = get_workload("health")
        recorder = AccessTraceRecorder()
        machine = Machine(
            workload.program, SizeClassAllocator(AddressSpace(3)), listeners=[recorder]
        )
        workload.run(machine, "test")
        live = recorder.trace()
        derived = derive_access_trace(traces["health"], workload.program, seed=3)
        assert np.array_equal(live.addresses, derived.addresses)
        assert np.array_equal(live.sizes, derived.sizes)


#: Golden ``trace info`` lines for health at test scale.  Any change here
#: means the recorded event stream (or its summary) changed — deliberate
#: format/workload changes must update this in the same commit.
class TestChecksum:
    """Format v2: the header carries a CRC32 of the compressed body."""

    def _trace(self) -> EventTrace:
        writer = TraceWriter(workload="synthetic", scale="test", program="demo")
        for _ in range(32):
            writer.alloc(64)
        writer.end()
        return writer.close()

    def test_writer_stamps_crc(self):
        trace = self._trace()
        assert trace.header.format == 2
        assert trace.header.crc32 is not None
        assert trace.verify()

    def test_crc_survives_container_round_trip(self):
        trace = self._trace()
        back = EventTrace.from_bytes(trace.to_bytes())
        assert back.header.crc32 == trace.header.crc32
        assert back.verify()

    def test_tampered_body_detected(self):
        trace = self._trace()
        tampered = bytearray(trace.body)
        tampered[len(tampered) // 2] ^= 0x01
        corrupt = EventTrace(trace.header, bytes(tampered), flags=trace.flags)
        assert not corrupt.verify()
        with pytest.raises(TraceFormatError):
            corrupt.events()
        with pytest.raises(TraceFormatError):
            list(corrupt.iter_events())

    def test_v1_header_without_crc_still_reads(self):
        # Backwards compatibility: v1 traces carry no checksum; absence of
        # evidence is not corruption.
        trace = self._trace()
        v1_header = dataclasses.replace(trace.header, format=1, crc32=None)
        v1 = EventTrace(v1_header, trace.body, flags=trace.flags)
        assert v1.verify()
        assert v1.events() == trace.events()
        back = EventTrace.from_bytes(v1.to_bytes())
        assert back.header.format == 1
        assert back.events() == trace.events()

    def test_unsupported_format_rejected(self):
        trace = self._trace()
        future = EventTrace(
            dataclasses.replace(trace.header, format=99), trace.body, flags=trace.flags
        )
        with pytest.raises(TraceFormatError):
            EventTrace.from_bytes(future.to_bytes())

    def test_streaming_reader_detects_on_disk_corruption(self, tmp_path):
        trace = self._trace()
        path = trace.save(tmp_path / "t.trace")
        raw = bytearray(path.read_bytes())
        raw[-2] ^= 0xFF  # inside the compressed body
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceFormatError):
            list(TraceReader(path))

    def test_fault_plan_forces_decode_failure(self):
        from repro.faults import FaultPlan, fault_plan_active

        trace = self._trace()
        plan = FaultPlan(trace_decode_error_rate=1.0)
        with fault_plan_active(plan):
            with pytest.raises(TraceFormatError):
                trace.events()
        trace.events()  # plan uninstalled: decodes normally again


HEALTH_INFO_GOLDEN = [
    "workload:        health (test)",
    "program:         health",
    "format:          v2",
    "events:          282,451",
    "  calls:         38,797",
    "  returns:       38,797",
    "  allocs:        19,586 (950,448 bytes requested)",
    "  frees:         19,586",
    "  reallocs:      0",
    "  loads:         122,724",
    "  stores:        19,585",
    "  work:          23,375",
    "accessed bytes:  1,138,472",
]


class TestCli:
    def test_trace_info_golden(self, traces):
        from repro.cli import trace_info_lines

        assert trace_info_lines(traces["health"]) == HEALTH_INFO_GOLDEN

    def test_record_info_replay_sweep_commands(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["trace", "record", "-b", "health"]) == 0
        trace_file = tmp_path / "health-test.trace"
        assert trace_file.exists()

        assert main(["trace", "info", str(trace_file)]) == 0
        out = capsys.readouterr().out
        for line in HEALTH_INFO_GOLDEN:
            assert line in out

        assert main(["trace", "replay", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "[columnar engine" in out

        assert main(["trace", "replay", str(trace_file), "--engine", "event"]) == 0
        assert "[event engine" in capsys.readouterr().out

        assert (
            main(
                [
                    "trace", "sweep", str(trace_file),
                    "--merge-tolerance", "0.01,0.2", "--no-cache",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "2-point merge-tolerance sweep" in out
        assert "no workload re-execution" in out
