"""Tests for the hot-data-streams pipeline and runtime."""

import pytest

from repro.allocators import AddressSpace
from repro.core import HaloParams, profile_workload
from repro.hds import HdsParams, analyse_profile, make_runtime
from repro.hds.pipeline import ImmediateSiteMatcher
from repro.machine import Machine
from repro.workloads import get_workload


class TestAnalyseProfile:
    def test_requires_trace(self):
        workload = get_workload("ft")
        profile = profile_workload(workload, HaloParams(), scale="test")
        with pytest.raises(ValueError):
            analyse_profile(profile, HdsParams())

    def test_direct_site_benchmark_forms_groups(self):
        workload = get_workload("ft")
        profile = profile_workload(
            workload, HaloParams(), scale="test", record_trace=True
        )
        hds = analyse_profile(profile, HdsParams())
        assert hds.groups
        assert hds.group_of_site
        assert hds.stream_count > 0

    def test_max_groups_cap(self):
        workload = get_workload("roms")
        profile = profile_workload(
            workload, HaloParams(), scale="test", record_trace=True
        )
        hds = analyse_profile(profile, HdsParams(max_groups=1))
        assert len(hds.groups) <= 1


class TestImmediateSiteMatcher:
    def test_unattached_matches_nothing(self):
        matcher = ImmediateSiteMatcher({0x10: 0})
        assert matcher.match(0) is None

    def test_matches_stack_top(self, demo):
        from repro.allocators import SizeClassAllocator

        matcher = ImmediateSiteMatcher({demo.a_malloc.addr: 3})
        machine = Machine(demo.program, SizeClassAllocator(AddressSpace(0)))
        matcher.attach(machine)
        with machine.call(demo.main_a):
            assert matcher.match(0) is None  # top is main->create_a
            with machine.call(demo.a_malloc):
                assert matcher.match(0) == 3

    def test_state_vector_ignored(self, demo):
        from repro.allocators import SizeClassAllocator

        matcher = ImmediateSiteMatcher({demo.a_malloc.addr: 3})
        machine = Machine(demo.program, SizeClassAllocator(AddressSpace(0)))
        matcher.attach(machine)
        with machine.call(demo.main_a):
            with machine.call(demo.a_malloc):
                assert matcher.match(0xFFFF) == 3


class TestHdsRuntime:
    def test_runtime_pools_grouped_sites(self):
        workload = get_workload("ft")
        profile = profile_workload(
            workload, HaloParams(), scale="test", record_trace=True
        )
        hds = analyse_profile(profile, HdsParams())
        runtime = make_runtime(hds, AddressSpace(1))
        machine = Machine(workload.program, runtime.allocator)
        runtime.attach(machine)
        workload.run(machine, "test")
        assert runtime.allocator.grouped_allocs > 0
        assert runtime.allocator.forwarded_allocs > 0
