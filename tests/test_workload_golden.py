"""Golden regression values for the synthetic benchmarks.

The evaluation's shape depends on each workload's allocation/access volume;
an accidental change to a workload body would silently re-calibrate every
figure.  These tests pin the test-scale dynamic counts (which are exact and
deterministic by design) so drift is caught immediately.

If you change a workload *intentionally*, regenerate with:

    python tests/test_workload_golden.py
"""

import pytest

from repro.allocators import AddressSpace, SizeClassAllocator
from repro.machine import Machine
from repro.workloads import get_workload

# (allocs, frees, loads, stores) at test scale.
GOLDEN = {
    "health": (19586, 19586, 122724, 19585),
    "ft": (12001, 12001, 106255, 12000),
    "analyzer": (10251, 10251, 79219, 10250),
    "ammp": (8401, 8401, 69175, 8400),
    "art": (16901, 16901, 91013, 16900),
    "equake": (10101, 10101, 113442, 10100),
    "povray": (7043, 7043, 55251, 7043),
    "omnetpp": (22001, 22001, 138958, 22000),
    "xalanc": (8992, 8992, 64504, 8991),
    "leela": (15760, 15760, 85500, 15760),
    "roms": (5125, 5125, 60042, 5100),
}


def observe(name):
    workload = get_workload(name)
    machine = Machine(workload.program, SizeClassAllocator(AddressSpace(0)))
    workload.run(machine, "test")
    m = machine.metrics
    return (m.allocs, m.frees, m.loads, m.stores)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_workload_counts_pinned(name):
    assert observe(name) == GOLDEN[name], (
        f"{name}'s dynamic behaviour changed; if intentional, regenerate "
        "GOLDEN with `python tests/test_workload_golden.py`"
    )


if __name__ == "__main__":
    print("GOLDEN = {")
    for name in (
        "health", "ft", "analyzer", "ammp", "art", "equake",
        "povray", "omnetpp", "xalanc", "leela", "roms",
    ):
        print(f'    "{name}": {observe(name)},')
    print("}")
